//! Minimal stand-in for the `bytes` crate: `Bytes`/`BytesMut` over `Vec<u8>`
//! plus the `Buf`/`BufMut` cursor traits, covering the little-endian
//! accessors the weight serializer uses.

use std::ops::Deref;

/// Immutable byte buffer (`bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// Growable byte buffer (`bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source (`bytes::Buf`). Implemented for `&[u8]`,
/// which advances by shrinking the slice in place.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor (`bytes::BufMut`), implemented for `BytesMut` and `Vec<u8>`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u32_f32() {
        let mut w = BytesMut::new();
        w.put_u32_le(0xdead_beef);
        w.put_f32_le(1.5);
        w.put_slice(b"tail");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 12);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_f32_le(), 1.5);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }
}
