//! Minimal stand-in for `serde` 1.x: re-exports the no-op derive macros.
//!
//! The workspace uses serde only as `#[derive(Serialize, Deserialize)]`
//! markers on config/metadata types; no code path serializes through the
//! serde data model, so no traits or impls are required beyond the derives.

pub use serde_derive::{Deserialize, Serialize};
