//! Minimal stand-in for `criterion` 0.5: wall-clock benchmarking with the
//! same macro/driver surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::bench_function`, `Bencher::iter`). Reports median ns/iter
//! to stdout; no statistical analysis, plots, or baselines.

use std::time::Instant;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u128>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then `sample_size` timed samples.
        std::hint::black_box(routine());
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<u128>() / sorted.len() as u128;
        println!(
            "{id:<40} median {:>12} ns/iter   mean {:>12} ns/iter   ({} samples)",
            median,
            mean,
            sorted.len()
        );
    }
}

/// Re-export spot for `criterion::black_box` users.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
