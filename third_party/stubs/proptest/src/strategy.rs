//! Value-generation strategies: numeric ranges, tuples, `Just`, and a
//! regex-subset string strategy (`&str` patterns).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Subset of `proptest::strategy::Strategy`: deterministic generation,
/// no shrinking.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// `Just(v)` — always yields a clone of `v`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128) as u128 + 1;
                (s as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                s + (rng.unit_f64() as $t) * (e - s)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (s, e) = (self.start as u32, self.end as u32);
        assert!(s < e, "empty range strategy");
        char::from_u32(s + (rng.next_u64() % (e - s) as u64) as u32).unwrap_or(self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// `&str` patterns are regex strategies, as in real proptest — restricted
/// to the subset the workspace's tests use: literals, `.`, `[a-z0-9_]`
/// classes, `( … )` groups, and `{m}` / `{m,n}` / `*` / `+` / `?`
/// quantifiers. Unsupported syntax panics loudly at generation time.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let nodes = parse_pattern(self);
        let mut out = String::new();
        for node in &nodes {
            node.emit(rng, &mut out);
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

/// Alphabet behind `.`: printable ASCII plus a few multibyte code points so
/// Unicode-sensitive properties (case mapping, multi-byte boundaries) get
/// exercised.
const DOT_EXTRAS: &[char] = &['é', 'ß', 'Ω', '中', 'À', '🄰'];

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    Dot,
    Class(Vec<(char, char)>),
    Group(Vec<Quantified>),
}

#[derive(Debug, Clone)]
struct Quantified {
    atom: Atom,
    min: u32,
    max: u32,
}

impl Quantified {
    fn emit(&self, rng: &mut TestRng, out: &mut String) {
        let count = self.min + (rng.next_u64() % (self.max - self.min + 1) as u64) as u32;
        for _ in 0..count {
            match &self.atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Dot => {
                    let printable = 0x7e - 0x20 + 1;
                    let idx = (rng.next_u64() % (printable + DOT_EXTRAS.len() as u64)) as usize;
                    if idx < printable as usize {
                        out.push((0x20 + idx as u8) as char);
                    } else {
                        out.push(DOT_EXTRAS[idx - printable as usize]);
                    }
                }
                Atom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
                        .sum();
                    let mut pick = rng.next_u64() % total;
                    for (a, b) in ranges {
                        let span = (*b as u64) - (*a as u64) + 1;
                        if pick < span {
                            out.push(char::from_u32(*a as u32 + pick as u32).unwrap());
                            break;
                        }
                        pick -= span;
                    }
                }
                Atom::Group(inner) => {
                    for q in inner {
                        q.emit(rng, out);
                    }
                }
            }
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Quantified> {
    let mut chars: Vec<char> = pattern.chars().collect();
    chars.reverse(); // pop() from the front
    let nodes = parse_sequence(&mut chars, pattern);
    assert!(
        chars.is_empty(),
        "unsupported regex (unbalanced ')'): {pattern:?}"
    );
    nodes
}

fn parse_sequence(chars: &mut Vec<char>, pattern: &str) -> Vec<Quantified> {
    let mut out = Vec::new();
    while let Some(&c) = chars.last() {
        if c == ')' {
            break;
        }
        chars.pop();
        let atom = match c {
            '.' => Atom::Dot,
            '[' => Atom::Class(parse_class(chars, pattern)),
            '(' => {
                let inner = parse_sequence(chars, pattern);
                assert_eq!(chars.pop(), Some(')'), "unbalanced '(' in {pattern:?}");
                Atom::Group(inner)
            }
            '\\' => Atom::Lit(chars.pop().unwrap_or_else(|| {
                panic!("dangling escape in {pattern:?}")
            })),
            '|' | '^' | '$' => panic!("unsupported regex feature {c:?} in {pattern:?}"),
            other => Atom::Lit(other),
        };
        let (min, max) = parse_quantifier(chars, pattern);
        out.push(Quantified { atom, min, max });
    }
    out
}

fn parse_class(chars: &mut Vec<char>, pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .pop()
            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
        match c {
            ']' => break,
            '^' if ranges.is_empty() => panic!("negated classes unsupported in {pattern:?}"),
            '\\' => {
                let lit = chars
                    .pop()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                ranges.push((lit, lit));
            }
            start => {
                if chars.last() == Some(&'-') && chars.len() >= 2 && chars[chars.len() - 2] != ']' {
                    chars.pop(); // '-'
                    let end = chars.pop().unwrap();
                    assert!(start <= end, "inverted class range in {pattern:?}");
                    ranges.push((start, end));
                } else {
                    ranges.push((start, start));
                }
            }
        }
    }
    assert!(!ranges.is_empty(), "empty class in {pattern:?}");
    ranges
}

fn parse_quantifier(chars: &mut Vec<char>, pattern: &str) -> (u32, u32) {
    match chars.last() {
        Some('*') => {
            chars.pop();
            (0, 8)
        }
        Some('+') => {
            chars.pop();
            (1, 8)
        }
        Some('?') => {
            chars.pop();
            (0, 1)
        }
        Some('{') => {
            chars.pop();
            let mut spec = String::new();
            loop {
                let c = chars
                    .pop()
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let parse = |s: &str| -> u32 {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier {spec:?} in {pattern:?}"))
            };
            match spec.split_once(',') {
                None => {
                    let n = parse(&spec);
                    (n, n)
                }
                Some((lo, hi)) if hi.trim().is_empty() => (parse(lo), parse(lo) + 8),
                Some((lo, hi)) => (parse(lo), parse(hi)),
            }
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        pattern.generate(&mut TestRng::new(seed))
    }

    #[test]
    fn class_with_group_repetition() {
        for seed in 0..50 {
            let s = gen("[a-z]{1,8}( [a-z]{1,8}){0,4}", seed);
            for word in s.split(' ') {
                assert!(!word.is_empty() && word.len() <= 8, "bad word in {s:?}");
                assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn dot_respects_length_bounds() {
        for seed in 0..50 {
            let s = gen(".{0,30}", seed);
            assert!(s.chars().count() <= 30);
        }
    }

    #[test]
    fn exact_and_open_quantifiers() {
        for seed in 0..20 {
            assert_eq!(gen("[0-9]{3}", seed).len(), 3);
            let star = gen("a*", seed);
            assert!(star.len() <= 8 && star.chars().all(|c| c == 'a'));
            let plus = gen("b+", seed);
            assert!(!plus.is_empty() && plus.len() <= 8);
        }
    }

    #[test]
    fn multi_range_class() {
        for seed in 0..40 {
            let s = gen("[a-c0-2_]{5}", seed);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '0'..='2' | '_')));
        }
    }
}
