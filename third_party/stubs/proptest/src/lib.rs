//! Minimal, deterministic stand-in for `proptest` 1.x.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro, `ProptestConfig::with_cases`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, numeric range
//! strategies, a regex-subset string strategy, tuple strategies, and
//! `collection::vec`. Cases are generated deterministically from the test
//! name, so failures reproduce exactly. There is no shrinking: a failing
//! case reports its case index instead of a minimized input.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size arguments for [`vec`] (`usize`, `a..b`, `a..=b`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.uniform_usize(self.size.min, self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The main harness macro. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, s in "[a-z]{1,4}") { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let base = $crate::test_runner::fnv1a(stringify!($name).as_bytes());
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        base ^ (case as u64).wrapping_mul(0xa076_1d64_78bd_642f),
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let run = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    };
                    if let Err(err) = run() {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, err
                        );
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}
