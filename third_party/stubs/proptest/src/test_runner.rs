//! Deterministic case runner: config, RNG, and the test-case error type.

use std::fmt;

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert*` inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// FNV-1a over bytes — stable seed derivation from a test's name.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 — the deterministic entropy source behind every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[min, max]` (inclusive).
    pub fn uniform_usize(&mut self, min: usize, max_inclusive: usize) -> usize {
        debug_assert!(min <= max_inclusive);
        let span = (max_inclusive - min) as u64 + 1;
        min + (self.next_u64() % span) as usize
    }
}
