//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` on config and
//! metadata types — nothing ever serializes through serde (weight blobs go
//! through `bytes`). Emitting an empty impl block keeps the derive
//! attribute valid while adding zero generated code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
