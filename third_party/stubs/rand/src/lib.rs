//! Minimal, deterministic, API-compatible stand-in for `rand` 0.8.
//!
//! Covers exactly the surface this workspace uses: `StdRng` +
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}`. The generator is splitmix64 —
//! not rand's ChaCha stream, but every consumer in the workspace only
//! relies on *seeded determinism*, never on rand's exact stream.

use std::ops::{Range, RangeInclusive};

/// Core entropy source (subset of `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seeding (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Map a raw u64 draw to a uniform f64 in `[0, 1)`.
#[inline]
fn u01(raw: u64) -> f64 {
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by `Rng::gen` (stands in for `Standard: Distribution<T>`).
pub trait StandardSample {
    fn from_raw(raw: u64) -> Self;
}

impl StandardSample for f64 {
    fn from_raw(raw: u64) -> Self {
        u01(raw)
    }
}
impl StandardSample for f32 {
    fn from_raw(raw: u64) -> Self {
        u01(raw) as f32
    }
}
impl StandardSample for u64 {
    fn from_raw(raw: u64) -> Self {
        raw
    }
}
impl StandardSample for u32 {
    fn from_raw(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}
impl StandardSample for bool {
    fn from_raw(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range` (stands in for `SampleRange<T>`).
pub trait SampleRange<T> {
    fn sample_single(self, raw: u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, raw: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (raw as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, raw: u64) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                (s as i128 + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, raw: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (u01(raw) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, raw: u64) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                s + (u01(raw) as $t) * (e - s)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_raw(self.next_u64())
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self.next_u64())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        u01(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One warm-up scramble so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: state ^ 0x5851_f42d_4c95_7f2d,
            };
            rng.next_u64();
            rng
        }
    }

    impl StdRng {
        /// The raw splitmix64 state word. Deviation from rand 0.8 (which
        /// exposes no state accessor): this workspace's training
        /// checkpoint/resume needs to capture and restore the exact stream
        /// position for bit-identical replay.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuild a generator at an exact stream position captured with
        /// [`StdRng::state`]. Unlike `seed_from_u64`, no scrambling or
        /// warm-up is applied: the next draw continues the original stream.
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i32), b.gen_range(0..1000i32));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..10usize);
            assert!((5..10).contains(&v));
            let w = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&w));
            let x = rng.gen_range(1..=3u32);
            assert!((1..=3).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
