//! Facade crate: re-exports the whole KGLink workspace under one name.
#![deny(deprecated)]

pub use kglink_baselines as baselines;
pub use kglink_core as core;
pub use kglink_datagen as datagen;
pub use kglink_kg as kg;
pub use kglink_nn as nn;
pub use kglink_obs as obs;
pub use kglink_registry as registry;
pub use kglink_search as search;
pub use kglink_serve as serve;
pub use kglink_table as table;
