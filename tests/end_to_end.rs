//! Cross-crate integration tests: world → datasets → Part 1 → Part 2 →
//! annotator, plus the harness-level invariants the experiments rely on.

use kglink::baselines::doduo::Doduo;
use kglink::baselines::mtab::MTab;
use kglink::baselines::plm::PlmConfig;
use kglink::baselines::{BenchEnv, CtaModel};
use kglink::core::pipeline::{build_vocab, KgLink, Resources};
use kglink::core::{KgLinkConfig, LinkStatistics, Preprocessor};
use kglink::datagen::{pretrain_corpus, semtab_like, viznet_like, SemTabConfig, VizNetConfig};
use kglink::kg::{SyntheticWorld, WorldConfig};
use kglink::nn::serialize::save_params;
use kglink::nn::{Encoder, EncoderConfig, MlmPretrainConfig, MlmPretrainer, Tokenizer};
use kglink::search::EntitySearcher;
use kglink::table::Split;

struct Fixture {
    world: SyntheticWorld,
    semtab: kglink::datagen::GeneratedBenchmark,
    viznet: kglink::datagen::GeneratedBenchmark,
    searcher: EntitySearcher,
    tokenizer: Tokenizer,
}

impl Fixture {
    fn resources(&self) -> Resources<'_> {
        Resources::builder()
            .graph(&self.world.graph)
            .backend(&self.searcher)
            .tokenizer(&self.tokenizer)
            .build()
            .unwrap()
    }
}

fn fixture(seed: u64) -> Fixture {
    let world = SyntheticWorld::generate(&WorldConfig {
        seed,
        scale: 0.2,
        ..WorldConfig::default()
    });
    let semtab = semtab_like(
        &world,
        &SemTabConfig {
            seed,
            n_tables: 40,
            min_rows: 5,
            max_rows: 12,
            ..SemTabConfig::default()
        },
    );
    let viznet = viznet_like(
        &world,
        &VizNetConfig {
            seed,
            n_tables: 60,
            min_rows: 5,
            max_rows: 10,
            ..VizNetConfig::default()
        },
    );
    let searcher = EntitySearcher::build(&world.graph);
    let corpus = pretrain_corpus(&world, seed);
    let vocab = build_vocab(
        corpus.iter().map(String::as_str),
        &[&semtab.dataset, &viznet.dataset],
        8000,
    );
    Fixture {
        world,
        semtab,
        viznet,
        searcher,
        tokenizer: Tokenizer::new(vocab),
    }
}

#[test]
fn kglink_end_to_end_on_both_benchmarks() {
    let f = fixture(201);
    let resources = f.resources();
    for bench in [&f.semtab, &f.viznet] {
        let config = KgLinkConfig {
            epochs: 4,
            ..KgLinkConfig::fast_test()
        };
        let (model, report) = KgLink::fit(&resources, &bench.dataset, config);
        assert!(!report.epoch_loss.is_empty());
        let summary = model.evaluate(&resources, &bench.dataset, Split::Test);
        assert!(summary.support > 0);
        assert!(
            summary.accuracy > 1.0 / bench.dataset.labels.len() as f64,
            "{} acc {}",
            bench.dataset.name,
            summary.accuracy
        );
    }
}

#[test]
fn pretrained_encoder_transfers_into_kglink() {
    let f = fixture(202);
    // Pre-train briefly and check the blob loads into the pipeline.
    let corpus = pretrain_corpus(&f.world, 5);
    let ids: Vec<Vec<u32>> = corpus
        .iter()
        .take(200)
        .map(|s| f.tokenizer.encode_text(s))
        .collect();
    let mut pre = MlmPretrainer::new(
        Encoder::new(EncoderConfig::mini(f.tokenizer.vocab.len())),
        MlmPretrainConfig {
            epochs: 1,
            ..Default::default()
        },
    );
    pre.train(&ids);
    let (mut enc, _) = pre.into_parts();
    let blob = save_params(&mut enc).to_vec();
    let resources = f.resources().with_pretrained(&blob);
    let (model, _) = KgLink::fit(&resources, &f.semtab.dataset, KgLinkConfig::fast_test());
    let summary = model.evaluate(&resources, &f.semtab.dataset, Split::Test);
    assert!(summary.support > 0);
}

#[test]
fn ablations_run_and_stay_better_than_random() {
    let f = fixture(203);
    let resources = f.resources();
    let base = KgLinkConfig {
        epochs: 10,
        patience: 0,
        ..KgLinkConfig::fast_test()
    };
    for config in [
        base.clone().without_mask_task(),
        base.clone().without_kg(),
        base.clone().without_feature_vector(),
    ] {
        let (model, _) = KgLink::fit(&resources, &f.semtab.dataset, config);
        let s = model.evaluate(&resources, &f.semtab.dataset, Split::Test);
        assert!(s.accuracy > 1.0 / f.semtab.dataset.labels.len() as f64);
    }
}

#[test]
fn baselines_conform_to_the_trait_and_run() {
    let f = fixture(204);
    let resources = f.resources();
    let env = BenchEnv {
        resources: &resources,
        labels: &f.semtab.dataset.labels,
        label_to_type: &f.semtab.label_to_type,
    };
    let mut models: Vec<Box<dyn CtaModel>> = vec![
        Box::new(MTab::new()),
        Box::new(Doduo::new(PlmConfig {
            epochs: 2,
            patience: 0,
            ..Default::default()
        })),
    ];
    for model in models.iter_mut() {
        model.fit(&env, &f.semtab.dataset);
        let s = model.evaluate(&env, &f.semtab.dataset, Split::Test);
        assert!(s.support > 0, "{} produced no predictions", model.name());
        // Every prediction is a valid label.
        for t in f.semtab.dataset.tables_in(Split::Test) {
            for p in model.predict_table(&env, t) {
                assert!((p.index()) < f.semtab.dataset.labels.len());
            }
        }
    }
}

#[test]
fn link_statistics_shape_matches_the_paper() {
    let f = fixture(205);
    let config = KgLinkConfig::fast_test();
    let pre = Preprocessor::new(&f.world.graph, &f.searcher, config);
    let stats = |ds: &kglink::table::Dataset| {
        let processed: Vec<_> = ds.tables.iter().flat_map(|t| pre.process(t)).collect();
        LinkStatistics::compute(&processed)
    };
    let sem = stats(&f.semtab.dataset);
    let viz = stats(&f.viznet.dataset);
    // SemTab-like: no numeric columns, near-total KG coverage.
    assert_eq!(sem.numeric_columns, 0);
    assert!(sem.pct(sem.non_numeric_without_fv) < 10.0);
    // VizNet-like: numeric columns and zero-linkage columns exist.
    assert!(viz.numeric_columns > 0);
    assert!(viz.non_numeric_without_fv > 0);
    // The VizNet-like w/o-ct share exceeds SemTab-like's (paper: 74.7% vs 15.1%).
    assert!(viz.pct(viz.non_numeric_without_ct) > sem.pct(sem.non_numeric_without_ct));
}

#[test]
fn determinism_across_identical_runs() {
    let f1 = fixture(206);
    let f2 = fixture(206);
    assert_eq!(f1.world.graph.len(), f2.world.graph.len());
    assert_eq!(f1.semtab.dataset.len(), f2.semtab.dataset.len());
    let resources1 = f1.resources();
    let resources2 = f2.resources();
    let cfg = KgLinkConfig {
        epochs: 2,
        ..KgLinkConfig::fast_test()
    };
    let (m1, r1) = KgLink::fit(&resources1, &f1.semtab.dataset, cfg.clone());
    let (m2, r2) = KgLink::fit(&resources2, &f2.semtab.dataset, cfg);
    assert_eq!(r1.epoch_loss, r2.epoch_loss, "training is deterministic");
    let s1 = m1.evaluate(&resources1, &f1.semtab.dataset, Split::Test);
    let s2 = m2.evaluate(&resources2, &f2.semtab.dataset, Split::Test);
    assert_eq!(s1.accuracy, s2.accuracy);
}
