//! Failure-injection and edge-case integration tests: the pipeline must
//! degrade gracefully, never panic, on degenerate inputs.

use kglink::core::pipeline::{build_vocab, req, KgLink, Resources};
use kglink::core::serialize::{serialize_table, SlotFill};
use kglink::core::{KgLinkConfig, KgLinkError, Preprocessor};
use kglink::datagen::{pretrain_corpus, semtab_like, SemTabConfig};
use kglink::kg::{KnowledgeGraph, SyntheticWorld, WorldConfig};
use kglink::nn::Tokenizer;
use kglink::search::{
    EntitySearcher, FaultConfig, FaultyBackend, ResilienceConfig, ResilientBackend,
};
use kglink::table::{CellValue, LabelId, Table, TableId};

fn trained_model() -> (
    SyntheticWorld,
    EntitySearcher,
    Tokenizer,
    KgLink,
) {
    let world = SyntheticWorld::generate(&WorldConfig::tiny(401));
    let bench = semtab_like(&world, &SemTabConfig::tiny(401));
    let searcher = EntitySearcher::build(&world.graph);
    let corpus = pretrain_corpus(&world, 401);
    let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
    let tokenizer = Tokenizer::new(vocab);
    let (model, _) = {
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&searcher)
            .tokenizer(&tokenizer)
            .build()
            .unwrap();
        KgLink::fit(
            &resources,
            &bench.dataset,
            KgLinkConfig {
                epochs: 2,
                ..KgLinkConfig::fast_test()
            },
        )
    };
    (world, searcher, tokenizer, model)
}

#[test]
fn annotating_degenerate_tables_never_panics() {
    let (world, searcher, tokenizer, model) = trained_model();
    let resources = Resources::builder()
        .graph(&world.graph)
        .backend(&searcher)
        .tokenizer(&tokenizer)
        .build()
        .unwrap();
    let cases: Vec<Table> = vec![
        // All-empty cells.
        Table::new(
            TableId(1),
            vec![],
            vec![vec![CellValue::Empty; 3], vec![CellValue::Empty; 3]],
            vec![LabelId(0), LabelId(0)],
        ),
        // Single cell.
        Table::new(
            TableId(2),
            vec![],
            vec![vec![CellValue::Text("x".into())]],
            vec![LabelId(0)],
        ),
        // Only numeric columns.
        Table::new(
            TableId(3),
            vec![],
            vec![
                (0..5).map(|i| CellValue::Number(i as f64)).collect(),
                (0..5).map(|i| CellValue::Number(i as f64 * 2.0)).collect(),
            ],
            vec![LabelId(0), LabelId(0)],
        ),
        // Pathologically long cell text.
        Table::new(
            TableId(4),
            vec![],
            vec![vec![CellValue::Text("word ".repeat(500))]],
            vec![LabelId(0)],
        ),
        // Cells full of out-of-vocabulary gibberish.
        Table::new(
            TableId(5),
            vec![],
            vec![vec![
                CellValue::Text("zzqqj xxkwv".into()),
                CellValue::Text("bbnmp ccvty".into()),
            ]],
            vec![LabelId(0)],
        ),
        // Very wide table (exceeds max_columns, forces splitting).
        Table::new(
            TableId(6),
            vec![],
            (0..20)
                .map(|i| vec![CellValue::Text(format!("cell{i}"))])
                .collect(),
            (0..20).map(|_| LabelId(0)).collect(),
        ),
    ];
    for table in &cases {
        let preds = model.annotate_request(&resources, req(table)).labels;
        assert_eq!(preds.len(), table.n_cols(), "table {:?}", table.id);
        for p in preds {
            assert!((p.index()) < model.labels.len());
        }
    }
}

#[test]
fn empty_knowledge_graph_still_allows_training() {
    // KGLink degrades to a Doduo-style model when the KG has nothing.
    let world = SyntheticWorld::generate(&WorldConfig::tiny(402));
    let bench = semtab_like(&world, &SemTabConfig::tiny(402));
    let empty = KnowledgeGraph::new();
    let searcher = EntitySearcher::build(&empty);
    let corpus = pretrain_corpus(&world, 402);
    let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
    let tokenizer = Tokenizer::new(vocab);
    let resources = Resources::builder()
        .graph(&empty)
        .backend(&searcher)
        .tokenizer(&tokenizer)
        .build()
        .unwrap();
    // Without KG features the tiny fixture carries little signal per epoch;
    // give the optimizer a budget that can actually beat chance.
    let mut config = KgLinkConfig {
        epochs: 4,
        ..KgLinkConfig::fast_test()
    };
    config.optimizer.lr = 2e-3;
    let (model, _) = KgLink::fit(&resources, &bench.dataset, config);
    let summary = model.evaluate(&resources, &bench.dataset, kglink::table::Split::Test);
    assert!(summary.support > 0);
    assert!(
        summary.accuracy > 1.0 / bench.dataset.labels.len() as f64,
        "even KG-less, the PLM learns: {}",
        summary.accuracy
    );
}

#[test]
fn preprocessing_with_empty_graph_yields_no_kg_information() {
    let world = SyntheticWorld::generate(&WorldConfig::tiny(403));
    let bench = semtab_like(&world, &SemTabConfig::tiny(403));
    let empty = KnowledgeGraph::new();
    let searcher = EntitySearcher::build(&empty);
    let pre = Preprocessor::new(&empty, &searcher, KgLinkConfig::fast_test());
    for table in bench.dataset.tables.iter().take(5) {
        for pt in pre.process(table) {
            for c in 0..pt.table.n_cols() {
                assert!(pt.candidate_type_names[c].is_empty());
                assert!(pt.feature_seqs[c].is_none());
                assert!(!pt.has_linkage[c]);
            }
        }
    }
}

#[test]
fn outage_mid_annotate_degrades_and_stays_deterministic() {
    // The backend dies after the 5th retrieval call and never recovers.
    // Annotation must keep its arity for every table and produce the same
    // predictions on an identically-configured rerun.
    let (world, searcher, tokenizer, model) = trained_model();
    let bench = semtab_like(&world, &SemTabConfig::tiny(401));
    let tables: Vec<&Table> = bench.dataset.tables.iter().take(6).collect();
    let annotate_all = |resources: &Resources<'_>| -> Vec<Vec<LabelId>> {
        tables
            .iter()
            .map(|t| model.annotate_request(resources, req(t)).labels)
            .collect()
    };
    let run = || -> Vec<Vec<LabelId>> {
        let dying = FaultyBackend::new(
            &searcher,
            FaultConfig::healthy(404).with_outage(5, u64::MAX),
        );
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&dying)
            .tokenizer(&tokenizer)
            .build()
            .unwrap();
        annotate_all(&resources)
    };
    let first = run();
    for (preds, t) in first.iter().zip(&tables) {
        assert_eq!(preds.len(), t.n_cols(), "table {:?}", t.id);
        for p in preds {
            assert!(p.index() < model.labels.len());
        }
    }
    assert_eq!(first, run(), "fault injection must be deterministic");
}

#[test]
fn flapping_backend_during_fit_completes_deterministically() {
    // 30% of retrievals fail behind the resilient decorator for the whole
    // of training; fit must complete and be bit-for-bit repeatable.
    let world = SyntheticWorld::generate(&WorldConfig::tiny(405));
    let bench = semtab_like(&world, &SemTabConfig::tiny(405));
    let searcher = EntitySearcher::build(&world.graph);
    let corpus = pretrain_corpus(&world, 405);
    let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
    let tokenizer = Tokenizer::new(vocab);
    let run = || {
        let flaky = FaultyBackend::new(&searcher, FaultConfig::with_fault_rate(405, 0.3));
        let resilient = ResilientBackend::new(&flaky, ResilienceConfig::default());
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&resilient)
            .tokenizer(&tokenizer)
            .build()
            .unwrap();
        let (model, report) = KgLink::fit(&resources, &bench.dataset, KgLinkConfig::fast_test());
        let summary = model.evaluate(&resources, &bench.dataset, kglink::table::Split::Test);
        (report.epoch_loss, summary.accuracy, summary.support)
    };
    let (loss1, acc1, support1) = run();
    assert!(!loss1.is_empty());
    assert!(support1 > 0);
    assert!(loss1.iter().all(|l| l.is_finite()));
    let (loss2, acc2, _) = run();
    assert_eq!(loss1, loss2, "training under faults must be deterministic");
    assert_eq!(acc1, acc2);
}

#[test]
fn full_outage_degrades_every_linkable_column_to_the_no_kg_shape() {
    // Paper Table IV semantics: a column whose retrieval failed serializes
    // exactly like the `w/o ct` + `w/o fv` ablation — no candidate types,
    // no feature vector, [MASK]-only label slot.
    let world = SyntheticWorld::generate(&WorldConfig::tiny(406));
    let bench = semtab_like(&world, &SemTabConfig::tiny(406));
    let searcher = EntitySearcher::build(&world.graph);
    let dead = FaultyBackend::new(&searcher, FaultConfig::with_fault_rate(406, 1.0));
    let config = KgLinkConfig::fast_test();
    let pre_dead = Preprocessor::new(&world.graph, &dead, config.clone());
    let pre_ok = Preprocessor::new(&world.graph, &searcher, config.clone());
    let vocab = build_vocab(
        pretrain_corpus(&world, 406).iter().map(String::as_str),
        &[&bench.dataset],
        6000,
    );
    let tokenizer = Tokenizer::new(vocab);
    let no_kg = config.clone().without_kg();
    let mut degraded_total = 0usize;
    for table in bench.dataset.tables.iter().take(8) {
        for (pt_dead, pt_ok) in pre_dead.process(table).iter().zip(pre_ok.process(table)) {
            for c in 0..pt_ok.table.n_cols() {
                // Every column the healthy run links must report degraded.
                if pt_ok.has_linkage[c] {
                    assert!(pt_dead.degraded[c]);
                }
                if pt_dead.degraded[c] {
                    degraded_total += 1;
                    assert!(!pt_dead.has_linkage[c]);
                    assert!(pt_dead.candidate_type_names[c].is_empty());
                    assert!(pt_dead.feature_seqs[c].is_none());
                }
            }
            // With zero KG information the ablation flags are inert: the
            // serialized token stream matches the w/o-KG ablation exactly.
            let with_flags =
                serialize_table(pt_dead, &tokenizer, &bench.dataset.labels, &config, SlotFill::Mask);
            let without_kg =
                serialize_table(pt_dead, &tokenizer, &bench.dataset.labels, &no_kg, SlotFill::Mask);
            assert_eq!(with_flags.ids, without_kg.ids);
            assert_eq!(with_flags.cls, without_kg.cls);
            assert_eq!(with_flags.slot, without_kg.slot);
        }
    }
    assert!(degraded_total > 0, "SemTab-like tables have linkable columns");
}

#[test]
fn zero_column_table_yields_typed_error_and_annotate_survives() {
    let (world, searcher, tokenizer, model) = trained_model();
    let pre = Preprocessor::new(&world.graph, &searcher, KgLinkConfig::fast_test());
    let empty = Table::new(TableId(90), vec![], vec![], vec![]);
    match pre.try_process(&empty) {
        Err(KgLinkError::DegenerateTable { table, .. }) => assert_eq!(table, TableId(90)),
        other => panic!("expected DegenerateTable, got {other:?}"),
    }
    let resources = Resources::builder()
        .graph(&world.graph)
        .backend(&searcher)
        .tokenizer(&tokenizer)
        .build()
        .unwrap();
    assert!(model.annotate_request(&resources, req(&empty)).labels.is_empty());
}

#[test]
fn extreme_config_values_are_tolerated() {
    let (world, searcher, tokenizer, _) = trained_model();
    let bench = semtab_like(&world, &SemTabConfig::tiny(401));
    let resources = Resources::builder()
        .graph(&world.graph)
        .backend(&searcher)
        .tokenizer(&tokenizer)
        .build()
        .unwrap();
    // k = 1 row, 1 entity per mention, 1 candidate type, tiny budgets.
    let config = KgLinkConfig {
        epochs: 1,
        top_k_rows: 1,
        max_entities_per_mention: 1,
        max_candidate_types: 1,
        tokens_per_column: 2,
        feature_seq_tokens: 1,
        max_columns: 1,
        ..KgLinkConfig::fast_test()
    };
    let (model, _) = KgLink::fit(&resources, &bench.dataset, config);
    let t = &bench.dataset.tables[0];
    assert_eq!(model.annotate_request(&resources, req(t)).labels.len(), t.n_cols());
}
