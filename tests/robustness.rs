//! Failure-injection and edge-case integration tests: the pipeline must
//! degrade gracefully, never panic, on degenerate inputs.

use kglink::core::pipeline::{build_vocab, KgLink, Resources};
use kglink::core::{KgLinkConfig, Preprocessor};
use kglink::datagen::{pretrain_corpus, semtab_like, SemTabConfig};
use kglink::kg::{KnowledgeGraph, SyntheticWorld, WorldConfig};
use kglink::nn::Tokenizer;
use kglink::search::EntitySearcher;
use kglink::table::{CellValue, LabelId, Table, TableId};

fn trained_model() -> (
    SyntheticWorld,
    EntitySearcher,
    Tokenizer,
    KgLink,
) {
    let world = SyntheticWorld::generate(&WorldConfig::tiny(401));
    let bench = semtab_like(&world, &SemTabConfig::tiny(401));
    let searcher = EntitySearcher::build(&world.graph);
    let corpus = pretrain_corpus(&world, 401);
    let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
    let tokenizer = Tokenizer::new(vocab);
    let (model, _) = {
        let resources = Resources::new(&world.graph, &searcher, &tokenizer);
        KgLink::fit(
            &resources,
            &bench.dataset,
            KgLinkConfig {
                epochs: 2,
                ..KgLinkConfig::fast_test()
            },
        )
    };
    (world, searcher, tokenizer, model)
}

#[test]
fn annotating_degenerate_tables_never_panics() {
    let (world, searcher, tokenizer, model) = trained_model();
    let resources = Resources::new(&world.graph, &searcher, &tokenizer);
    let cases: Vec<Table> = vec![
        // All-empty cells.
        Table::new(
            TableId(1),
            vec![],
            vec![vec![CellValue::Empty; 3], vec![CellValue::Empty; 3]],
            vec![LabelId(0), LabelId(0)],
        ),
        // Single cell.
        Table::new(
            TableId(2),
            vec![],
            vec![vec![CellValue::Text("x".into())]],
            vec![LabelId(0)],
        ),
        // Only numeric columns.
        Table::new(
            TableId(3),
            vec![],
            vec![
                (0..5).map(|i| CellValue::Number(i as f64)).collect(),
                (0..5).map(|i| CellValue::Number(i as f64 * 2.0)).collect(),
            ],
            vec![LabelId(0), LabelId(0)],
        ),
        // Pathologically long cell text.
        Table::new(
            TableId(4),
            vec![],
            vec![vec![CellValue::Text("word ".repeat(500))]],
            vec![LabelId(0)],
        ),
        // Cells full of out-of-vocabulary gibberish.
        Table::new(
            TableId(5),
            vec![],
            vec![vec![
                CellValue::Text("zzqqj xxkwv".into()),
                CellValue::Text("bbnmp ccvty".into()),
            ]],
            vec![LabelId(0)],
        ),
        // Very wide table (exceeds max_columns, forces splitting).
        Table::new(
            TableId(6),
            vec![],
            (0..20)
                .map(|i| vec![CellValue::Text(format!("cell{i}"))])
                .collect(),
            (0..20).map(|_| LabelId(0)).collect(),
        ),
    ];
    for table in &cases {
        let preds = model.annotate(&resources, table);
        assert_eq!(preds.len(), table.n_cols(), "table {:?}", table.id);
        for p in preds {
            assert!((p.index()) < model.labels.len());
        }
    }
}

#[test]
fn empty_knowledge_graph_still_allows_training() {
    // KGLink degrades to a Doduo-style model when the KG has nothing.
    let world = SyntheticWorld::generate(&WorldConfig::tiny(402));
    let bench = semtab_like(&world, &SemTabConfig::tiny(402));
    let empty = KnowledgeGraph::new();
    let searcher = EntitySearcher::build(&empty);
    let corpus = pretrain_corpus(&world, 402);
    let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
    let tokenizer = Tokenizer::new(vocab);
    let resources = Resources::new(&empty, &searcher, &tokenizer);
    let (model, _) = KgLink::fit(
        &resources,
        &bench.dataset,
        KgLinkConfig {
            epochs: 3,
            ..KgLinkConfig::fast_test()
        },
    );
    let summary = model.evaluate(&resources, &bench.dataset, kglink::table::Split::Test);
    assert!(summary.support > 0);
    assert!(
        summary.accuracy > 1.0 / bench.dataset.labels.len() as f64,
        "even KG-less, the PLM learns: {}",
        summary.accuracy
    );
}

#[test]
fn preprocessing_with_empty_graph_yields_no_kg_information() {
    let world = SyntheticWorld::generate(&WorldConfig::tiny(403));
    let bench = semtab_like(&world, &SemTabConfig::tiny(403));
    let empty = KnowledgeGraph::new();
    let searcher = EntitySearcher::build(&empty);
    let pre = Preprocessor::new(&empty, &searcher, KgLinkConfig::fast_test());
    for table in bench.dataset.tables.iter().take(5) {
        for pt in pre.process(table) {
            for c in 0..pt.table.n_cols() {
                assert!(pt.candidate_type_names[c].is_empty());
                assert!(pt.feature_seqs[c].is_none());
                assert!(!pt.has_linkage[c]);
            }
        }
    }
}

#[test]
fn extreme_config_values_are_tolerated() {
    let (world, searcher, tokenizer, _) = trained_model();
    let bench = semtab_like(&world, &SemTabConfig::tiny(401));
    let resources = Resources::new(&world.graph, &searcher, &tokenizer);
    // k = 1 row, 1 entity per mention, 1 candidate type, tiny budgets.
    let config = KgLinkConfig {
        epochs: 1,
        top_k_rows: 1,
        max_entities_per_mention: 1,
        max_candidate_types: 1,
        tokens_per_column: 2,
        feature_seq_tokens: 1,
        max_columns: 1,
        ..KgLinkConfig::fast_test()
    };
    let (model, _) = KgLink::fit(&resources, &bench.dataset, config);
    let t = &bench.dataset.tables[0];
    assert_eq!(model.annotate(&resources, t).len(), t.n_cols());
}
