//! Integration tests for the `kglink-serve` annotation service: worker
//! pools must be bit-identical to single-threaded annotation, admission
//! policies must fail requests with typed errors, expired deadlines must
//! degrade (never panic), and the retrieval cache must be transparent.
//!
//! One trained fixture is shared across tests via `OnceLock` — training
//! even the tiny model dominates test time, and every test here only
//! *reads* the model.

use kglink::core::pipeline::{build_vocab, req, KgLink, Resources};
use kglink::core::{KgLinkConfig, Preprocessor};
use kglink::datagen::{pretrain_corpus, semtab_like, SemTabConfig};
use kglink::kg::{GraphAccess, KnowledgeGraph, SyntheticWorld, WorldConfig};
use kglink::nn::Tokenizer;
use kglink::search::{
    CacheConfig, CachingBackend, Deadline, EntitySearcher, FaultConfig, FaultyBackend,
};
use kglink::serve::{
    AdmissionPolicy, AimdConfig, AnnotationService, BrownoutConfig, DegradationRung,
    OverloadConfig, ServiceConfig, ServiceError, SharedBackend,
};
use kglink::table::{LabelId, Table};
use std::sync::{Arc, OnceLock};

struct Fixture {
    model: Arc<KgLink>,
    graph: Arc<KnowledgeGraph>,
    tokenizer: Arc<Tokenizer>,
    searcher: Arc<EntitySearcher>,
    tables: Vec<Table>,
}

impl Fixture {
    /// Resources over an arbitrary backend, for single-threaded baselines.
    fn resources_with<'a>(
        &'a self,
        backend: &'a (dyn kglink::search::KgBackend + 'a),
    ) -> Resources<'a> {
        Resources::builder()
            .graph(&self.graph)
            .backend(backend)
            .tokenizer(&self.tokenizer)
            .build()
            .unwrap()
    }
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(411));
        let bench = semtab_like(&world, &SemTabConfig::tiny(411));
        let searcher = EntitySearcher::build(&world.graph);
        let corpus = pretrain_corpus(&world, 411);
        let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
        let tokenizer = Tokenizer::new(vocab);
        let (model, _) = {
            let resources = Resources::builder()
                .graph(&world.graph)
                .backend(&searcher)
                .tokenizer(&tokenizer)
                .build()
                .unwrap();
            KgLink::fit(
                &resources,
                &bench.dataset,
                KgLinkConfig {
                    epochs: 2,
                    ..KgLinkConfig::fast_test()
                },
            )
        };
        Fixture {
            model: Arc::new(model),
            graph: Arc::new(world.graph.clone()),
            tokenizer: Arc::new(tokenizer),
            searcher: Arc::new(searcher),
            tables: bench.dataset.tables.iter().take(8).cloned().collect(),
        }
    })
}

fn service(fx: &Fixture, config: ServiceConfig) -> AnnotationService {
    let backend: SharedBackend = Arc::clone(&fx.searcher) as SharedBackend;
    AnnotationService::new(
        Arc::clone(&fx.model),
        Arc::clone(&fx.graph) as Arc<dyn GraphAccess>,
        backend,
        Arc::clone(&fx.tokenizer),
        config,
    )
}

#[test]
fn worker_pools_are_bit_identical_to_single_threaded_annotation() {
    let fx = fixture();
    let resources = fx.resources_with(fx.searcher.as_ref());
    let baseline: Vec<Vec<LabelId>> = fx
        .tables
        .iter()
        .map(|t| fx.model.annotate_request(&resources, req(t)).labels)
        .collect();
    for workers in [1, 3] {
        let svc = service(
            fx,
            ServiceConfig {
                workers,
                max_batch: 2,
                cache: Some(CacheConfig::default()),
                ..ServiceConfig::default()
            },
        );
        let tickets = svc.submit_batch(fx.tables.iter().cloned());
        for (i, ticket) in tickets.into_iter().enumerate() {
            let annotation = ticket.expect("queue has room").wait().expect("service up");
            assert_eq!(
                annotation.labels, baseline[i],
                "workers={workers}: table {i} diverged from single-threaded annotate"
            );
            assert!(!annotation.expired);
        }
        let m = svc.metrics();
        assert_eq!(m.completed, fx.tables.len() as u64);
        assert_eq!(m.submitted, fx.tables.len() as u64);
    }
}

#[test]
fn reject_policy_yields_typed_overload_error() {
    let fx = fixture();
    // workers = 0: admission-only mode — nothing drains the queue, so the
    // overflow behavior is deterministic.
    let svc = service(
        fx,
        ServiceConfig {
            workers: 0,
            queue_capacity: 2,
            admission: AdmissionPolicy::Reject,
            ..ServiceConfig::default()
        },
    );
    let t1 = svc.submit(fx.tables[0].clone()).expect("slot 1");
    let t2 = svc.submit(fx.tables[1].clone()).expect("slot 2");
    match svc.submit(fx.tables[2].clone()) {
        Err(ServiceError::Overloaded {
            queue_depth,
            capacity,
        }) => {
            assert_eq!(queue_depth, 2);
            assert_eq!(capacity, 2);
        }
        other => panic!("expected Overloaded, got {:?}", other.map(|t| t.id())),
    }
    let m = svc.metrics();
    assert_eq!(m.rejected, 1);
    assert_eq!(m.queue_depth, 2);
    // Shutdown fails the still-queued requests explicitly.
    drop(svc);
    assert_eq!(t1.wait(), Err(ServiceError::Closed));
    assert_eq!(t2.wait(), Err(ServiceError::Closed));
}

#[test]
fn shed_oldest_fails_the_oldest_ticket() {
    let fx = fixture();
    let svc = service(
        fx,
        ServiceConfig {
            workers: 0,
            queue_capacity: 1,
            admission: AdmissionPolicy::ShedOldest,
            ..ServiceConfig::default()
        },
    );
    let oldest = svc.submit(fx.tables[0].clone()).expect("admitted");
    let newest = svc.submit(fx.tables[1].clone()).expect("admitted by shedding");
    assert_eq!(
        oldest.wait(),
        Err(ServiceError::Shed),
        "the displaced request must learn it was shed"
    );
    let m = svc.metrics();
    assert_eq!(m.shed, 1);
    assert_eq!(m.submitted, 2);
    assert_eq!(m.queue_depth, 1);
    drop(svc);
    assert_eq!(newest.wait(), Err(ServiceError::Closed));
}

#[test]
fn shed_tickets_resolve_promptly_and_are_published_in_metrics() {
    // Regression for eviction accounting: the shed victim's ticket must
    // resolve with the typed error *immediately* at eviction time — not
    // at service drop — and every eviction path must land in the same
    // `shed` counter the metrics snapshot publishes.
    let fx = fixture();
    let svc = service(
        fx,
        ServiceConfig {
            workers: 0,
            queue_capacity: 2,
            admission: AdmissionPolicy::ShedOldest,
            ..ServiceConfig::default()
        },
    );
    let first = svc.submit(fx.tables[0].clone()).expect("admitted");
    let second = svc.submit(fx.tables[1].clone()).expect("admitted");
    let _third = svc.submit(fx.tables[2].clone()).expect("admitted by shedding");
    let _fourth = svc.submit(fx.tables[3].clone()).expect("admitted by shedding");
    // Both victims are already resolved while the service is still alive.
    assert_eq!(first.wait(), Err(ServiceError::Shed));
    assert_eq!(second.wait(), Err(ServiceError::Shed));
    let m = svc.metrics();
    assert_eq!(m.shed, 2, "every eviction must be counted exactly once");
    assert_eq!(m.submitted, 4);
    assert_eq!(m.queue_depth, 2);
}

#[test]
fn adaptive_admission_clamps_below_the_physical_capacity() {
    // With overload protection on, admission happens at the AIMD limit,
    // not at `queue_capacity`: min_limit == max_limit pins the limit so
    // the behavior is deterministic with no workers draining.
    let fx = fixture();
    let svc = service(
        fx,
        ServiceConfig {
            workers: 0,
            queue_capacity: 8,
            admission: AdmissionPolicy::Reject,
            overload: Some(OverloadConfig {
                aimd: AimdConfig {
                    min_limit: 2,
                    max_limit: 2,
                    ..AimdConfig::default()
                },
                brownout: BrownoutConfig::default(),
            }),
            ..ServiceConfig::default()
        },
    );
    let _t1 = svc.submit(fx.tables[0].clone()).expect("slot 1");
    let _t2 = svc.submit(fx.tables[1].clone()).expect("slot 2");
    match svc.submit(fx.tables[2].clone()) {
        Err(ServiceError::Overloaded {
            queue_depth,
            capacity,
        }) => {
            assert_eq!(queue_depth, 2);
            assert_eq!(capacity, 2, "the reported bound is the dynamic limit");
        }
        other => panic!("expected Overloaded at the clamped limit, got {:?}", other.map(|t| t.id())),
    }
    let m = svc.metrics();
    assert_eq!(m.admission_limit, 2);
    assert_eq!(m.rejected, 1);
}

#[test]
fn pinned_no_linkage_rung_is_bit_identical_to_the_dead_backend_baseline() {
    let fx = fixture();
    let svc = service(
        fx,
        ServiceConfig {
            workers: 2,
            cache: None,
            overload: Some(OverloadConfig {
                brownout: BrownoutConfig::pinned(DegradationRung::NoLinkage),
                ..OverloadConfig::default()
            }),
            ..ServiceConfig::default()
        },
    );
    let dead = FaultyBackend::new(fx.searcher.as_ref(), FaultConfig::with_fault_rate(411, 1.0));
    let dead_resources = fx.resources_with(&dead);
    let tickets = svc.submit_batch(fx.tables.iter().cloned());
    for (i, ticket) in tickets.into_iter().enumerate() {
        let annotation = ticket.expect("admitted").wait().expect("degraded, not failed");
        assert_eq!(annotation.rung, DegradationRung::NoLinkage);
        assert!(!annotation.expired, "brownout is not a deadline expiry");
        assert_eq!(
            annotation.labels,
            fx.model
                .annotate_request(&dead_resources, req(&fx.tables[i]))
                .labels,
            "table {i}: rung-2 output must equal the no-linkage baseline"
        );
    }
    let m = svc.metrics();
    assert_eq!(m.served_no_linkage, fx.tables.len() as u64);
    assert_eq!(m.served_full, 0);
    assert_eq!(m.rung, DegradationRung::NoLinkage);
}

#[test]
fn cold_cache_only_rung_matches_no_linkage_and_records_its_rung() {
    let fx = fixture();
    let pinned = |cache| {
        service(
            fx,
            ServiceConfig {
                workers: 1,
                cache,
                overload: Some(OverloadConfig {
                    brownout: BrownoutConfig::pinned(DegradationRung::CacheOnly),
                    ..OverloadConfig::default()
                }),
                ..ServiceConfig::default()
            },
        )
    };
    // With a (stone-cold) cache: every lookup misses, every column takes
    // the degraded path — bit-identical to rung 2, but recorded as rung 1.
    let svc = pinned(Some(CacheConfig::default()));
    let dead = FaultyBackend::new(fx.searcher.as_ref(), FaultConfig::with_fault_rate(411, 1.0));
    let dead_resources = fx.resources_with(&dead);
    let table = &fx.tables[0];
    let annotation = svc.annotate(table.clone()).expect("degraded, not failed");
    assert_eq!(annotation.rung, DegradationRung::CacheOnly);
    assert_eq!(
        annotation.labels,
        fx.model.annotate_request(&dead_resources, req(table)).labels
    );
    assert_eq!(svc.metrics().served_cache_only, 1);
    // Without a cache there is nothing to serve hits from: the rung folds
    // into no-linkage and is recorded as what actually happened.
    let svc = pinned(None);
    let annotation = svc.annotate(table.clone()).expect("degraded, not failed");
    assert_eq!(annotation.rung, DegradationRung::NoLinkage);
    assert_eq!(svc.metrics().served_no_linkage, 1);
}

#[test]
fn default_config_serves_everything_at_full_retrieval() {
    let fx = fixture();
    let svc = service(
        fx,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let annotation = svc.annotate(fx.tables[0].clone()).expect("served");
    assert_eq!(annotation.rung, DegradationRung::Full);
    let m = svc.metrics();
    assert_eq!(m.served_full, 1);
    assert_eq!(m.rung, DegradationRung::Full);
    assert_eq!(
        m.admission_limit,
        ServiceConfig::default().queue_capacity,
        "without overload protection the limit is the physical capacity"
    );
}

#[test]
fn expired_deadline_degrades_gracefully_instead_of_panicking() {
    let fx = fixture();
    let svc = service(
        fx,
        ServiceConfig {
            workers: 1,
            cache: None,
            ..ServiceConfig::default()
        },
    );
    let table = &fx.tables[0];
    // A zero budget is already expired when the worker picks it up: the
    // request must complete through the degraded no-linkage path.
    let annotation = svc
        .submit_with_deadline(table.clone(), Deadline::from_us(0))
        .expect("admitted")
        .wait()
        .expect("expired requests complete, they do not error");
    assert!(annotation.expired);
    assert_eq!(annotation.labels.len(), table.n_cols());
    assert!(annotation.failed_cells > 0, "every retrieval short-circuits");
    // The degraded output equals annotating through an always-failing
    // backend: the no-linkage path does not depend on *why* retrieval
    // failed.
    let dead = FaultyBackend::new(fx.searcher.as_ref(), FaultConfig::with_fault_rate(411, 1.0));
    let dead_resources = fx.resources_with(&dead);
    assert_eq!(
        annotation.labels,
        fx.model.annotate_request(&dead_resources, req(table)).labels
    );
    assert!(svc.metrics().expired >= 1);
}

#[test]
fn repeated_tables_hit_the_cache_and_metrics_reconcile() {
    let fx = fixture();
    let svc = service(
        fx,
        ServiceConfig {
            workers: 2,
            max_batch: 2,
            cache: Some(CacheConfig::default()),
            ..ServiceConfig::default()
        },
    );
    let workload: Vec<Table> = fx
        .tables
        .iter()
        .chain(fx.tables.iter())
        .cloned()
        .collect();
    let tickets = svc.submit_batch(workload.iter().cloned());
    for ticket in tickets {
        ticket.expect("admitted").wait().expect("completed");
    }
    let m = svc.metrics();
    assert_eq!(m.completed, workload.len() as u64);
    assert_eq!(m.queue_depth, 0);
    assert_eq!(m.sim_busy_us.len(), 2);
    assert!(m.latency_p99_us >= m.latency_p50_us);
    assert!(m.retrieval.queries > 0, "workers meter their retrievals");
    assert!(
        m.cache_hit_rate() > 0.0,
        "submitting every table twice must produce cache hits: {m}"
    );
    let cache = m.cache.expect("cache enabled");
    assert_eq!(cache.hits + cache.misses, cache.lookups());
}

#[test]
fn preprocessing_through_the_cache_is_deterministic() {
    // Satellite check: training-time preprocessing routed through
    // `CachingBackend` (cold, then fully warm) must produce exactly the
    // KG evidence the direct searcher produces.
    let fx = fixture();
    let config = KgLinkConfig::fast_test();
    let cached_backend = CachingBackend::new(fx.searcher.as_ref(), CacheConfig::default());
    let pre_direct = Preprocessor::new(&fx.graph, fx.searcher.as_ref(), config.clone());
    let pre_cached = Preprocessor::new(&fx.graph, &cached_backend, config.clone());
    for pass in 0..2 {
        for table in &fx.tables {
            let direct = pre_direct.process(table);
            let cached = pre_cached.process(table);
            assert_eq!(direct.len(), cached.len());
            for (d, c) in direct.iter().zip(&cached) {
                assert_eq!(
                    d.candidate_type_names, c.candidate_type_names,
                    "pass {pass}: candidate types must not depend on cache state"
                );
                assert_eq!(d.feature_seqs, c.feature_seqs);
                assert_eq!(d.has_linkage, c.has_linkage);
            }
        }
    }
    let stats = cached_backend.stats();
    assert!(
        stats.hits > 0,
        "the second pass must be served from the cache: {stats:?}"
    );
    // And end-to-end: annotation over the warm cache equals direct.
    let direct_res = fx.resources_with(fx.searcher.as_ref());
    let cached_res = fx.resources_with(&cached_backend);
    for table in fx.tables.iter().take(3) {
        assert_eq!(
            fx.model.annotate_request(&cached_res, req(table)).labels,
            fx.model.annotate_request(&direct_res, req(table)).labels
        );
    }
}

/// A hot swap under live traffic is atomic: every request is served
/// end-to-end by exactly one epoch (its recorded `model_version`), labels
/// stay bit-identical to the single-threaded baseline throughout, and the
/// same-weights candidate sails through the default divergence gates.
#[test]
fn hot_swap_is_atomic_and_bit_identical() {
    use kglink::serve::{Annotation, SwapPlan};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    let fx = fixture();
    let svc = service(
        fx,
        ServiceConfig {
            workers: 2,
            max_batch: 2,
            cache: None,
            initial_version: 7,
            ..ServiceConfig::default()
        },
    );
    let direct = fx.resources_with(fx.searcher.as_ref());
    let expected: Vec<Vec<LabelId>> = fx
        .tables
        .iter()
        .map(|t| fx.model.annotate_request(&direct, req(t)).labels)
        .collect();

    let stop = AtomicBool::new(false);
    let collected: std::sync::Mutex<Vec<(usize, Annotation)>> = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        let (svc_ref, stop_ref, coll) = (&svc, &stop, &collected);
        s.spawn(move || {
            let mut tickets = Vec::new();
            let mut i = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                let idx = i % fx.tables.len();
                tickets.push((idx, svc_ref.submit(fx.tables[idx].clone()).unwrap()));
                i += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            let mut out = coll.lock().unwrap();
            for (idx, t) in tickets {
                out.push((idx, t.wait().unwrap()));
            }
        });
        // Same weights under a new version id: zero flips, so the default
        // 10% divergence gates pass and the swap must promote.
        let plan = SwapPlan {
            shadow_sample_every: 1,
            shadow_min_requests: 2,
            watch_sample_every: 1,
            watch_min_requests: 2,
            phase_timeout: Duration::from_secs(30),
            ..SwapPlan::default()
        };
        let report = svc
            .swap_model(8, Arc::clone(&fx.model), &plan)
            .expect("same-weights swap promotes");
        assert_eq!((report.from_version, report.to_version), (7, 8));
        assert_eq!(report.shadow_flips, 0, "identical weights never flip");
        assert_eq!(svc.model_version(), 8);
        stop.store(true, Ordering::Relaxed);
    });

    let results = collected.into_inner().unwrap();
    assert!(!results.is_empty());
    for (idx, a) in &results {
        assert!(
            a.model_version == 7 || a.model_version == 8,
            "request served by unknown epoch {}",
            a.model_version
        );
        assert_eq!(&a.labels, &expected[*idx], "torn ticket for table {idx}");
    }
    let m = svc.metrics();
    assert_eq!((m.swaps, m.rollbacks), (1, 0));
    assert_eq!(m.model_version, 8);
    let stats = svc.version_stats();
    assert_eq!(
        stats.values().map(|v| v.served).sum::<u64>(),
        results.len() as u64
    );
}

/// Candidates that cannot possibly serve are refused without touching the
/// epoch: a label-space mismatch is rejected at prepare, and a zero
/// rollback budget fails closed before any phase runs.
#[test]
fn swap_rejects_label_mismatch_and_fails_closed_on_zero_budget() {
    use kglink::core::KgLinkModel;
    use kglink::serve::{SwapError, SwapPhase, SwapPlan};
    use kglink::table::LabelVocab;

    let fx = fixture();
    let svc = service(
        fx,
        ServiceConfig {
            workers: 1,
            initial_version: 1,
            ..ServiceConfig::default()
        },
    );
    // A candidate trained against a different label vocabulary.
    let mut labels = LabelVocab::default();
    for name in ["alpha", "beta"] {
        labels.intern(name);
    }
    let alien = Arc::new(KgLink {
        config: fx.model.config.clone(),
        model: KgLinkModel::new(&fx.model.config, 64, labels.len()),
        labels,
    });
    match svc.swap_model(2, alien, &SwapPlan::default()) {
        Err(SwapError::Rejected {
            phase: SwapPhase::Prepare,
            ..
        }) => {}
        other => panic!("label mismatch must be rejected at prepare, got {other:?}"),
    }
    assert_eq!(svc.model_version(), 1, "rejection never touches the epoch");

    let svc0 = service(
        fx,
        ServiceConfig {
            workers: 1,
            rollback_budget: 0,
            ..ServiceConfig::default()
        },
    );
    match svc0.swap_model(2, Arc::clone(&fx.model), &SwapPlan::default()) {
        Err(SwapError::RollbackBudgetExhausted { budget: 0 }) => {}
        other => panic!("zero budget must fail closed, got {other:?}"),
    }
    // …and the service still serves.
    let a = svc0
        .submit(fx.tables[0].clone())
        .unwrap()
        .wait()
        .expect("fail-closed lifecycle keeps serving");
    assert_eq!(a.model_version, 0);
}
