//! Crash-safety integration tests: kill-and-resume training must be
//! bit-identical, divergence guards must contain injected NaNs, and the
//! serving layer must survive a panicking backend with zero hung tickets,
//! bounded restarts, and honest metrics.

use kglink::core::pipeline::{build_vocab, KgLink, Resources};
use kglink::core::{FitOptions, GuardPolicy, KgLinkConfig};
use kglink::datagen::{pretrain_corpus, semtab_like, SemTabConfig};
use kglink::table::Dataset;
use kglink::kg::{KnowledgeGraph, SyntheticWorld, WorldConfig};
use kglink::nn::checkpoint::save_train_state;
use kglink::nn::layers::param::HasParams;
use kglink::nn::Tokenizer;
use kglink::obs::{EventKind, Tracer};
use kglink::search::{EntitySearcher, PanickingBackend};
use kglink::serve::{
    AdmissionPolicy, AnnotationService, ServiceConfig, ServiceError, SharedBackend,
};
use kglink::table::Table;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

struct Fixture {
    graph: KnowledgeGraph,
    searcher: EntitySearcher,
    tokenizer: Tokenizer,
    dataset: Dataset,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(907));
        let bench = semtab_like(&world, &SemTabConfig::tiny(907));
        let searcher = EntitySearcher::build(&world.graph);
        let corpus = pretrain_corpus(&world, 907);
        let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
        Fixture {
            graph: world.graph.clone(),
            searcher,
            tokenizer: Tokenizer::new(vocab),
            dataset: bench.dataset,
        }
    })
}

fn resources(fx: &Fixture) -> Resources<'_> {
    Resources::builder()
        .graph(&fx.graph)
        .backend(&fx.searcher)
        .tokenizer(&fx.tokenizer)
        .build()
        .unwrap()
}

/// Small batches so the tiny dataset still yields several optimizer steps
/// per epoch (checkpoint/halt boundaries need steps to land between).
fn train_config() -> KgLinkConfig {
    KgLinkConfig {
        epochs: 2,
        batch_size: 4,
        ..KgLinkConfig::fast_test()
    }
}

fn temp_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir()
        .join(format!("kglink-crash-{}-{tag}", std::process::id()))
        .join("model.kgck")
}

/// Full mutable training state (values + AdamW moments) as bytes, for
/// bit-identity assertions.
fn state_bytes(model: &mut KgLink) -> Vec<u8> {
    save_train_state(&mut model.model).to_vec()
}

/// True iff no parameter value or AdamW moment is NaN. (Scanning the raw
/// state blob would be wrong: its shape headers misalign 4-byte windows,
/// so honest float data can alias to NaN bit patterns.)
fn state_is_nan_free(model: &mut KgLink) -> bool {
    let mut clean = true;
    model.model.visit_params(&mut |p| {
        for &v in p.value.data().iter().chain(p.m.data()).chain(p.v.data()) {
            clean &= !v.is_nan();
        }
    });
    clean
}

/// `Tracer::incr` logs a Counter event under the same name as the
/// matching `event_with`; count only the Instant events when asserting
/// "one event per occurrence".
fn instant_events(tracer: &Tracer, name: &str) -> usize {
    tracer
        .events_named(name)
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Instant))
        .count()
}

// ---------------------------------------------------------------------------
// Kill + resume
// ---------------------------------------------------------------------------

#[test]
fn kill_and_resume_is_bit_identical_at_every_sampled_step() {
    let fx = fixture();
    let res = resources(fx);
    let config = train_config();
    let (mut baseline, base_report) =
        KgLink::fit_with(&res, &fx.dataset, config.clone(), &FitOptions::new()).unwrap();
    assert!(!base_report.halted);
    let baseline_state = state_bytes(&mut baseline);

    // Kill after steps on both sides of an epoch boundary (the tiny run
    // has ~5 steps per epoch) and resume from the last atomic checkpoint.
    for kill_step in [2, 4, 6] {
        let path = temp_ckpt(&format!("resume-{kill_step}"));
        let halted_opts = FitOptions::new()
            .checkpoint_every(&path, 2)
            .halt_after_step(kill_step);
        let (_, halted_report) =
            KgLink::fit_with(&res, &fx.dataset, config.clone(), &halted_opts).unwrap();
        assert!(halted_report.halted, "kill at step {kill_step} must report");
        assert!(path.exists(), "checkpoint must exist before the kill");

        let resume_opts = FitOptions::new()
            .checkpoint_every(&path, 2)
            .resume_from(&path);
        let (mut resumed, resume_report) =
            KgLink::fit_with(&res, &fx.dataset, config.clone(), &resume_opts).unwrap();
        assert!(!resume_report.halted);
        assert_eq!(
            resume_report.resumed_from_step,
            Some(kill_step - (kill_step % 2)),
            "resume must start from the last checkpoint boundary"
        );
        assert_eq!(
            state_bytes(&mut resumed),
            baseline_state,
            "kill at step {kill_step} + resume diverged from the uninterrupted run"
        );
        assert_eq!(resume_report.val_accuracy, base_report.val_accuracy);
        assert_eq!(resume_report.best_epoch, base_report.best_epoch);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}

/// A checkpoint written while every GEMM ran through the scalar reference
/// path must resume bit-identically on the fast kernel path. This is the
/// cross-path guarantee the kernel crate's parity policy buys: summation
/// order per output element is fixed, so the two paths are interchangeable
/// mid-run — an operator can roll a kernel change forward or back across a
/// restart without perturbing training.
#[test]
fn scalar_path_checkpoint_resumes_bit_identically_on_kernel_path() {
    let fx = fixture();
    let res = resources(fx);
    let config = train_config();
    // Baseline: uninterrupted run, entirely on the fast kernel path.
    let (mut baseline, _) =
        KgLink::fit_with(&res, &fx.dataset, config.clone(), &FitOptions::new()).unwrap();
    let baseline_state = state_bytes(&mut baseline);

    // Halted run on the scalar reference path. (Both paths are bit-identical
    // on finite data, so flipping the global mode cannot perturb tests that
    // happen to run concurrently.)
    let path = temp_ckpt("scalar-to-kernel");
    kglink::nn::kernels::set_reference_mode(true);
    let halted = KgLink::fit_with(
        &res,
        &fx.dataset,
        config.clone(),
        &FitOptions::new().checkpoint_every(&path, 2).halt_after_step(4),
    );
    kglink::nn::kernels::set_reference_mode(false);
    let (_, halted_report) = halted.unwrap();
    assert!(halted_report.halted);
    assert!(path.exists());

    // Resume on the fast kernel path: the checkpoint is path-agnostic.
    let (mut resumed, resume_report) = KgLink::fit_with(
        &res,
        &fx.dataset,
        config,
        &FitOptions::new().checkpoint_every(&path, 2).resume_from(&path),
    )
    .unwrap();
    assert!(!resume_report.halted);
    assert_eq!(
        state_bytes(&mut resumed),
        baseline_state,
        "scalar-path checkpoint diverged when resumed on the kernel path"
    );
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn resume_from_corrupt_checkpoint_is_a_typed_error() {
    let fx = fixture();
    let res = resources(fx);
    let path = temp_ckpt("corrupt");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, b"KGCKgarbage-that-is-not-a-checkpoint").unwrap();
    let err = match KgLink::fit_with(
        &res,
        &fx.dataset,
        train_config(),
        &FitOptions::new().resume_from(&path),
    ) {
        Ok(_) => panic!("corrupt checkpoint must not be silently ignored"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("checkpoint"),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

// ---------------------------------------------------------------------------
// Divergence guards
// ---------------------------------------------------------------------------

#[test]
fn skip_step_guard_contains_injected_nan_and_reports_it() {
    let fx = fixture();
    let tracer = Tracer::enabled();
    let res = Resources::builder()
        .graph(&fx.graph)
        .backend(&fx.searcher)
        .tokenizer(&fx.tokenizer)
        .tracer(&tracer)
        .build()
        .unwrap();
    let opts = FitOptions::new()
        .guard(GuardPolicy::SkipStep)
        .inject_nonfinite_at(&[2, 5]);
    let (mut model, report) = KgLink::fit_with(&res, &fx.dataset, train_config(), &opts).unwrap();
    assert_eq!(report.nonfinite_steps, 2);
    assert_eq!(report.rollbacks, 0);
    assert_eq!(tracer.counter("train.nonfinite"), 2);
    assert_eq!(instant_events(&tracer, "train.nonfinite"), 2);
    // The poison never reached the weights.
    assert!(
        state_is_nan_free(&mut model),
        "NaN leaked into the checkpointed state"
    );
    for acc in &report.val_accuracy {
        assert!(acc.is_finite());
    }
}

#[test]
fn unguarded_nan_poisons_the_run_proving_the_guard_matters() {
    let fx = fixture();
    let res = resources(fx);
    let opts = FitOptions::new().inject_nonfinite_at(&[1]); // GuardPolicy::Off
    let (mut model, report) = KgLink::fit_with(&res, &fx.dataset, train_config(), &opts).unwrap();
    assert_eq!(report.nonfinite_steps, 1);
    assert!(
        !state_is_nan_free(&mut model),
        "without a guard the injected NaN must propagate"
    );
}

#[test]
fn rollback_guard_restores_last_checkpoint_after_consecutive_bad_steps() {
    let fx = fixture();
    let tracer = Tracer::enabled();
    let res = Resources::builder()
        .graph(&fx.graph)
        .backend(&fx.searcher)
        .tokenizer(&fx.tokenizer)
        .tracer(&tracer)
        .build()
        .unwrap();
    let path = temp_ckpt("rollback");
    let opts = FitOptions::new()
        .checkpoint_every(&path, 2)
        .guard(GuardPolicy::Rollback { max_consecutive: 2 })
        .inject_nonfinite_at(&[3, 4, 5]);
    let (mut model, report) = KgLink::fit_with(&res, &fx.dataset, train_config(), &opts).unwrap();
    assert_eq!(report.nonfinite_steps, 3);
    assert!(report.rollbacks >= 1, "three consecutive bad steps with K=2");
    assert_eq!(tracer.counter("train.rollback"), report.rollbacks);
    assert!(
        state_is_nan_free(&mut model),
        "rollback must discard the poisoned state"
    );
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

// ---------------------------------------------------------------------------
// Serving under panics
// ---------------------------------------------------------------------------

struct ServeFixture {
    model: Arc<KgLink>,
    graph: Arc<KnowledgeGraph>,
    tokenizer: Arc<Tokenizer>,
    searcher: Arc<EntitySearcher>,
    tables: Vec<Table>,
}

fn serve_fixture() -> &'static ServeFixture {
    static FIXTURE: OnceLock<ServeFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let fx = fixture();
        let res = resources(fx);
        let (model, _) = KgLink::fit(&res, &fx.dataset, train_config());
        ServeFixture {
            model: Arc::new(model),
            graph: Arc::new(fx.graph.clone()),
            tokenizer: Arc::new(fx.tokenizer.clone()),
            searcher: Arc::new(EntitySearcher::build(&fx.graph)),
            tables: fx.dataset.tables.iter().take(10).cloned().collect(),
        }
    })
}

fn panicking_service(
    fx: &ServeFixture,
    every: u64,
    config: ServiceConfig,
) -> (AnnotationService, Arc<PanickingBackend<Arc<EntitySearcher>>>) {
    let backend = Arc::new(PanickingBackend::new(Arc::clone(&fx.searcher), every));
    let svc = AnnotationService::new(
        Arc::clone(&fx.model),
        Arc::clone(&fx.graph) as Arc<dyn kglink::kg::GraphAccess>,
        Arc::clone(&backend) as SharedBackend,
        Arc::clone(&fx.tokenizer),
        config,
    );
    (svc, backend)
}

#[test]
fn panicking_backend_leaves_zero_hung_tickets_and_bounded_restarts() {
    let fx = serve_fixture();
    let budget = 32;
    let tracer = Tracer::enabled();
    let (mut svc, backend) = panicking_service(
        fx,
        5,
        ServiceConfig {
            workers: 2,
            max_batch: 2,
            cache: None, // every retrieval reaches the panicking backend
            admission: AdmissionPolicy::Block,
            restart_budget: budget,
            tracer: tracer.clone(),
            ..ServiceConfig::default()
        },
    );
    let tickets = svc.submit_batch(fx.tables.iter().cloned());
    let mut ok = 0u64;
    let mut panicked = 0u64;
    for ticket in tickets {
        // Every ticket must resolve — a hang here times the test out.
        match ticket.expect("queue has room").wait() {
            Ok(_) => ok += 1,
            Err(ServiceError::WorkerPanicked) => panicked += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(panicked > 0, "a panic every 5 retrievals must hit some request");
    assert_eq!(ok + panicked, fx.tables.len() as u64);
    // The pool survived: a fresh request still completes (or at worst
    // panics typed — but never hangs or reports a dead pool).
    match svc.annotate(fx.tables[0].clone()) {
        Ok(_) => ok += 1,
        Err(ServiceError::WorkerPanicked) => panicked += 1,
        Err(other) => panic!("pool should still serve, got {other}"),
    }
    // Quiesce before reconciling: shutdown joins the workers and the
    // supervisor, so every panic/restart is fully accounted.
    svc.shutdown();
    let metrics = svc.metrics();
    assert_eq!(metrics.completed, ok);
    assert_eq!(metrics.worker_panics, panicked);
    assert!(metrics.worker_restarts <= budget as u64);
    assert!(backend.panics() >= panicked);
    // Tracer events reconcile with the counters.
    assert_eq!(tracer.counter("worker.panic"), metrics.worker_panics);
    assert_eq!(
        instant_events(&tracer, "worker.panic") as u64,
        metrics.worker_panics
    );
    assert_eq!(tracer.counter("worker.restart"), metrics.worker_restarts);
}

#[test]
fn restart_budget_exhaustion_fails_queued_and_future_requests_typed() {
    let fx = serve_fixture();
    let (svc, _backend) = panicking_service(
        fx,
        1, // every retrieval panics: the pool can never make progress
        ServiceConfig {
            workers: 1,
            max_batch: 1,
            cache: None,
            admission: AdmissionPolicy::Block,
            restart_budget: 0,
            ..ServiceConfig::default()
        },
    );
    let tickets = svc.submit_batch(fx.tables.iter().take(4).cloned());
    let mut outcomes = Vec::new();
    for ticket in tickets {
        outcomes.push(ticket.expect("queue has room").wait());
    }
    assert!(
        outcomes
            .iter()
            .all(|o| matches!(
                o,
                Err(ServiceError::WorkerPanicked)
                    | Err(ServiceError::RestartBudgetExhausted { .. })
            )),
        "all tickets must fail typed, got {outcomes:?}"
    );
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, Err(ServiceError::RestartBudgetExhausted { budget: 0 }))),
        "queued requests behind the dead pool must see the budget error"
    );
    // The failure latches: new submissions are refused with the same error.
    let refused = svc.submit(fx.tables[0].clone());
    assert!(matches!(
        refused,
        Err(ServiceError::RestartBudgetExhausted { budget: 0 })
    ));
    let metrics = svc.metrics();
    assert_eq!(metrics.worker_panics, 1, "one panic spent the pool");
    assert_eq!(metrics.worker_restarts, 0);
    assert_eq!(metrics.workers_alive, 0);
}

#[test]
fn supervisor_respawns_within_budget_and_keeps_serving() {
    let fx = serve_fixture();
    let tracer = Tracer::enabled();
    let (mut svc, _backend) = panicking_service(
        fx,
        4,
        ServiceConfig {
            workers: 1, // every panic kills the whole pool until respawn
            max_batch: 1,
            cache: None,
            admission: AdmissionPolicy::Block,
            restart_budget: 64,
            tracer: tracer.clone(),
            ..ServiceConfig::default()
        },
    );
    let tickets = svc.submit_batch(fx.tables.iter().cloned());
    let mut resolved = 0usize;
    for ticket in tickets {
        let _ = ticket.expect("queue has room").wait();
        resolved += 1;
    }
    assert_eq!(resolved, fx.tables.len());
    // Pre-shutdown the respawn path never decrements the alive count:
    // the lone worker is always either running or being replaced.
    assert_eq!(svc.metrics().workers_alive, 1, "respawned worker is alive");
    // Quiesce before reconciling counters (a final respawn may still be
    // in flight on the supervisor thread until shutdown joins it).
    svc.shutdown();
    let metrics = svc.metrics();
    assert!(
        metrics.worker_restarts >= 1,
        "with one worker, surviving panics requires respawns"
    );
    assert_eq!(tracer.counter("worker.restart"), metrics.worker_restarts);
}

#[test]
fn shutdown_is_idempotent_and_fails_leftovers_typed() {
    let fx = serve_fixture();
    // Admission-only service: nothing drains the queue, so submitted
    // requests are still queued at shutdown and must fail typed.
    let backend: SharedBackend = Arc::clone(&fx.searcher) as SharedBackend;
    let mut svc = AnnotationService::new(
        Arc::clone(&fx.model),
        Arc::clone(&fx.graph) as Arc<dyn kglink::kg::GraphAccess>,
        backend,
        Arc::clone(&fx.tokenizer),
        ServiceConfig {
            workers: 0,
            cache: None,
            admission: AdmissionPolicy::Reject,
            ..ServiceConfig::default()
        },
    );
    let tickets = svc.submit_batch(fx.tables.iter().take(3).cloned());
    svc.shutdown();
    svc.shutdown(); // second call must be a no-op, not a double-join/panic
    for ticket in tickets {
        assert!(matches!(
            ticket.expect("queue had room").wait(),
            Err(ServiceError::Closed)
        ));
    }
    assert!(matches!(
        svc.submit(fx.tables[0].clone()),
        Err(ServiceError::Closed)
    ));
    drop(svc); // drop also runs shutdown; third time must still be a no-op
}
