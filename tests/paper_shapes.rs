//! Small-scale statistical shape checks tying the codebase to the paper's
//! headline claims. These train miniature models, so they use tiny
//! fixtures; the full-scale versions live in `kglink-bench`'s exp_*
//! binaries.

use kglink::core::pipeline::{build_vocab, KgLink, Resources};
use kglink::core::{KgLinkConfig, Preprocessor};
use kglink::datagen::{pretrain_corpus, semtab_like, SemTabConfig};
use kglink::kg::{SyntheticWorld, TypeHierarchy, WorldConfig};
use kglink::nn::Tokenizer;
use kglink::search::EntitySearcher;
use kglink::table::Split;

struct Fix {
    world: SyntheticWorld,
    bench: kglink::datagen::GeneratedBenchmark,
    searcher: EntitySearcher,
    tokenizer: Tokenizer,
}

fn fix(seed: u64) -> Fix {
    let world = SyntheticWorld::generate(&WorldConfig {
        seed,
        scale: 0.25,
        ..WorldConfig::default()
    });
    let bench = semtab_like(
        &world,
        &SemTabConfig {
            seed,
            n_tables: 70,
            ..SemTabConfig::default()
        },
    );
    let searcher = EntitySearcher::build(&world.graph);
    let corpus = pretrain_corpus(&world, seed);
    let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 8000);
    Fix {
        world,
        bench,
        searcher,
        tokenizer: Tokenizer::new(vocab),
    }
}

/// Paper Table II's core claim: KG information helps. The full model must
/// beat the `w/o ct` ablation (which strips all KG signals) on KG-derived
/// data.
#[test]
fn kg_information_helps_on_semtab_like_data() {
    let f = fix(601);
    let resources = Resources::builder()
        .graph(&f.world.graph)
        .backend(&f.searcher)
        .tokenizer(&f.tokenizer)
        .build()
        .unwrap();
    let base = KgLinkConfig {
        epochs: 6,
        patience: 0,
        ..KgLinkConfig::default()
    };
    let (full, _) = KgLink::fit(&resources, &f.bench.dataset, base.clone());
    let (no_kg, _) = KgLink::fit(&resources, &f.bench.dataset, base.without_kg());
    let s_full = full.evaluate(&resources, &f.bench.dataset, Split::Test);
    let s_no_kg = no_kg.evaluate(&resources, &f.bench.dataset, Split::Test);
    assert!(
        s_full.accuracy >= s_no_kg.accuracy,
        "KG info must not hurt: full {} vs w/o ct {}",
        s_full.accuracy,
        s_no_kg.accuracy
    );
}

/// The paper's Figure 2(a)/Figure 5 motivation, checked mechanically: for
/// an athlete column, Part 1 produces candidate types at *both*
/// granularities (the fine profession via `occupation`, the coarse
/// `Person` via `instance of`), and the two stand in an ancestor
/// relationship in the KG's hierarchy.
#[test]
fn candidate_types_span_the_granularity_hierarchy() {
    let f = fix(602);
    let pre = Preprocessor::new(&f.world.graph, &f.searcher, KgLinkConfig::default());
    let h = TypeHierarchy::new(&f.world.graph);
    let person = f.world.types.person;
    // Find a table whose first column is an athlete subject column.
    let mut checked = false;
    for table in &f.bench.dataset.tables {
        let label_name = f.bench.dataset.labels.name(table.labels[0]);
        if !matches!(label_name, "Basketball player" | "Cricketer" | "Footballer") {
            continue;
        }
        let pt = &pre.process(table)[0];
        let cts = &pt.candidate_type_entities[0];
        if cts.is_empty() {
            continue;
        }
        // Some candidate lies inside Person's subtree or is Person itself.
        let person_related = cts
            .iter()
            .filter(|ct| h.is_subtype_of(ct.entity, person))
            .count();
        if person_related >= 1 {
            checked = true;
            break;
        }
    }
    assert!(checked, "no athlete column produced person-hierarchy candidate types");
}

/// Paper Table V's claim in miniature: with a small row budget, the
/// link-score row filter keeps more KG-linkable rows than original order.
#[test]
fn link_score_filter_keeps_better_linked_rows() {
    use kglink::core::config::RowFilter;
    use kglink::core::filter::prune_and_filter;
    use kglink::core::linking::LinkedTable;
    let f = fix(603);
    let mut ours_total = 0.0f32;
    let mut orig_total = 0.0f32;
    for table in f.bench.dataset.tables.iter().take(25) {
        let linked = LinkedTable::link(table, &f.searcher, 10);
        let ours = prune_and_filter(table, &linked, &f.world.graph, 3, RowFilter::LinkScore);
        let orig = prune_and_filter(table, &linked, &f.world.graph, 3, RowFilter::Original);
        ours_total += ours.row_scores.iter().sum::<f32>();
        orig_total += orig.row_scores.iter().sum::<f32>();
    }
    assert!(
        ours_total >= orig_total,
        "link-score filter must select rows with at least the linkage mass of original order: {ours_total} vs {orig_total}"
    );
}
