//! Interop integration tests: CSV ingestion → annotation, and KG
//! export/import → identical pipeline behaviour.

use kglink::core::pipeline::{build_vocab, KgLink, Resources};
use kglink::core::{KgLinkConfig, Preprocessor};
use kglink::datagen::{pretrain_corpus, semtab_like, SemTabConfig};
use kglink::kg::io::{export_triples, import_triples};
use kglink::kg::{SyntheticWorld, WorldConfig};
use kglink::nn::Tokenizer;
use kglink::search::EntitySearcher;
use kglink::table::{table_from_csv, TableId};

#[test]
fn csv_file_can_be_annotated_end_to_end() {
    let world = SyntheticWorld::generate(&WorldConfig::tiny(301));
    let bench = semtab_like(&world, &SemTabConfig::tiny(301));
    let searcher = EntitySearcher::build(&world.graph);
    let corpus = pretrain_corpus(&world, 301);
    let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
    let tokenizer = Tokenizer::new(vocab);
    let resources = Resources::builder()
        .graph(&world.graph)
        .backend(&searcher)
        .tokenizer(&tokenizer)
        .build()
        .unwrap();
    let (model, _) = KgLink::fit(
        &resources,
        &bench.dataset,
        KgLinkConfig {
            epochs: 3,
            ..KgLinkConfig::fast_test()
        },
    );

    // Build a CSV from world entities.
    let g = &world.graph;
    let mut csv = String::from("city,country\n");
    for &city in world.instances_of(world.types.city).iter().take(5) {
        let country = g
            .one_hop(city)
            .into_iter()
            .find(|&n| g.types_of(n).contains(&world.types.country))
            .map(|e| g.label(e).to_string())
            .unwrap_or_default();
        csv.push_str(&format!("{},{}\n", g.label(city), country));
    }
    let table = table_from_csv(TableId(500), &csv).unwrap();
    assert_eq!(table.headers, vec!["city", "country"]);
    let names = model
        .annotate_request(&resources, kglink::core::req(&table))
        .names(&model.labels);
    assert_eq!(names.len(), 2);
    // Predictions are valid label names from the trained vocabulary.
    for n in &names {
        assert!(model.labels.get(n).is_some());
    }
}

#[test]
fn exported_kg_behaves_identically_after_import() {
    let world = SyntheticWorld::generate(&WorldConfig::tiny(302));
    let round_tripped = import_triples(&export_triples(&world.graph)).unwrap();

    let s1 = EntitySearcher::build(&world.graph);
    let s2 = EntitySearcher::build(&round_tripped);
    // Same retrieval results for a real mention.
    let mention = world
        .graph
        .label(world.instances_of(world.types.city)[0])
        .to_string();
    let h1 = s1.link_mention(&mention, 5);
    let h2 = s2.link_mention(&mention, 5);
    assert_eq!(h1.len(), h2.len());
    for ((e1, sc1), (e2, sc2)) in h1.iter().zip(&h2) {
        assert_eq!(e1, e2);
        assert!((sc1 - sc2).abs() < 1e-5);
    }

    // Same Part-1 output on a generated table.
    let bench = semtab_like(&world, &SemTabConfig::tiny(302));
    let cfg = KgLinkConfig::fast_test();
    let pre1 = Preprocessor::new(&world.graph, &s1, cfg.clone());
    let pre2 = Preprocessor::new(&round_tripped, &s2, cfg);
    let t = &bench.dataset.tables[0];
    let p1 = pre1.process(t);
    let p2 = pre2.process(t);
    assert_eq!(p1.len(), p2.len());
    for (a, b) in p1.iter().zip(&p2) {
        assert_eq!(a.candidate_type_names, b.candidate_type_names);
        assert_eq!(a.feature_seqs, b.feature_seqs);
        assert_eq!(a.has_linkage, b.has_linkage);
    }
}
