//! Property-based tests over the core invariants (proptest).

use kglink::core::config::RowFilter;
use kglink::core::filter::prune_and_filter;
use kglink::core::linking::LinkedTable;
use kglink::nn::kernels::{gelu, gelu_grad, softmax};
use kglink::nn::{cross_entropy, dmlm_loss, Tensor};
use kglink::search::{tokenize, Bm25Params, InvertedIndex};
use kglink::table::{CellValue, EvalSummary, LabelId, Table, TableId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- tokenizer / BM25 -------------------------------------------------

    #[test]
    fn tokenize_outputs_lowercase_alphanumeric(s in ".{0,60}") {
        for tok in tokenize(&s) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
            // Lowercased as far as Unicode allows: any remaining uppercase
            // char (e.g. '🄰') must have no distinct lowercase mapping.
            for c in tok.chars() {
                if c.is_uppercase() {
                    prop_assert!(c.to_lowercase().eq(std::iter::once(c)));
                }
            }
        }
    }

    #[test]
    fn bm25_idf_positive_and_monotone(n in 1usize..10_000, df in 0usize..10_000) {
        let df = df.min(n);
        let idf = Bm25Params::idf(n, df);
        prop_assert!(idf > 0.0);
        if df < n {
            prop_assert!(Bm25Params::idf(n, df + 1) <= idf + 1e-6);
        }
    }

    #[test]
    fn bm25_scores_are_finite_and_nonnegative(
        docs in proptest::collection::vec("[a-z]{1,8}( [a-z]{1,8}){0,4}", 1..20),
        query in "[a-z]{1,8}( [a-z]{1,8}){0,2}",
        k in 1usize..10,
    ) {
        let mut idx = InvertedIndex::new(Bm25Params::default());
        for (i, d) in docs.iter().enumerate() {
            idx.add_document(i as u32, d);
        }
        idx.finish();
        let hits = idx.search(&query, k);
        prop_assert!(hits.len() <= k);
        for h in &hits {
            prop_assert!(h.score.is_finite());
            prop_assert!(h.score > 0.0);
        }
        // Sorted descending.
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    // ---- numeric kernels ---------------------------------------------------

    #[test]
    fn softmax_is_a_distribution(xs in proptest::collection::vec(-30.0f32..30.0, 1..12)) {
        let p = softmax(&xs);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
    }

    #[test]
    fn cross_entropy_is_nonnegative_with_zero_sum_gradient(
        xs in proptest::collection::vec(-10.0f32..10.0, 2..8),
        target_raw in 0usize..8,
    ) {
        let target = target_raw % xs.len();
        let (loss, grad) = cross_entropy(&xs, target);
        prop_assert!(loss >= -1e-5);
        prop_assert!(grad.iter().sum::<f32>().abs() < 1e-4);
    }

    #[test]
    fn dmlm_gradient_vanishes_iff_distributions_match(
        xs in proptest::collection::vec(-5.0f32..5.0, 2..6),
    ) {
        let (_, grad) = dmlm_loss(&xs, &xs, 2.0);
        prop_assert!(grad.iter().all(|g| g.abs() < 1e-5));
    }

    #[test]
    fn gelu_grad_matches_finite_difference(x in -4.0f32..4.0) {
        let eps = 1e-3;
        let num = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
        prop_assert!((num - gelu_grad(x)).abs() < 5e-3);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in proptest::collection::vec(-2.0f32..2.0, 6),
        b in proptest::collection::vec(-2.0f32..2.0, 6),
        c in proptest::collection::vec(-2.0f32..2.0, 6),
    ) {
        let a = Tensor::from_vec(2, 3, a);
        let b = Tensor::from_vec(3, 2, b);
        let c = Tensor::from_vec(3, 2, c);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    // ---- metrics ------------------------------------------------------------

    #[test]
    fn accuracy_and_f1_are_bounded(
        pairs in proptest::collection::vec((0u32..5, 0u32..5), 1..40),
    ) {
        let preds: Vec<LabelId> = pairs.iter().map(|&(p, _)| LabelId(p)).collect();
        let truths: Vec<LabelId> = pairs.iter().map(|&(_, t)| LabelId(t)).collect();
        let s = EvalSummary::compute(&preds, &truths);
        prop_assert!((0.0..=1.0).contains(&s.accuracy));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s.weighted_f1));
        prop_assert!(s.weighted_f1 <= s.accuracy + 1e-9 || s.weighted_f1 <= 1.0);
        // Perfect predictions give both = 1.
        let s2 = EvalSummary::compute(&truths, &truths);
        prop_assert!((s2.accuracy - 1.0).abs() < 1e-9);
        prop_assert!((s2.weighted_f1 - 1.0).abs() < 1e-9);
    }

    // ---- cell parsing ---------------------------------------------------------

    #[test]
    fn cell_parse_never_panics_and_classifies(s in ".{0,30}") {
        let cell = CellValue::parse(&s);
        let _ = cell.mention_kind();
        let _ = cell.surface();
        if s.trim().is_empty() {
            prop_assert_eq!(cell, CellValue::Empty);
        }
    }

    #[test]
    fn numbers_round_trip_through_parse(n in -1_000_000i64..1_000_000) {
        let cell = CellValue::parse(&n.to_string());
        match cell {
            CellValue::Number(v) => prop_assert_eq!(v as i64, n),
            CellValue::Date(_) => prop_assert!((1000..2400).contains(&n)),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    // ---- row filter ---------------------------------------------------------

    #[test]
    fn row_filter_never_exceeds_k(
        rows in proptest::collection::vec("[a-z]{2,8}", 1..15),
        k in 1usize..20,
    ) {
        let table = Table::new(
            TableId(0),
            vec![],
            vec![rows.iter().map(|s| CellValue::parse(s)).collect()],
            vec![LabelId(0)],
        );
        let graph = kglink::kg::KnowledgeGraph::new();
        let searcher = kglink::search::EntitySearcher::build(&graph);
        let linked = LinkedTable::link(&table, &searcher, 5);
        let filtered = prune_and_filter(&table, &linked, &graph, k, RowFilter::LinkScore);
        prop_assert!(filtered.table.n_rows() <= k.max(1));
        prop_assert!(filtered.table.n_rows() <= table.n_rows());
        prop_assert_eq!(filtered.row_order.len(), filtered.table.n_rows());
        // Row scores are sorted descending under the link-score filter.
        for w in filtered.row_scores.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }
}
