//! Observability integration: a traced, fault-injected annotation run
//! must produce a causally ordered, well-formed, deterministic event log
//! that reconciles with the pipeline's own degradation accounting.

use kglink::core::pipeline::{build_vocab, req, KgLink, Resources};
use kglink::core::KgLinkConfig;
use kglink::datagen::{pretrain_corpus, semtab_like, SemTabConfig};
use kglink::kg::{SyntheticWorld, WorldConfig};
use kglink::nn::Tokenizer;
use kglink::obs::{Event, EventKind, Tracer};
use kglink::search::{
    EntitySearcher, FaultConfig, FaultyBackend, ResilienceConfig, ResilientBackend,
};

/// Everything about an event that must be identical across reruns —
/// wall-clock fields (`t_us`, span `elapsed_us`) are excluded, counter
/// totals and payload fields (attempt numbers, simulated backoffs,
/// breaker states) are not.
fn fingerprint(e: &Event) -> (String, String) {
    let kind = match &e.kind {
        EventKind::SpanStart => "start".to_string(),
        EventKind::SpanEnd { .. } => "end".to_string(),
        EventKind::Instant => "instant".to_string(),
        EventKind::Counter { value } => format!("counter={value}"),
    };
    (format!("{}:{kind}", e.name), format!("{:?}", e.fields))
}

/// One traced annotation pass over `n_tables` tables through a full-outage
/// backend. Fresh backend + tracer per call, so reruns are independent.
fn traced_outage_run(
    world: &SyntheticWorld,
    searcher: &EntitySearcher,
    tokenizer: &Tokenizer,
    model: &KgLink,
    tables: &[&kglink::table::Table],
) -> (Tracer, usize) {
    let tracer = Tracer::enabled();
    let dead = FaultyBackend::new(searcher, FaultConfig::with_fault_rate(517, 1.0));
    let resilient =
        ResilientBackend::new(&dead, ResilienceConfig::default()).with_tracer(&tracer);
    let resources = Resources::builder()
        .graph(&world.graph)
        .backend(&resilient)
        .tokenizer(tokenizer)
        .tracer(&tracer)
        .build()
        .unwrap();
    let mut degraded_total = 0;
    for t in tables {
        let outcome = model.annotate_request(&resources, req(t));
        assert_eq!(outcome.labels.len(), t.n_cols());
        degraded_total += outcome.degraded_columns;
    }
    (tracer, degraded_total)
}

#[test]
fn fault_injected_run_produces_a_causally_ordered_deterministic_event_log() {
    let world = SyntheticWorld::generate(&WorldConfig::tiny(517));
    let bench = semtab_like(&world, &SemTabConfig::tiny(517));
    let searcher = EntitySearcher::build(&world.graph);
    let corpus = pretrain_corpus(&world, 517);
    let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
    let tokenizer = Tokenizer::new(vocab);
    let (model, _) = {
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&searcher)
            .tokenizer(&tokenizer)
            .build()
            .unwrap();
        KgLink::fit(
            &resources,
            &bench.dataset,
            KgLinkConfig {
                epochs: 1,
                ..KgLinkConfig::fast_test()
            },
        )
    };
    let tables: Vec<_> = bench.dataset.tables.iter().take(4).collect();

    let (tracer, degraded_total) =
        traced_outage_run(&world, &searcher, &tokenizer, &model, &tables);
    let events = tracer.events();
    assert!(!events.is_empty());

    // Sequence numbers are dense and monotone: seq order IS causal order.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "event log must be gap-free and ordered");
    }

    // Spans are well-formed: every SpanEnd closes an earlier SpanStart of
    // the same id and name.
    let mut open: std::collections::HashMap<u64, &str> = std::collections::HashMap::new();
    for e in &events {
        match e.kind {
            EventKind::SpanStart => {
                assert!(open.insert(e.span, e.name).is_none(), "span ids are unique");
            }
            EventKind::SpanEnd { .. } => {
                assert_eq!(
                    open.remove(&e.span),
                    Some(e.name),
                    "SpanEnd must match an open SpanStart"
                );
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "every span closed by the end of the run");

    // The resilience story reads off the log in causal order: retries are
    // attempted first, the breaker then trips closed→open, and only after
    // that trip do outright rejections appear.
    let first_seq = |name: &str| {
        events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("expected at least one `{name}` event"))
            .seq
    };
    let first_retry = first_seq("retrieval.retry");
    let first_transition = first_seq("breaker.transition");
    let first_reject = first_seq("breaker.reject");
    assert!(
        first_retry < first_transition,
        "retries precede the breaker trip"
    );
    assert!(
        first_transition < first_reject,
        "rejections only happen after the breaker opened"
    );
    let trip = events.iter().find(|e| e.name == "breaker.transition").unwrap();
    assert!(
        trip.fields.contains(&("from", "closed".to_string()))
            && trip.fields.contains(&("to", "open".to_string())),
        "first transition is closed→open, got {:?}",
        trip.fields
    );

    // Degradation events reconcile exactly with the pipeline's own count.
    assert!(degraded_total > 0, "full outage degrades linkable columns");
    assert_eq!(
        tracer.events_named("degrade.column").len(),
        degraded_total,
        "one degrade.column event per degraded column"
    );

    // Every pipeline stage timed something, under one root span per table.
    let stages = tracer.stages();
    for stage in ["annotate", "retrieval", "filter", "feature", "encode", "classify"] {
        assert!(stages.contains_key(stage), "stage `{stage}` missing");
    }
    assert_eq!(stages["annotate"].count(), tables.len() as u64);

    // And the whole log is deterministic: an identically-seeded rerun
    // replays the same events in the same causal order (timing aside).
    let (tracer2, degraded2) = traced_outage_run(&world, &searcher, &tokenizer, &model, &tables);
    assert_eq!(degraded_total, degraded2);
    let fp1: Vec<_> = events.iter().map(fingerprint).collect();
    let fp2: Vec<_> = tracer2.events().iter().map(fingerprint).collect();
    assert_eq!(fp1, fp2, "fault-injected tracing must be deterministic");
}
