//! Knowledge-graph exploration: walk through the paper's Figure 5 scenario
//! on the synthetic world — ambiguous mention linking, one-hop
//! neighborhoods, the overlapping filter, and the type hierarchy behind the
//! granularity gap.
//!
//! ```bash
//! cargo run --release --example kg_explorer
//! ```

use kglink::core::config::RowFilter;
use kglink::core::filter::prune_and_filter;
use kglink::core::linking::LinkedTable;
use kglink::kg::{SyntheticWorld, TypeHierarchy, WorldConfig};
use kglink::search::EntitySearcher;
use kglink::table::{CellValue, LabelId, Table, TableId};

fn main() {
    let world = SyntheticWorld::generate(&WorldConfig {
        seed: 11,
        scale: 0.5,
        ..WorldConfig::default()
    });
    let g = &world.graph;
    let searcher = EntitySearcher::build(g);

    // --- 1. Ambiguous mention linking -----------------------------------
    let some_athlete = world.instances_of(world.types.basketball_player)[0];
    let mention = g.label(some_athlete).to_string();
    println!("BM25 candidates for mention {mention:?}:");
    for (e, score) in searcher.link_mention(&mention, 5) {
        println!("  {e} {:?} ({}) score {score:.2}", g.label(e), g.entity(e).description);
    }

    // --- 2. One-hop neighborhood (the feature sequence source) ----------
    println!("\nOne-hop neighborhood of {:?}:", g.label(some_athlete));
    for (p, o) in g.one_hop_with_predicates(some_athlete).iter().take(8) {
        println!("  --{}--> {:?}", g.predicate_name(*p), g.label(*o));
    }

    // --- 3. The overlapping filter on a two-column row -------------------
    // Build a row like Figure 5: an athlete and their team.
    let team = g
        .one_hop(some_athlete)
        .into_iter()
        .find(|&e| g.types_of(e).contains(&world.types.sports_team));
    if let Some(team) = team {
        let table = Table::new(
            TableId(0),
            vec![],
            vec![
                vec![CellValue::Text(g.label(some_athlete).to_string())],
                vec![CellValue::Text(g.label(team).to_string())],
            ],
            vec![LabelId(0), LabelId(1)],
        );
        let linked = LinkedTable::link(&table, &searcher, 10);
        let filtered = prune_and_filter(&table, &linked, g, 10, RowFilter::LinkScore);
        println!(
            "\nOverlapping filter on row [{:?}, {:?}]:",
            g.label(some_athlete),
            g.label(team)
        );
        for (c, col) in filtered.cells.iter().enumerate() {
            for pe in &col[0].entities {
                println!(
                    "  column {c}: kept {:?} (linking score {:.2}, overlap score {})",
                    g.label(pe.entity),
                    pe.linking_score,
                    pe.overlap_score
                );
            }
        }
    }

    // --- 4. The type granularity gap -------------------------------------
    let h = TypeHierarchy::new(g);
    let fine = world.types.basketball_player;
    let coarse = world.types.person;
    println!(
        "\nType hierarchy: {:?} is {} level(s) below {:?} (ancestors: {:?})",
        g.label(fine),
        h.depth(fine),
        g.label(coarse),
        h.ancestors(fine).iter().map(|&t| g.label(t)).collect::<Vec<_>>()
    );
    println!(
        "Granularity gap between {:?} and {:?}: {:?} — and between {:?} and an unrelated type {:?}: {:?} (the paper's Figure 2a case)",
        g.label(fine),
        g.label(coarse),
        h.granularity_gap(fine, coarse),
        g.label(fine),
        g.label(world.types.genre),
        h.granularity_gap(fine, world.types.genre),
    );
}
