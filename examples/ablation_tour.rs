//! A tour of KGLink's ablations (the paper's Table II) on a small world:
//! toggling the mask task, the candidate types, and the feature vector,
//! and inspecting what each component contributes.
//!
//! ```bash
//! cargo run --release --example ablation_tour
//! ```

use kglink::core::pipeline::{build_vocab, KgLink, Resources};
use kglink::core::KgLinkConfig;
use kglink::datagen::{pretrain_corpus, semtab_like, SemTabConfig};
use kglink::kg::{SyntheticWorld, WorldConfig};
use kglink::nn::Tokenizer;
use kglink::search::EntitySearcher;
use kglink::table::Split;

fn main() {
    let world = SyntheticWorld::generate(&WorldConfig {
        seed: 31,
        scale: 0.35,
        ..WorldConfig::default()
    });
    let bench = semtab_like(
        &world,
        &SemTabConfig {
            seed: 31,
            n_tables: 100,
            ..SemTabConfig::default()
        },
    );
    let searcher = EntitySearcher::build(&world.graph);
    let corpus = pretrain_corpus(&world, 31);
    let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 8000);
    let tokenizer = Tokenizer::new(vocab);
    let resources = Resources::builder()
        .graph(&world.graph)
        .backend(&searcher)
        .tokenizer(&tokenizer)
        .build()
        .expect("a complete resource bundle");

    let base = KgLinkConfig {
        epochs: 8,
        ..KgLinkConfig::default()
    };
    let variants: Vec<(&str, KgLinkConfig)> = vec![
        ("KGLink (full)", base.clone()),
        ("w/o msk  (no representation-generation task)", base.clone().without_mask_task()),
        ("w/o ct   (no KG info at all)", base.clone().without_kg()),
        ("w/o fv   (no feature vector)", base.clone().without_feature_vector()),
    ];

    println!("{:<48} {:>10} {:>12}", "variant", "accuracy", "weighted F1");
    for (name, config) in variants {
        let (model, _) = KgLink::fit(&resources, &bench.dataset, config);
        let s = model.evaluate(&resources, &bench.dataset, Split::Test);
        println!(
            "{:<48} {:>9.2}% {:>11.2}%",
            name,
            s.accuracy_pct(),
            s.weighted_f1_pct()
        );
    }
    println!(
        "\nExpected shape (paper Table II): the full model on top; dropping the\n\
         candidate types costs the most, the feature vector and mask task less."
    );
}
