//! Annotate a CSV file's columns with a trained KGLink.
//!
//! ```bash
//! cargo run --release --example annotate_csv                # built-in demo CSV
//! cargo run --release --example annotate_csv -- my.csv      # your own file
//! ```
//!
//! The model is trained on the VizNet-like benchmark (coarse web-table
//! labels), then applied to the CSV: each column gets one of the learned
//! semantic types together with the KG evidence Part 1 extracted for it.

use kglink::core::pipeline::{build_vocab, req, KgLink, Resources};
use kglink::core::{KgLinkConfig, Preprocessor};
use kglink::datagen::{pretrain_corpus, viznet_like, VizNetConfig};
use kglink::kg::{SyntheticWorld, WorldConfig};
use kglink::nn::Tokenizer;
use kglink::search::EntitySearcher;
use kglink::table::{table_from_csv, TableId};

fn demo_csv(world: &SyntheticWorld) -> String {
    // Build a CSV out of real world entities so the KG has something to say.
    let g = &world.graph;
    let mut out = String::from("player,club,height\n");
    for &athlete in world.instances_of(world.types.footballer).iter().take(6) {
        let team = g
            .one_hop(athlete)
            .into_iter()
            .find(|&n| g.types_of(n).contains(&world.types.sports_team))
            .map(|t| g.label(t).to_string())
            .unwrap_or_default();
        let height = world
            .numeric
            .height_cm
            .get(&athlete)
            .copied()
            .unwrap_or(180.0);
        out.push_str(&format!("{},{},{height:.0}\n", g.label(athlete), team));
    }
    out
}

fn main() {
    let world = SyntheticWorld::generate(&WorldConfig {
        seed: 51,
        scale: 0.4,
        ..WorldConfig::default()
    });
    let csv_text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => demo_csv(&world),
    };
    let table = table_from_csv(TableId(0), &csv_text).unwrap_or_else(|e| {
        eprintln!("CSV parse error: {e}");
        std::process::exit(1);
    });
    println!(
        "Parsed table: {} columns × {} rows (headers: {:?})\n",
        table.n_cols(),
        table.n_rows(),
        table.headers
    );

    let bench = viznet_like(
        &world,
        &VizNetConfig {
            seed: 51,
            n_tables: 250,
            ..VizNetConfig::default()
        },
    );
    let searcher = EntitySearcher::build(&world.graph);
    let corpus = pretrain_corpus(&world, 51);
    let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 10_000);
    let tokenizer = Tokenizer::new(vocab);
    let resources = Resources::builder()
        .graph(&world.graph)
        .backend(&searcher)
        .tokenizer(&tokenizer)
        .build()
        .expect("a complete resource bundle");
    println!("Training KGLink on the VizNet-like benchmark…");
    let (kglink, _) = KgLink::fit(
        &resources,
        &bench.dataset,
        KgLinkConfig {
            epochs: 6,
            ..KgLinkConfig::default()
        },
    );

    let pre = Preprocessor::new(&world.graph, &searcher, kglink.config.clone());
    let processed = pre.process(&table);
    let predictions = kglink
        .annotate_request(&resources, req(&table))
        .names(&kglink.labels);
    println!("\nColumn annotations:");
    let mut col = 0usize;
    for pt in &processed {
        for c in 0..pt.table.n_cols() {
            let header = table
                .headers
                .get(col)
                .map(String::as_str)
                .unwrap_or("<no header>");
            println!(
                "  column {col} ({header}): type = {:?}",
                predictions[col]
            );
            if let Some(stats) = pt.numeric_stats[c] {
                println!(
                    "      numeric column: mean {:.1}, variance {:.1}, median {:.1}",
                    stats.mean, stats.variance, stats.median
                );
            } else if !pt.candidate_type_names[c].is_empty() {
                println!("      KG candidate types: {:?}", pt.candidate_type_names[c]);
            } else {
                println!("      no KG evidence — prediction rests on the PLM prior");
            }
            col += 1;
        }
    }
}
