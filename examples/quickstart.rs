//! Quickstart: generate a small world, train KGLink, annotate a table.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use kglink::core::pipeline::{build_vocab, req, KgLink, Resources};
use kglink::core::KgLinkConfig;
use kglink::datagen::{pretrain_corpus, semtab_like, SemTabConfig};
use kglink::kg::{KgStats, SyntheticWorld, WorldConfig};
use kglink::nn::Tokenizer;
use kglink::search::EntitySearcher;
use kglink::table::Split;

fn main() {
    // 1. A synthetic WikiData-like world.
    let world = SyntheticWorld::generate(&WorldConfig {
        seed: 42,
        scale: 0.3,
        ..WorldConfig::default()
    });
    println!("Knowledge graph:\n{}\n", KgStats::compute(&world.graph));

    // 2. A SemTab-like benchmark generated from that world.
    let bench = semtab_like(
        &world,
        &SemTabConfig {
            seed: 42,
            n_tables: 80,
            ..SemTabConfig::default()
        },
    );
    println!(
        "Dataset: {} tables, {} columns, {} semantic types\n",
        bench.dataset.len(),
        bench.dataset.n_columns(),
        bench.dataset.labels.len()
    );

    // 3. Shared resources: BM25 index + tokenizer.
    let searcher = EntitySearcher::build(&world.graph);
    let corpus = pretrain_corpus(&world, 42);
    let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 8000);
    let tokenizer = Tokenizer::new(vocab);
    let resources = Resources::builder()
        .graph(&world.graph)
        .backend(&searcher)
        .tokenizer(&tokenizer)
        .build()
        .expect("a complete resource bundle");

    // 4. Train KGLink.
    let config = KgLinkConfig {
        epochs: 8,
        ..KgLinkConfig::default()
    };
    println!("Training KGLink ({} epochs)…", config.epochs);
    let (kglink, report) = KgLink::fit(&resources, &bench.dataset, config);
    println!(
        "Validation accuracy per epoch: {:?}",
        report
            .val_accuracy
            .iter()
            .map(|a| format!("{:.2}", 100.0 * a))
            .collect::<Vec<_>>()
    );

    // 5. Evaluate and annotate.
    let summary = kglink.evaluate(&resources, &bench.dataset, Split::Test);
    println!(
        "\nTest: accuracy {:.2}%, weighted F1 {:.2}% over {} columns",
        summary.accuracy_pct(),
        summary.weighted_f1_pct(),
        summary.support
    );

    let table = bench.dataset.tables_in(Split::Test).next().expect("test table");
    let names = kglink
        .annotate_request(&resources, req(table))
        .names(&kglink.labels);
    println!("\nAnnotated test table {:?}:", table.id);
    for (c, name) in names.iter().enumerate() {
        let truth = bench.dataset.labels.name(table.labels[c]);
        let first = table.cell(0, c).surface();
        println!("  column {c} (first cell {first:?}): predicted {name:?}, truth {truth:?}");
    }
}
