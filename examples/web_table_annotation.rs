//! Annotating hand-written "web tables" with a trained KGLink — including
//! the two failure regimes the paper opens with: a numeric column that no
//! KG method can link (valuable context missing), and a fine-grained
//! athlete column whose dataset label is coarse (type granularity gap).
//!
//! ```bash
//! cargo run --release --example web_table_annotation
//! ```

use kglink::core::pipeline::{build_vocab, req, KgLink, Resources};
use kglink::core::{KgLinkConfig, Preprocessor};
use kglink::datagen::{pretrain_corpus, viznet_like, VizNetConfig};
use kglink::kg::{SyntheticWorld, WorldConfig};
use kglink::nn::Tokenizer;
use kglink::search::EntitySearcher;
use kglink::table::{CellValue, LabelId, Table, TableId};

fn main() {
    let world = SyntheticWorld::generate(&WorldConfig {
        seed: 21,
        scale: 0.4,
        ..WorldConfig::default()
    });
    let bench = viznet_like(
        &world,
        &VizNetConfig {
            seed: 21,
            n_tables: 200,
            ..VizNetConfig::default()
        },
    );
    let searcher = EntitySearcher::build(&world.graph);
    let corpus = pretrain_corpus(&world, 21);
    let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 10_000);
    let tokenizer = Tokenizer::new(vocab);
    let resources = Resources::builder()
        .graph(&world.graph)
        .backend(&searcher)
        .tokenizer(&tokenizer)
        .build()
        .expect("a complete resource bundle");

    println!("Training KGLink on the VizNet-like benchmark…");
    let (kglink, _) = KgLink::fit(
        &resources,
        &bench.dataset,
        KgLinkConfig {
            epochs: 6,
            ..KgLinkConfig::default()
        },
    );

    // A hand-written roster table in the spirit of the paper's Figure 2:
    // real athlete names from the world, a team column, a position
    // abbreviation column, and a numeric column.
    let athletes = world.instances_of(world.types.basketball_player);
    let name_of = |e| world.graph.label(e).to_string();
    let team_of = |e| {
        world
            .graph
            .one_hop(e)
            .into_iter()
            .find(|&n| world.graph.types_of(n).contains(&world.types.sports_team))
            .map(name_of)
            .unwrap_or_default()
    };
    let rows: Vec<_> = athletes.iter().take(6).collect();
    let table = Table::new(
        TableId(9000),
        vec![],
        vec![
            rows.iter().map(|&&a| CellValue::Text(name_of(a))).collect(),
            rows.iter().map(|&&a| CellValue::parse(&team_of(a))).collect(),
            rows.iter()
                .enumerate()
                .map(|(i, _)| CellValue::Text(["PF", "PG", "SG", "C", "SF", "PF"][i].to_string()))
                .collect(),
            rows.iter()
                .enumerate()
                .map(|(i, _)| CellValue::Number(180.0 + 5.0 * i as f64))
                .collect(),
        ],
        vec![LabelId(0); 4], // ground truth unknown: we are annotating
    );

    // Peek into Part 1: what the KG stage extracted.
    let pre = Preprocessor::new(&world.graph, &searcher, kglink.config.clone());
    let pt = &pre.process(&table)[0];
    println!("\nPart 1 — KG candidate types per column:");
    for c in 0..pt.table.n_cols() {
        println!(
            "  column {c}: candidate types {:?}{}",
            pt.candidate_type_names[c],
            if pt.numeric_stats[c].is_some() {
                " [numeric column — mean/variance/median injected instead]"
            } else {
                ""
            }
        );
    }

    let names = kglink
        .annotate_request(&resources, req(&table))
        .names(&kglink.labels);
    println!("\nPart 2 — predicted column types:");
    for (c, name) in names.iter().enumerate() {
        println!(
            "  column {c} (cells like {:?}): {name}",
            table.cell(0, c).surface()
        );
    }
    println!(
        "\nNote: even though the KG proposes fine types like 'Basketball player',\n\
         the model predicts the dataset's coarse 'name' label — the type\n\
         granularity gap the representation-generation sub-task bridges."
    );
}
