#!/usr/bin/env bash
# Regenerate every table and figure of the paper. Results land in results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p kglink-bench
for exp in exp_table1 exp_table2 exp_table3 exp_table4 exp_table5 \
           exp_fig7 exp_fig8 exp_fig9 exp_fig10 exp_qualitative \
           exp_design_sweeps exp_chaos exp_serve exp_obs exp_crash exp_overload \
           exp_scale exp_bench exp_swap; do
    echo "=== $exp ==="
    cargo run --release -q -p kglink-bench --bin "$exp" 2>&1 | tee "results/$exp.txt"
done
echo "All experiments done — see results/."
