#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, strict clippy.
# Run from the repository root. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== exp_serve smoke (serving-layer identity + cache gate) =="
KGLINK_FAST=1 cargo run --release -q -p kglink-bench --bin exp_serve -- --smoke

echo "== exp_obs smoke (stage tiling + zero-overhead tracer gate) =="
KGLINK_FAST=1 cargo run --release -q -p kglink-bench --bin exp_obs -- --smoke

echo "== exp_crash smoke (kill+resume bit-identity, guards, panic isolation) =="
KGLINK_FAST=1 cargo run --release -q -p kglink-bench --bin exp_crash -- --smoke

echo "== atomic-checkpoint-write gate =="
# Checkpoints must go through the Checkpointer's temp→fsync→rename path in
# crates/nn/src/checkpoint.rs. A bare fs::write/File::create of a .kgck (or
# anything named checkpoint) in product code can leave a torn file behind a
# crash — exactly what the format's CRC exists to catch, not to cause.
# (Tests may forge corrupt checkpoint bytes on purpose; they are exempt.)
if grep -rnE 'fs::write|File::create' --include='*.rs' crates src 2>/dev/null \
    | grep -iE 'kgck|ckpt|checkpoint' \
    | grep -v '^crates/nn/src/checkpoint.rs'; then
  echo "FAIL: checkpoint write outside the atomic Checkpointer (crates/nn/src/checkpoint.rs)"
  exit 1
fi

echo "== single-percentile-implementation gate =="
# All percentile/quantile math lives in kglink-obs's Histogram. A hand-rolled
# sort-and-index percentile anywhere else reintroduces the drift this layer
# was built to kill.
if grep -rnE "fn (percentile|quantile)" --include='*.rs' crates src examples tests benches 2>/dev/null \
    | grep -v '^crates/obs/'; then
  echo "FAIL: percentile/quantile implementation outside crates/obs (use kglink_obs::Histogram)"
  exit 1
fi

echo "CI OK"
