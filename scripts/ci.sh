#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, strict clippy.
# Run from the repository root. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== exp_serve smoke (serving-layer identity + cache gate) =="
KGLINK_FAST=1 cargo run --release -q -p kglink-bench --bin exp_serve -- --smoke

echo "CI OK"
