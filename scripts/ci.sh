#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, strict clippy.
# Run from the repository root. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== exp_serve smoke (serving-layer identity + cache gate) =="
KGLINK_FAST=1 cargo run --release -q -p kglink-bench --bin exp_serve -- --smoke

echo "== exp_obs smoke (stage tiling + zero-overhead tracer gate) =="
KGLINK_FAST=1 cargo run --release -q -p kglink-bench --bin exp_obs -- --smoke

echo "== exp_crash smoke (kill+resume bit-identity, guards, panic isolation) =="
KGLINK_FAST=1 cargo run --release -q -p kglink-bench --bin exp_crash -- --smoke

echo "== exp_overload smoke (admission control, degradation ladder, retry budgets) =="
KGLINK_FAST=1 cargo run --release -q -p kglink-bench --bin exp_overload -- --smoke

echo "== exp_scale smoke (disk store: transparency, typed corruption, memory budget) =="
KGLINK_FAST=1 cargo run --release -q -p kglink-bench --bin exp_scale -- --smoke

echo "== exp_bench smoke (kernel parity + speedup floor) =="
KGLINK_FAST=1 cargo run --release -q -p kglink-bench --bin exp_bench -- --smoke

echo "== exp_swap smoke (registry round-trip, hot swap under load, rollback) =="
KGLINK_FAST=1 cargo run --release -q -p kglink-bench --bin exp_swap -- --smoke

echo "== kglink-lint self-test (fixture corpus meta-gate) =="
# The linter must still *find* things before its clean workspace run means
# anything: every rule's fixtures must fire exactly as declared. A rule
# that silently went blind fails here, not in production.
cargo run --release -q -p kglink-lint -- --self-test

echo "== kglink-lint --workspace --deny-all =="
# Workspace invariant gate: panic-freedom, determinism, atomic checkpoint
# writes, single-source percentile math, lock order, unsafe hygiene, plus
# the interprocedural rules (blocking-under-lock, deadline-drop,
# epoch-hold) over the workspace call graph. This replaces the old
# atomic-checkpoint-write and single-percentile grep gates (same
# invariants, now rename-robust and suppression-audited — see DESIGN.md
# §11). Findings are exported to results/lint.jsonl.
cargo run --release -q -p kglink-lint -- --workspace --deny-all --json

# Opt-in ThreadSanitizer stage: dynamic cross-check of the same lock/wait
# discipline the interprocedural lint rules reason about statically. TSan
# needs nightly (-Zsanitizer + -Zbuild-std), so the stage is gated on
# KGLINK_TSAN=1 and skipped with a visible notice when nightly (or its
# rust-src component) is unavailable — it must never silently pass.
if [[ "${KGLINK_TSAN:-0}" == "1" ]]; then
    if rustup run nightly rustc --version >/dev/null 2>&1 \
        && rustup component list --toolchain nightly 2>/dev/null \
            | grep -q '^rust-src (installed)'; then
        echo "== ThreadSanitizer: crates/serve concurrency tests (nightly) =="
        host="$(rustc -vV | sed -n 's/^host: //p')"
        RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -Zbuild-std --target "$host" \
            --target-dir target/tsan -p kglink-serve
    else
        echo "== ThreadSanitizer: SKIPPED (nightly toolchain with rust-src not available) =="
    fi
else
    echo "== ThreadSanitizer: off (set KGLINK_TSAN=1 to enable) =="
fi

echo "CI OK"
