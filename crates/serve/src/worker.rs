//! The worker loop: drain a micro-batch, annotate each request, reply.
//!
//! Every worker owns a [`MeteredBackend`] shard over the shared (cached)
//! retrieval stack, so per-worker retrieval metrics accumulate without
//! cross-worker contention and fold together later via
//! [`MetricsSnapshot::merge`](kglink_search::MetricsSnapshot::merge).
//!
//! Deadline handling happens here: a request's [`Deadline`] budget is
//! measured against its *real* queue wait. A request that exhausted its
//! budget while queued is not dropped — it is annotated through
//! [`ExpiredBackend`], so every retrieval fails instantly and the pipeline
//! produces a pure-PLM, no-linkage annotation with the correct arity.
//! A request with budget left passes only the *remaining* budget into
//! [`KgLink::annotate_request`], which tightens every KG query it issues.
//!
//! Overload control also happens here: when the service is configured
//! with an [`OverloadConfig`](crate::service::OverloadConfig), each
//! dequeue feeds the request's queue sojourn into the shared
//! [`AimdLimit`](crate::admission::AimdLimit) (which resizes the queue's
//! dynamic admission limit, shedding the overflow promptly) and the
//! [`BrownoutController`](crate::brownout::BrownoutController) (which
//! picks the [`DegradationRung`] this request is served at: full
//! retrieval, cache-only, or no linkage).
//!
//! Forward-pass batching: each annotation routes through
//! [`KgLink::annotate_request`], whose classifier encodes the masked
//! table and all eligible feature sequences in a single batched encoder
//! call (`kglink_nn::Encoder::infer_batch`). The encoder's scratch arenas
//! are thread-local, so each worker warms its own pool on the first
//! request and then serves its micro-batches without heap allocation in
//! the forward pass.
//!
//! Simulated busy-time accounting: each table charges the worker the
//! simulated retrieval microseconds it consumed (read off the meter)
//! plus `sim_col_cost_us` per column for the PLM forward pass. The max
//! over workers is the simulated makespan that scaling experiments
//! assert on — deterministic, and independent of host core count.
//!
//! Panic isolation: each request is annotated inside `catch_unwind`, with
//! a completion-on-drop [`TicketGuard`] armed *before* any fallible work.
//! Whatever path the worker takes out of a request — normal completion,
//! panic in the pipeline, panic in the backend stack — the ticket is
//! completed exactly once: either with the annotation, or with a typed
//! [`ServiceError::WorkerPanicked`]. A blocked `wait()` can therefore
//! never hang on a crashed worker. After a panic the worker requeues the
//! unserved remainder of its micro-batch at the queue front and exits
//! with [`WorkerExit::Panicked`], letting the supervisor decide whether
//! to respawn it.

use crate::brownout::{self, CacheOnlyBackend};
use crate::error::ServiceError;
use crate::lifecycle::{Lifecycle, ModelEpoch, ShadowState};
use crate::metered::{ExpiredBackend, MeteredBackend};
use crate::queue::BoundedQueue;
use crate::service::{Annotation, Request, Shared, SharedBackend};
use kglink_core::pipeline::{req, AnnotateOutcome, Resources};
use kglink_core::{DegradationRung, KgLink};
use kglink_kg::GraphAccess;
use kglink_nn::Tokenizer;
use kglink_obs::Tracer;
use kglink_search::{CachingBackend, Deadline};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, PoisonError};
use std::time::Instant;

/// Everything one worker thread needs, bundled for the spawn closure.
pub(crate) struct WorkerContext {
    pub idx: usize,
    /// Epoch slot + comparison window; the worker clones both once per
    /// micro-batch, so a hot-swap lands between batches, never inside one.
    pub lifecycle: Arc<Lifecycle>,
    /// The shared (cached) retrieval stack *without* this worker's meter:
    /// shadow duplicates annotate through it so they never pollute the
    /// primary's retrieval metrics or simulated busy-time.
    pub backend: SharedBackend,
    pub graph: Arc<dyn GraphAccess>,
    pub tokenizer: Arc<Tokenizer>,
    pub meter: Arc<MeteredBackend>,
    pub queue: Arc<BoundedQueue<Request>>,
    pub shared: Arc<Shared>,
    pub cache: Option<Arc<CachingBackend<SharedBackend>>>,
    pub max_batch: usize,
    pub sim_col_cost_us: u64,
    pub tracer: Tracer,
}

/// How a worker thread ended; the supervisor keys its respawn decision on
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerExit {
    /// The queue closed and drained: clean shutdown.
    Drained,
    /// A request panicked; the rest of the batch was requeued.
    Panicked,
}

/// Completion-on-drop guard for one ticket. Armed before any fallible
/// work; if it is dropped without [`complete`](Self::complete) — panic
/// unwind, early return, any exit path — the waiting caller receives a
/// typed [`ServiceError::WorkerPanicked`] instead of hanging forever on a
/// channel whose sender died.
struct TicketGuard {
    reply: Option<mpsc::Sender<Result<Annotation, ServiceError>>>,
}

impl TicketGuard {
    fn arm(reply: mpsc::Sender<Result<Annotation, ServiceError>>) -> Self {
        TicketGuard { reply: Some(reply) }
    }

    /// Defuse: the request completed normally and replies on its own.
    fn complete(mut self) {
        self.reply = None;
    }
}

impl Drop for TicketGuard {
    fn drop(&mut self) {
        if let Some(reply) = self.reply.take() {
            // The ticket may already be gone; that's the caller's choice.
            let _ = reply.send(Err(ServiceError::WorkerPanicked));
        }
    }
}

pub(crate) fn run(ctx: WorkerContext) -> WorkerExit {
    loop {
        let mut batch: VecDeque<Request> = ctx.queue.pop_batch(ctx.max_batch).into();
        if batch.is_empty() {
            // Closed and drained: exit.
            return WorkerExit::Drained;
        }
        // One epoch (and one comparison window) per micro-batch: a promote
        // that lands mid-batch takes effect at the *next* batch, so every
        // request in this one is served end-to-end by `epoch` and nobody
        // ever observes a torn model.
        let epoch = ctx.lifecycle.current();
        let shadow = ctx.lifecycle.shadow_snapshot();
        while let Some(request) = batch.pop_front() {
            ctx.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let guard = TicketGuard::arm(request.reply.clone());
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let annotation = serve_request(&ctx, &request, &epoch, shadow.as_ref());
                let total_us = request.enqueued.elapsed().as_micros() as u64;
                record_completion(&ctx, &annotation, total_us);
                annotation
            }));
            ctx.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            match outcome {
                Ok(annotation) => {
                    guard.complete();
                    let _ = request.reply.send(Ok(annotation));
                }
                Err(_panic) => {
                    // Account for the panic *before* completing the ticket:
                    // a waiter unblocked by the guard's error must observe
                    // counters that already include this panic.
                    ctx.shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                    ctx.tracer.incr("worker.panic", 1);
                    ctx.tracer.event_with(
                        "worker.panic",
                        vec![("worker", ctx.idx.to_string())],
                    );
                    // Dropping the guard completes the panicked ticket with
                    // the typed error.
                    drop(guard);
                    // Hand the unserved remainder back for a sibling or the
                    // respawned worker; if the queue closed underneath us,
                    // fail those requests explicitly instead of leaking.
                    if let Err(orphans) = ctx.queue.requeue_front(batch.into()) {
                        for r in orphans {
                            let _ = r.reply.send(Err(ServiceError::Closed));
                        }
                    }
                    return WorkerExit::Panicked;
                }
            }
        }
    }
}

/// Feed one queue-sojourn observation to the overload controllers (when
/// configured) and return the rung to serve this request at. When the
/// admission controller closes a window, the queue's dynamic limit is
/// resized and any overflow is shed promptly.
fn overload_control(ctx: &WorkerContext, sojourn_us: u64) -> DegradationRung {
    let Some(overload) = ctx.shared.overload.as_ref() else {
        return DegradationRung::Full;
    };
    // Controller state is a pair of small pure state machines: always
    // re-validatable, so recover from a panicked sibling's poison.
    let mut state = overload.lock().unwrap_or_else(PoisonError::into_inner);
    let verdict = state.aimd.observe(sojourn_us);
    let limit = state.aimd.limit();
    let rung = state.brownout.observe(sojourn_us);
    drop(state);
    if let Some(verdict) = verdict {
        let previous = ctx.queue.set_limit(limit);
        if limit != previous {
            let trimmed =
                brownout::trim_queue_to_limit(&ctx.queue, &ctx.shared.shed, &ctx.tracer);
            ctx.tracer.event_with(
                "serve.admission_limit",
                vec![
                    ("verdict", format!("{verdict:?}")),
                    ("limit", limit.to_string()),
                    ("previous", previous.to_string()),
                    ("trimmed", trimmed.to_string()),
                ],
            );
        }
    }
    let level = rung.level() as usize;
    let previous_level = ctx.shared.rung.swap(level, Ordering::Relaxed);
    if previous_level != level {
        ctx.tracer.incr("serve.rung_change", 1);
        ctx.tracer.event_with(
            "serve.rung_change",
            vec![
                ("from", DegradationRung::from_level(previous_level as u8).name().to_string()),
                ("to", rung.name().to_string()),
            ],
        );
    }
    rung
}

/// The serving path a request resolved to after deadline + overload
/// control: the shadow duplicate replays exactly this, so primary and
/// shadow differ *only* in which model annotates (and in metering).
#[derive(Clone, Copy)]
struct ServePath {
    /// Deadline spent in the queue: pure no-linkage, no KG budget.
    expired: bool,
    /// Effective degradation rung (cache-less CacheOnly already folded
    /// into NoLinkage).
    rung: DegradationRung,
    /// KG budget left after queue wait; meaningless when `expired`.
    remaining: Deadline,
}

/// Annotate one table with one model along a resolved [`ServePath`].
/// `metered` selects the primary's per-worker metered stack for full
/// retrieval; shadow runs pass `false` and use the shared un-metered
/// stack so duplicate traffic never skews primary retrieval metrics or
/// simulated busy-time.
fn annotate_once(
    ctx: &WorkerContext,
    model: &KgLink,
    request: &Request,
    path: ServePath,
    metered: bool,
) -> AnnotateOutcome {
    if path.expired {
        // Out of budget: every retrieval fails instantly and the pipeline
        // degrades to its no-linkage path. Arity is preserved; no panic.
        let resources = worker_resources(ctx, &ExpiredBackend);
        return model
            .annotate_request(&resources, req(&request.table).rung(DegradationRung::NoLinkage));
    }
    let spec = req(&request.table).deadline(path.remaining).rung(path.rung);
    match (path.rung, ctx.cache.as_ref()) {
        (DegradationRung::Full, _) if metered => {
            let resources = worker_resources(ctx, ctx.meter.as_ref());
            model.annotate_request(&resources, spec)
        }
        (DegradationRung::Full, _) => {
            let resources = worker_resources(ctx, ctx.backend.as_ref());
            model.annotate_request(&resources, spec)
        }
        (DegradationRung::CacheOnly, Some(cache)) => {
            let cache_only = CacheOnlyBackend::new(cache);
            let resources = worker_resources(ctx, &cache_only);
            model.annotate_request(&resources, spec)
        }
        // `ServePath` folds a cache-less CacheOnly into NoLinkage, so
        // this arm doubles as the NoLinkage path.
        (_, _) => {
            let resources = worker_resources(ctx, &ExpiredBackend);
            model.annotate_request(&resources, spec)
        }
    }
}

fn serve_request(
    ctx: &WorkerContext,
    request: &Request,
    epoch: &Arc<ModelEpoch>,
    shadow: Option<&Arc<ShadowState>>,
) -> Annotation {
    let wait_us = request.enqueued.elapsed().as_micros() as u64;
    // Queue wait is dead time before service starts, so it is a stage
    // timer, not a span: `serve.request` below covers service time only.
    ctx.tracer.record_us("serve.queue_wait", wait_us);
    let rung = overload_control(ctx, wait_us);
    let _request_span = ctx.tracer.span("serve.request");
    let budget = request.deadline.budget_us();
    let expired = !request.deadline.is_unbounded() && wait_us >= budget;
    let path = ServePath {
        expired,
        // A cache-only rung without a cache has nothing to serve hits
        // from: fold it into the no-linkage rung so the recorded rung
        // matches what actually happened.
        rung: if expired {
            DegradationRung::NoLinkage
        } else {
            match rung {
                DegradationRung::CacheOnly if ctx.cache.is_none() => DegradationRung::NoLinkage,
                other => other,
            }
        },
        remaining: if request.deadline.is_unbounded() || expired {
            Deadline::UNBOUNDED
        } else {
            Deadline::from_us(budget - wait_us)
        },
    };

    let sim_before = ctx.meter.sim_latency_us();
    // kglink-lint: allow(nondeterminism) — annotate-only wall time feeding
    // the shadow-comparison latency histograms; labels never read it.
    let t0 = Instant::now();
    let outcome = annotate_once(ctx, &epoch.model, request, path, true);
    let primary_us = t0.elapsed().as_micros() as u64;
    let sim_retrieval_us = ctx.meter.sim_latency_us() - sim_before;
    let sim_cost_us = sim_retrieval_us + ctx.sim_col_cost_us * request.table.n_cols() as u64;
    ctx.shared.sim_busy_us[ctx.idx].fetch_add(sim_cost_us, Ordering::Relaxed);

    if let Some(sh) = shadow {
        if request.id.is_multiple_of(sh.sample_every) {
            run_shadow(ctx, sh, request, path, &outcome, primary_us);
        }
    }

    Annotation {
        labels: outcome.labels,
        degraded_columns: outcome.degraded_columns,
        failed_cells: outcome.failed_cells,
        queue_us: wait_us,
        expired,
        rung: path.rung,
        model_version: epoch.version,
    }
}

/// Duplicate one sampled request against the comparison epoch (the
/// candidate during the shadow phase, the prior epoch during watch).
/// No user-visible output: only the [`ShadowState`] counters and latency
/// histograms observe the duplicate, and a panicking comparison model is
/// swallowed here and counted as a full flip — it can never take the
/// request (or the worker) down with it.
fn run_shadow(
    ctx: &WorkerContext,
    sh: &ShadowState,
    request: &Request,
    path: ServePath,
    primary: &AnnotateOutcome,
    primary_us: u64,
) {
    // kglink-lint: allow(nondeterminism) — shadow annotate wall time for
    // the p99-inflation guard; no annotation output reads it.
    let t0 = Instant::now();
    let duplicate = catch_unwind(AssertUnwindSafe(|| {
        annotate_once(ctx, &sh.epoch.model, request, path, false).labels
    }));
    let shadow_us = t0.elapsed().as_micros() as u64;
    let (flipped_columns, flipped) = match &duplicate {
        Ok(labels) => {
            let differing = primary
                .labels
                .iter()
                .zip(labels)
                .filter(|(a, b)| a != b)
                .count()
                + primary.labels.len().abs_diff(labels.len());
            (differing, differing > 0)
        }
        // A panicked duplicate is maximal divergence: every column flips.
        Err(_panic) => (primary.labels.len(), true),
    };
    sh.flipped_columns
        .fetch_add(flipped_columns as u64, Ordering::SeqCst);
    sh.compared_columns
        .fetch_add(primary.labels.len() as u64, Ordering::SeqCst);
    if flipped {
        sh.flips.fetch_add(1, Ordering::SeqCst);
    }
    sh.shadow_latency
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .record(shadow_us);
    sh.primary_latency
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .record(primary_us);
    ctx.tracer.incr("model.shadow", 1);
    ctx.tracer.event_with(
        "model.shadow",
        vec![
            ("request", request.id.to_string()),
            ("shadow_version", sh.epoch.version.to_string()),
            ("flipped", flipped.to_string()),
        ],
    );
    // `compared` last: the swap driver polls it to decide the window is
    // full, then reads the other counters — everything recorded for this
    // comparison must already be visible when the count ticks.
    sh.compared.fetch_add(1, Ordering::SeqCst);
}

/// The per-call resource bundle a worker annotates through. Infallible by
/// construction: the service validated the graph/tokenizer at startup, so
/// the builder can only fail on a bug in this crate.
fn worker_resources<'a>(
    ctx: &'a WorkerContext,
    backend: &'a (dyn kglink_search::KgBackend + 'a),
) -> Resources<'a> {
    Resources::builder()
        .graph(&ctx.graph)
        .backend(backend)
        .tokenizer(&ctx.tokenizer)
        .tracer(&ctx.tracer)
        .build()
        // kglink-lint: allow(panic-in-lib) — structural: the service
        // constructor validated these exact resources; a builder error here
        // is a bug in this crate, not a runtime condition.
        .expect("service resources validated at startup")
}

fn record_completion(ctx: &WorkerContext, annotation: &Annotation, total_us: u64) {
    let shared = &ctx.shared;
    shared.completed.fetch_add(1, Ordering::Relaxed);
    if annotation.expired {
        shared.expired.fetch_add(1, Ordering::Relaxed);
    }
    shared
        .annotated_columns
        .fetch_add(annotation.labels.len() as u64, Ordering::Relaxed);
    shared
        .degraded_columns
        .fetch_add(annotation.degraded_columns as u64, Ordering::Relaxed);
    shared
        .failed_cells
        .fetch_add(annotation.failed_cells as u64, Ordering::Relaxed);
    shared.rung_served[annotation.rung.level() as usize].fetch_add(1, Ordering::Relaxed);
    shared
        .latency
        .lock()
        // A histogram is always re-validatable: recover from a sibling's
        // poison rather than cascade the panic.
        .unwrap_or_else(PoisonError::into_inner)
        .record(total_us);
    ctx.lifecycle
        .record_served(annotation.model_version, total_us);
}
