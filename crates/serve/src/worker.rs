//! The worker loop: drain a micro-batch, annotate each request, reply.
//!
//! Every worker owns a [`MeteredBackend`] shard over the shared (cached)
//! retrieval stack, so per-worker retrieval metrics accumulate without
//! cross-worker contention and fold together later via
//! [`MetricsSnapshot::merge`](kglink_search::MetricsSnapshot::merge).
//!
//! Deadline handling happens here: a request's [`Deadline`] budget is
//! measured against its *real* queue wait. A request that exhausted its
//! budget while queued is not dropped — it is annotated through
//! [`ExpiredBackend`], so every retrieval fails instantly and the pipeline
//! produces a pure-PLM, no-linkage annotation with the correct arity.
//! A request with budget left passes only the *remaining* budget into
//! [`KgLink::annotate_outcome`], which tightens every KG query it issues.
//!
//! Simulated busy-time accounting: each table charges the worker the
//! simulated retrieval microseconds it consumed (read off the meter)
//! plus `sim_col_cost_us` per column for the PLM forward pass. The max
//! over workers is the simulated makespan that scaling experiments
//! assert on — deterministic, and independent of host core count.

use crate::metered::{ExpiredBackend, MeteredBackend};
use crate::queue::BoundedQueue;
use crate::service::{Annotation, Request, Shared};
use kglink_core::pipeline::{req, Resources};
use kglink_core::KgLink;
use kglink_kg::KnowledgeGraph;
use kglink_nn::Tokenizer;
use kglink_obs::Tracer;
use kglink_search::Deadline;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Everything one worker thread needs, bundled for the spawn closure.
pub(crate) struct WorkerContext {
    pub idx: usize,
    pub model: Arc<KgLink>,
    pub graph: Arc<KnowledgeGraph>,
    pub tokenizer: Arc<Tokenizer>,
    pub meter: Arc<MeteredBackend>,
    pub queue: Arc<BoundedQueue<Request>>,
    pub shared: Arc<Shared>,
    pub max_batch: usize,
    pub sim_col_cost_us: u64,
    pub tracer: Tracer,
}

pub(crate) fn run(ctx: WorkerContext) {
    loop {
        let batch = ctx.queue.pop_batch(ctx.max_batch);
        if batch.is_empty() {
            // Closed and drained: exit.
            return;
        }
        for request in batch {
            ctx.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let annotation = serve_request(&ctx, &request);
            let total_us = request.enqueued.elapsed().as_micros() as u64;
            record_completion(&ctx, &annotation, total_us);
            // The ticket may have been dropped; that's the caller's choice.
            let _ = request.reply.send(Ok(annotation));
            ctx.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn serve_request(ctx: &WorkerContext, request: &Request) -> Annotation {
    let wait_us = request.enqueued.elapsed().as_micros() as u64;
    // Queue wait is dead time before service starts, so it is a stage
    // timer, not a span: `serve.request` below covers service time only.
    ctx.tracer.record_us("serve.queue_wait", wait_us);
    let _request_span = ctx.tracer.span("serve.request");
    let budget = request.deadline.budget_us();
    let expired = !request.deadline.is_unbounded() && wait_us >= budget;

    let sim_before = ctx.meter.sim_latency_us();
    let outcome = if expired {
        // Out of budget: every retrieval fails instantly and the pipeline
        // degrades to its no-linkage path. Arity is preserved; no panic.
        let resources = worker_resources(ctx, &ExpiredBackend);
        ctx.model.annotate_request(&resources, req(&request.table))
    } else {
        let remaining = if request.deadline.is_unbounded() {
            Deadline::UNBOUNDED
        } else {
            Deadline::from_us(budget - wait_us)
        };
        let resources = worker_resources(ctx, ctx.meter.as_ref());
        ctx.model
            .annotate_request(&resources, req(&request.table).deadline(remaining))
    };
    let sim_retrieval_us = ctx.meter.sim_latency_us() - sim_before;
    let sim_cost_us = sim_retrieval_us + ctx.sim_col_cost_us * request.table.n_cols() as u64;
    ctx.shared.sim_busy_us[ctx.idx].fetch_add(sim_cost_us, Ordering::Relaxed);

    Annotation {
        labels: outcome.labels,
        degraded_columns: outcome.degraded_columns,
        failed_cells: outcome.failed_cells,
        queue_us: wait_us,
        expired,
    }
}

/// The per-call resource bundle a worker annotates through. Infallible by
/// construction: the service validated the graph/tokenizer at startup, so
/// the builder can only fail on a bug in this crate.
fn worker_resources<'a>(
    ctx: &'a WorkerContext,
    backend: &'a (dyn kglink_search::KgBackend + 'a),
) -> Resources<'a> {
    Resources::builder()
        .graph(&ctx.graph)
        .backend(backend)
        .tokenizer(&ctx.tokenizer)
        .tracer(&ctx.tracer)
        .build()
        .expect("service resources validated at startup")
}

fn record_completion(ctx: &WorkerContext, annotation: &Annotation, total_us: u64) {
    let shared = &ctx.shared;
    shared.completed.fetch_add(1, Ordering::Relaxed);
    if annotation.expired {
        shared.expired.fetch_add(1, Ordering::Relaxed);
    }
    shared
        .annotated_columns
        .fetch_add(annotation.labels.len() as u64, Ordering::Relaxed);
    shared
        .degraded_columns
        .fetch_add(annotation.degraded_columns as u64, Ordering::Relaxed);
    shared
        .failed_cells
        .fetch_add(annotation.failed_cells as u64, Ordering::Relaxed);
    shared
        .latency
        .lock()
        .expect("latency lock poisoned")
        .record(total_us);
}
