//! The worker loop: drain a micro-batch, annotate each request, reply.
//!
//! Every worker owns a [`MeteredBackend`] shard over the shared (cached)
//! retrieval stack, so per-worker retrieval metrics accumulate without
//! cross-worker contention and fold together later via
//! [`MetricsSnapshot::merge`](kglink_search::MetricsSnapshot::merge).
//!
//! Deadline handling happens here: a request's [`Deadline`] budget is
//! measured against its *real* queue wait. A request that exhausted its
//! budget while queued is not dropped — it is annotated through
//! [`ExpiredBackend`], so every retrieval fails instantly and the pipeline
//! produces a pure-PLM, no-linkage annotation with the correct arity.
//! A request with budget left passes only the *remaining* budget into
//! [`KgLink::annotate_request`], which tightens every KG query it issues.
//!
//! Overload control also happens here: when the service is configured
//! with an [`OverloadConfig`](crate::service::OverloadConfig), each
//! dequeue feeds the request's queue sojourn into the shared
//! [`AimdLimit`](crate::admission::AimdLimit) (which resizes the queue's
//! dynamic admission limit, shedding the overflow promptly) and the
//! [`BrownoutController`](crate::brownout::BrownoutController) (which
//! picks the [`DegradationRung`] this request is served at: full
//! retrieval, cache-only, or no linkage).
//!
//! Forward-pass batching: each annotation routes through
//! [`KgLink::annotate_request`], whose classifier encodes the masked
//! table and all eligible feature sequences in a single batched encoder
//! call (`kglink_nn::Encoder::infer_batch`). The encoder's scratch arenas
//! are thread-local, so each worker warms its own pool on the first
//! request and then serves its micro-batches without heap allocation in
//! the forward pass.
//!
//! Simulated busy-time accounting: each table charges the worker the
//! simulated retrieval microseconds it consumed (read off the meter)
//! plus `sim_col_cost_us` per column for the PLM forward pass. The max
//! over workers is the simulated makespan that scaling experiments
//! assert on — deterministic, and independent of host core count.
//!
//! Panic isolation: each request is annotated inside `catch_unwind`, with
//! a completion-on-drop [`TicketGuard`] armed *before* any fallible work.
//! Whatever path the worker takes out of a request — normal completion,
//! panic in the pipeline, panic in the backend stack — the ticket is
//! completed exactly once: either with the annotation, or with a typed
//! [`ServiceError::WorkerPanicked`]. A blocked `wait()` can therefore
//! never hang on a crashed worker. After a panic the worker requeues the
//! unserved remainder of its micro-batch at the queue front and exits
//! with [`WorkerExit::Panicked`], letting the supervisor decide whether
//! to respawn it.

use crate::brownout::{self, CacheOnlyBackend};
use crate::error::ServiceError;
use crate::metered::{ExpiredBackend, MeteredBackend};
use crate::queue::BoundedQueue;
use crate::service::{Annotation, Request, Shared, SharedBackend};
use kglink_core::pipeline::{req, Resources};
use kglink_core::{DegradationRung, KgLink};
use kglink_kg::GraphAccess;
use kglink_nn::Tokenizer;
use kglink_obs::Tracer;
use kglink_search::{CachingBackend, Deadline};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, PoisonError};

/// Everything one worker thread needs, bundled for the spawn closure.
pub(crate) struct WorkerContext {
    pub idx: usize,
    pub model: Arc<KgLink>,
    pub graph: Arc<dyn GraphAccess>,
    pub tokenizer: Arc<Tokenizer>,
    pub meter: Arc<MeteredBackend>,
    pub queue: Arc<BoundedQueue<Request>>,
    pub shared: Arc<Shared>,
    pub cache: Option<Arc<CachingBackend<SharedBackend>>>,
    pub max_batch: usize,
    pub sim_col_cost_us: u64,
    pub tracer: Tracer,
}

/// How a worker thread ended; the supervisor keys its respawn decision on
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerExit {
    /// The queue closed and drained: clean shutdown.
    Drained,
    /// A request panicked; the rest of the batch was requeued.
    Panicked,
}

/// Completion-on-drop guard for one ticket. Armed before any fallible
/// work; if it is dropped without [`complete`](Self::complete) — panic
/// unwind, early return, any exit path — the waiting caller receives a
/// typed [`ServiceError::WorkerPanicked`] instead of hanging forever on a
/// channel whose sender died.
struct TicketGuard {
    reply: Option<mpsc::Sender<Result<Annotation, ServiceError>>>,
}

impl TicketGuard {
    fn arm(reply: mpsc::Sender<Result<Annotation, ServiceError>>) -> Self {
        TicketGuard { reply: Some(reply) }
    }

    /// Defuse: the request completed normally and replies on its own.
    fn complete(mut self) {
        self.reply = None;
    }
}

impl Drop for TicketGuard {
    fn drop(&mut self) {
        if let Some(reply) = self.reply.take() {
            // The ticket may already be gone; that's the caller's choice.
            let _ = reply.send(Err(ServiceError::WorkerPanicked));
        }
    }
}

pub(crate) fn run(ctx: WorkerContext) -> WorkerExit {
    loop {
        let mut batch: VecDeque<Request> = ctx.queue.pop_batch(ctx.max_batch).into();
        if batch.is_empty() {
            // Closed and drained: exit.
            return WorkerExit::Drained;
        }
        while let Some(request) = batch.pop_front() {
            ctx.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let guard = TicketGuard::arm(request.reply.clone());
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let annotation = serve_request(&ctx, &request);
                let total_us = request.enqueued.elapsed().as_micros() as u64;
                record_completion(&ctx, &annotation, total_us);
                annotation
            }));
            ctx.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            match outcome {
                Ok(annotation) => {
                    guard.complete();
                    let _ = request.reply.send(Ok(annotation));
                }
                Err(_panic) => {
                    // Account for the panic *before* completing the ticket:
                    // a waiter unblocked by the guard's error must observe
                    // counters that already include this panic.
                    ctx.shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                    ctx.tracer.incr("worker.panic", 1);
                    ctx.tracer.event_with(
                        "worker.panic",
                        vec![("worker", ctx.idx.to_string())],
                    );
                    // Dropping the guard completes the panicked ticket with
                    // the typed error.
                    drop(guard);
                    // Hand the unserved remainder back for a sibling or the
                    // respawned worker; if the queue closed underneath us,
                    // fail those requests explicitly instead of leaking.
                    if let Err(orphans) = ctx.queue.requeue_front(batch.into()) {
                        for r in orphans {
                            let _ = r.reply.send(Err(ServiceError::Closed));
                        }
                    }
                    return WorkerExit::Panicked;
                }
            }
        }
    }
}

/// Feed one queue-sojourn observation to the overload controllers (when
/// configured) and return the rung to serve this request at. When the
/// admission controller closes a window, the queue's dynamic limit is
/// resized and any overflow is shed promptly.
fn overload_control(ctx: &WorkerContext, sojourn_us: u64) -> DegradationRung {
    let Some(overload) = ctx.shared.overload.as_ref() else {
        return DegradationRung::Full;
    };
    // Controller state is a pair of small pure state machines: always
    // re-validatable, so recover from a panicked sibling's poison.
    let mut state = overload.lock().unwrap_or_else(PoisonError::into_inner);
    let verdict = state.aimd.observe(sojourn_us);
    let limit = state.aimd.limit();
    let rung = state.brownout.observe(sojourn_us);
    drop(state);
    if let Some(verdict) = verdict {
        let previous = ctx.queue.set_limit(limit);
        if limit != previous {
            let trimmed =
                brownout::trim_queue_to_limit(&ctx.queue, &ctx.shared.shed, &ctx.tracer);
            ctx.tracer.event_with(
                "serve.admission_limit",
                vec![
                    ("verdict", format!("{verdict:?}")),
                    ("limit", limit.to_string()),
                    ("previous", previous.to_string()),
                    ("trimmed", trimmed.to_string()),
                ],
            );
        }
    }
    let level = rung.level() as usize;
    let previous_level = ctx.shared.rung.swap(level, Ordering::Relaxed);
    if previous_level != level {
        ctx.tracer.incr("serve.rung_change", 1);
        ctx.tracer.event_with(
            "serve.rung_change",
            vec![
                ("from", DegradationRung::from_level(previous_level as u8).name().to_string()),
                ("to", rung.name().to_string()),
            ],
        );
    }
    rung
}

fn serve_request(ctx: &WorkerContext, request: &Request) -> Annotation {
    let wait_us = request.enqueued.elapsed().as_micros() as u64;
    // Queue wait is dead time before service starts, so it is a stage
    // timer, not a span: `serve.request` below covers service time only.
    ctx.tracer.record_us("serve.queue_wait", wait_us);
    let rung = overload_control(ctx, wait_us);
    let _request_span = ctx.tracer.span("serve.request");
    let budget = request.deadline.budget_us();
    let expired = !request.deadline.is_unbounded() && wait_us >= budget;

    let sim_before = ctx.meter.sim_latency_us();
    let (outcome, served_rung) = if expired {
        // Out of budget: every retrieval fails instantly and the pipeline
        // degrades to its no-linkage path. Arity is preserved; no panic.
        let resources = worker_resources(ctx, &ExpiredBackend);
        let outcome = ctx
            .model
            .annotate_request(&resources, req(&request.table).rung(DegradationRung::NoLinkage));
        (outcome, DegradationRung::NoLinkage)
    } else {
        let remaining = if request.deadline.is_unbounded() {
            Deadline::UNBOUNDED
        } else {
            Deadline::from_us(budget - wait_us)
        };
        // A cache-only rung without a cache has nothing to serve hits
        // from: fold it into the no-linkage rung so the recorded rung
        // matches what actually happened.
        let effective = match rung {
            DegradationRung::CacheOnly if ctx.cache.is_none() => DegradationRung::NoLinkage,
            other => other,
        };
        let spec = req(&request.table).deadline(remaining).rung(effective);
        let outcome = match (effective, ctx.cache.as_ref()) {
            (DegradationRung::Full, _) => {
                let resources = worker_resources(ctx, ctx.meter.as_ref());
                ctx.model.annotate_request(&resources, spec)
            }
            (DegradationRung::CacheOnly, Some(cache)) => {
                let cache_only = CacheOnlyBackend::new(cache);
                let resources = worker_resources(ctx, &cache_only);
                ctx.model.annotate_request(&resources, spec)
            }
            // `effective` folds a cache-less CacheOnly into NoLinkage
            // above, so this arm doubles as the NoLinkage path.
            (_, _) => {
                let resources = worker_resources(ctx, &ExpiredBackend);
                ctx.model.annotate_request(&resources, spec)
            }
        };
        (outcome, effective)
    };
    let sim_retrieval_us = ctx.meter.sim_latency_us() - sim_before;
    let sim_cost_us = sim_retrieval_us + ctx.sim_col_cost_us * request.table.n_cols() as u64;
    ctx.shared.sim_busy_us[ctx.idx].fetch_add(sim_cost_us, Ordering::Relaxed);

    Annotation {
        labels: outcome.labels,
        degraded_columns: outcome.degraded_columns,
        failed_cells: outcome.failed_cells,
        queue_us: wait_us,
        expired,
        rung: served_rung,
    }
}

/// The per-call resource bundle a worker annotates through. Infallible by
/// construction: the service validated the graph/tokenizer at startup, so
/// the builder can only fail on a bug in this crate.
fn worker_resources<'a>(
    ctx: &'a WorkerContext,
    backend: &'a (dyn kglink_search::KgBackend + 'a),
) -> Resources<'a> {
    Resources::builder()
        .graph(&ctx.graph)
        .backend(backend)
        .tokenizer(&ctx.tokenizer)
        .tracer(&ctx.tracer)
        .build()
        // kglink-lint: allow(panic-in-lib) — structural: the service
        // constructor validated these exact resources; a builder error here
        // is a bug in this crate, not a runtime condition.
        .expect("service resources validated at startup")
}

fn record_completion(ctx: &WorkerContext, annotation: &Annotation, total_us: u64) {
    let shared = &ctx.shared;
    shared.completed.fetch_add(1, Ordering::Relaxed);
    if annotation.expired {
        shared.expired.fetch_add(1, Ordering::Relaxed);
    }
    shared
        .annotated_columns
        .fetch_add(annotation.labels.len() as u64, Ordering::Relaxed);
    shared
        .degraded_columns
        .fetch_add(annotation.degraded_columns as u64, Ordering::Relaxed);
    shared
        .failed_cells
        .fetch_add(annotation.failed_cells as u64, Ordering::Relaxed);
    shared.rung_served[annotation.rung.level() as usize].fetch_add(1, Ordering::Relaxed);
    shared
        .latency
        .lock()
        // A histogram is always re-validatable: recover from a sibling's
        // poison rather than cascade the panic.
        .unwrap_or_else(PoisonError::into_inner)
        .record(total_us);
}
