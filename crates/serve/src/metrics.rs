//! Service-level observability.
//!
//! [`ServiceMetrics`] is a point-in-time snapshot that folds three layers
//! together:
//!
//! 1. **Service counters** — submitted / completed / rejected / shed /
//!    expired, queue depth, in-flight, and end-to-end latency percentiles.
//! 2. **Retrieval counters** — per-worker [`MetricsSnapshot`]s merged with
//!    [`MetricsSnapshot::merge`] into one aggregate view.
//! 3. **Cache counters** — [`CacheStats`] from the shared
//!    [`CachingBackend`](kglink_search::CachingBackend), when enabled.
//!
//! Because retrieval latency in this repo is *simulated* (microsecond
//! values threaded through return values, never real sleeps), the snapshot
//! reports two throughput figures: real wall-clock tables/s, and
//! simulated tables/s derived from per-worker busy-time. The simulated
//! makespan (max worker busy-time) is what scaling experiments assert on —
//! it is deterministic and independent of host core count.

use kglink_core::DegradationRung;
use kglink_search::{CacheStats, MetricsSnapshot};
use std::fmt;

/// Point-in-time service snapshot; see the module docs for the layers.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Requests accepted into the queue (includes later-shed ones).
    pub submitted: u64,
    /// Requests fully annotated (including degraded/expired completions).
    pub completed: u64,
    /// Requests refused at admission under `Reject`.
    pub rejected: u64,
    /// Requests evicted from the queue under `ShedOldest`.
    pub shed: u64,
    /// Completed requests whose deadline expired while queued; they were
    /// served through the degraded no-linkage path.
    pub expired: u64,
    /// Items currently queued.
    pub queue_depth: usize,
    /// Current dynamic admission limit. Equals the queue capacity unless
    /// overload protection is on and the AIMD controller has cut it.
    pub admission_limit: usize,
    /// The degradation-ladder rung new requests are currently served at.
    pub rung: DegradationRung,
    /// Completions served at rung 0 (full retrieval).
    pub served_full: u64,
    /// Completions served at rung 1 (cache-only retrieval).
    pub served_cache_only: u64,
    /// Completions served at rung 2 (no linkage), including expired ones.
    pub served_no_linkage: u64,
    /// Requests currently being annotated by workers.
    pub in_flight: usize,
    /// Columns annotated across all completed requests.
    pub annotated_columns: u64,
    /// Columns that fell back to the no-linkage degraded path.
    pub degraded_columns: u64,
    /// Individual cell retrievals that failed and were skipped.
    pub failed_cells: u64,
    /// p50 end-to-end request latency (queue wait + annotation), µs.
    pub latency_p50_us: u64,
    /// p99 end-to-end request latency, µs.
    pub latency_p99_us: u64,
    /// Requests whose worker panicked mid-annotation; each produced a
    /// typed [`WorkerPanicked`](crate::ServiceError::WorkerPanicked) reply,
    /// never a hung ticket.
    pub worker_panics: u64,
    /// Workers the supervisor respawned after a panic.
    pub worker_restarts: u64,
    /// Workers currently alive (spawned minus cleanly-exited minus dead
    /// beyond the restart budget).
    pub workers_alive: usize,
    /// Simulated busy-time per worker, µs (retrieval latency + modeled
    /// per-column annotation cost).
    pub sim_busy_us: Vec<u64>,
    /// Real microseconds since the service started.
    pub uptime_us: u64,
    /// Merged retrieval metrics across all workers.
    pub retrieval: MetricsSnapshot,
    /// Cache counters, if the retrieval cache is enabled.
    pub cache: Option<CacheStats>,
    /// Version id of the epoch currently serving traffic.
    pub model_version: u64,
    /// Completed hot-swaps (promotions), including ones later rolled back.
    pub swaps: u64,
    /// Automatic rollbacks the watch-phase divergence guard performed.
    pub rollbacks: u64,
}

impl ServiceMetrics {
    /// Simulated makespan: the busiest worker's simulated time. With a
    /// fixed workload, halving this when doubling workers is what "2×
    /// scaling" means here, independent of host parallelism.
    pub fn sim_makespan_us(&self) -> u64 {
        self.sim_busy_us.iter().copied().max().unwrap_or(0)
    }

    /// Real wall-clock throughput in tables per second.
    pub fn throughput_per_s(&self) -> f64 {
        if self.uptime_us == 0 {
            0.0
        } else {
            self.completed as f64 / (self.uptime_us as f64 / 1e6)
        }
    }

    /// Simulated throughput in tables per second: completed work divided
    /// by the simulated makespan.
    pub fn sim_throughput_per_s(&self) -> f64 {
        let makespan = self.sim_makespan_us();
        if makespan == 0 {
            0.0
        } else {
            self.completed as f64 / (makespan as f64 / 1e6)
        }
    }

    /// Cache hit rate in `[0, 1]`, or 0.0 when the cache is disabled or
    /// has never been consulted.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.as_ref().map_or(0.0, |c| c.hit_rate())
    }
}

impl fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "service: submitted={} completed={} rejected={} shed={} expired={}",
            self.submitted, self.completed, self.rejected, self.shed, self.expired
        )?;
        writeln!(
            f,
            "load: queue_depth={} in_flight={} latency_p50={}us p99={}us",
            self.queue_depth, self.in_flight, self.latency_p50_us, self.latency_p99_us
        )?;
        writeln!(
            f,
            "overload: admission_limit={} rung={} served_full={} cache_only={} no_linkage={}",
            self.admission_limit,
            self.rung.name(),
            self.served_full,
            self.served_cache_only,
            self.served_no_linkage
        )?;
        writeln!(
            f,
            "annotation: columns={} degraded={} failed_cells={}",
            self.annotated_columns, self.degraded_columns, self.failed_cells
        )?;
        writeln!(
            f,
            "supervision: panics={} restarts={} workers_alive={}",
            self.worker_panics, self.worker_restarts, self.workers_alive
        )?;
        writeln!(
            f,
            "model: version={} swaps={} rollbacks={}",
            self.model_version, self.swaps, self.rollbacks
        )?;
        writeln!(
            f,
            "throughput: real={:.1}/s sim={:.1}/s (makespan {}us over {} workers)",
            self.throughput_per_s(),
            self.sim_throughput_per_s(),
            self.sim_makespan_us(),
            self.sim_busy_us.len()
        )?;
        writeln!(
            f,
            "retrieval: queries={} ok={} failed={} p50={}us p99={}us",
            self.retrieval.queries,
            self.retrieval.successes,
            self.retrieval.failures,
            self.retrieval.latency_p50_us(),
            self.retrieval.latency_p99_us()
        )?;
        match &self.cache {
            Some(c) => write!(
                f,
                "cache: hit_rate={:.3} hits={} misses={} entries={}/{} evictions={}",
                c.hit_rate(),
                c.hits,
                c.misses,
                c.entries,
                c.capacity,
                c.evictions
            ),
            None => write!(f, "cache: disabled"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_is_max_worker_busy_time() {
        let m = ServiceMetrics {
            completed: 10,
            sim_busy_us: vec![4_000, 9_000, 1_000],
            ..Default::default()
        };
        assert_eq!(m.sim_makespan_us(), 9_000);
        let per_s = m.sim_throughput_per_s();
        assert!((per_s - 10.0 / 0.009).abs() < 1e-6);
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = ServiceMetrics::default();
        assert_eq!(m.sim_makespan_us(), 0);
        assert_eq!(m.throughput_per_s(), 0.0);
        assert_eq!(m.sim_throughput_per_s(), 0.0);
        assert_eq!(m.cache_hit_rate(), 0.0);
        // Display must render without panicking on the empty snapshot.
        assert!(m.to_string().contains("cache: disabled"));
    }

    #[test]
    fn latency_percentiles_come_from_the_shared_histogram() {
        let mut h = kglink_obs::Histogram::new();
        for v in [90, 70, 50, 30, 10, 20, 40, 60, 80] {
            h.record(v);
        }
        // Values below the histogram's exact linear range round-trip
        // exactly, so the service metrics match nearest-rank percentiles.
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(1.0), 90);
        let m = ServiceMetrics {
            latency_p50_us: h.p50(),
            latency_p99_us: h.p99(),
            ..Default::default()
        };
        assert_eq!(m.latency_p50_us, 50);
        assert_eq!(m.latency_p99_us, 90);
    }
}
