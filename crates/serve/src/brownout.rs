//! The graceful-degradation ladder: shed quality before shedding requests.
//!
//! Under overload a service has two currencies to spend: requests and
//! quality. The admission controller ([`crate::admission`]) spends
//! requests — it rejects or sheds. [`BrownoutController`] spends quality
//! first, walking the three-rung [`DegradationRung`] ladder per request:
//!
//! * **Rung 0 — full retrieval.** The normal metered backend stack.
//! * **Rung 1 — cache-only retrieval.** [`CacheOnlyBackend`] serves
//!   [`CachingBackend`] hits (bit-identical to the miss path that stored
//!   them, zero simulated latency) and fails misses instantly, so those
//!   columns degrade to the no-linkage path without touching the backend.
//! * **Rung 2 — no linkage.** Every retrieval fails instantly
//!   ([`ExpiredBackend`](crate::ExpiredBackend)); the pipeline serves the
//!   paper's pure-PLM ablation path (Table IV), which is cheap and
//!   deterministic.
//!
//! Rung selection is hysteretic and asymmetric by design: *escalation is
//! immediate* (one over-threshold sojourn observation is enough — by the
//! time a standing queue is visible the service is already late), while
//! *de-escalation requires `hysteresis` consecutive healthy observations
//! and steps down one rung at a time*. Without that asymmetry the
//! controller would flap: serving one cheap no-linkage request makes the
//! queue look healthy, which re-enables full retrieval, which rebuilds
//! the queue.

use crate::error::ServiceError;
use crate::queue::BoundedQueue;
use crate::service::{Request, SharedBackend};
use kglink_core::DegradationRung;
use kglink_obs::Tracer;
use kglink_search::{CachingBackend, Deadline, KgBackend, RetrievalError, SearchOutcome};

/// Tuning for a [`BrownoutController`].
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// Sojourn (µs) at or above which requests are served at rung 1
    /// (cache-only) or worse.
    pub enter_cache_only_us: u64,
    /// Sojourn (µs) at or above which requests are served at rung 2
    /// (no linkage).
    pub enter_no_linkage_us: u64,
    /// Sojourn (µs) strictly below which an observation counts as
    /// healthy. `0` disables de-escalation entirely (useful to pin a rung
    /// in tests and experiments).
    pub exit_us: u64,
    /// Consecutive healthy observations required to step *down* one rung.
    pub hysteresis: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enter_cache_only_us: 40_000,
            enter_no_linkage_us: 120_000,
            exit_us: 10_000,
            hysteresis: 8,
        }
    }
}

impl BrownoutConfig {
    /// A config pinned at `rung`: every request is served there, and the
    /// controller never de-escalates. Used by tests and `exp_overload` to
    /// prove degraded outputs bit-identical to their baselines.
    pub fn pinned(rung: DegradationRung) -> Self {
        let threshold = |r: DegradationRung| if rung >= r { 0 } else { u64::MAX };
        BrownoutConfig {
            enter_cache_only_us: threshold(DegradationRung::CacheOnly),
            enter_no_linkage_us: threshold(DegradationRung::NoLinkage),
            exit_us: 0,
            hysteresis: u32::MAX,
        }
    }
}

/// Hysteretic rung selector; feed it one sojourn observation per request.
#[derive(Debug, Clone)]
pub struct BrownoutController {
    config: BrownoutConfig,
    rung: DegradationRung,
    healthy_streak: u32,
}

impl BrownoutController {
    /// Start at rung 0. Panics if the thresholds are not monotone
    /// (`enter_cache_only_us <= enter_no_linkage_us`) — a config where a
    /// *worse* signal selects a *better* rung is a programming error.
    pub fn new(config: BrownoutConfig) -> Self {
        assert!(
            config.enter_cache_only_us <= config.enter_no_linkage_us,
            "rung thresholds must be monotone"
        );
        BrownoutController {
            config,
            rung: DegradationRung::Full,
            healthy_streak: 0,
        }
    }

    /// The rung new requests are currently served at.
    pub fn rung(&self) -> DegradationRung {
        self.rung
    }

    pub fn config(&self) -> &BrownoutConfig {
        &self.config
    }

    /// Record one request's queue sojourn and return the rung to serve
    /// *this* request at. Escalates immediately to whatever rung the
    /// signal demands (never skipping past it downward); de-escalates one
    /// rung after `hysteresis` consecutive healthy observations.
    pub fn observe(&mut self, sojourn_us: u64) -> DegradationRung {
        let demanded = if sojourn_us >= self.config.enter_no_linkage_us {
            DegradationRung::NoLinkage
        } else if sojourn_us >= self.config.enter_cache_only_us {
            DegradationRung::CacheOnly
        } else {
            DegradationRung::Full
        };
        if demanded > self.rung {
            self.rung = demanded;
            self.healthy_streak = 0;
        } else if sojourn_us < self.config.exit_us {
            self.healthy_streak += 1;
            if self.healthy_streak >= self.config.hysteresis {
                self.rung = DegradationRung::from_level(self.rung.level().saturating_sub(1));
                self.healthy_streak = 0;
            }
        } else {
            self.healthy_streak = 0;
        }
        self.rung
    }
}

/// Rung-1 backend: [`CachingBackend`] hits only. A miss fails instantly
/// with [`RetrievalError::Unavailable`] — by contract the column then
/// degrades to the no-linkage path, so a stone-cold cache makes rung 1
/// behave exactly like rung 2.
pub struct CacheOnlyBackend<'a> {
    cache: &'a CachingBackend<SharedBackend>,
}

impl<'a> CacheOnlyBackend<'a> {
    pub fn new(cache: &'a CachingBackend<SharedBackend>) -> Self {
        CacheOnlyBackend { cache }
    }
}

impl KgBackend for CacheOnlyBackend<'_> {
    fn search_entities(
        &self,
        query: &str,
        top_k: usize,
        _deadline: Deadline,
    ) -> Result<SearchOutcome, RetrievalError> {
        self.cache
            .lookup_cached(query, top_k)
            .ok_or(RetrievalError::Unavailable)
    }
}

/// Resolve one shed request promptly with the typed error: the submitter
/// unblocks *now* with [`ServiceError::Shed`], not at some later drop.
/// Every eviction path (`ShedOldest` admission and admission-limit trims)
/// routes through here so the accounting can never diverge.
pub(crate) fn resolve_shed(victim: Request, shed_counter: &std::sync::atomic::AtomicU64, tracer: &Tracer) {
    shed_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    tracer.incr("serve.shed", 1);
    let _ = victim.reply.send(Err(ServiceError::Shed));
}

/// Shrink `queue` to its current dynamic limit, failing each evicted
/// request promptly via [`resolve_shed`]. Called by workers right after
/// the admission controller cuts the limit.
pub(crate) fn trim_queue_to_limit(
    queue: &BoundedQueue<Request>,
    shed_counter: &std::sync::atomic::AtomicU64,
    tracer: &Tracer,
) -> usize {
    let victims = queue.trim_to_limit();
    let n = victims.len();
    for victim in victims {
        resolve_shed(victim, shed_counter, tracer);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BrownoutConfig {
        BrownoutConfig {
            enter_cache_only_us: 1_000,
            enter_no_linkage_us: 5_000,
            exit_us: 500,
            hysteresis: 3,
        }
    }

    #[test]
    fn escalation_is_immediate_and_de_escalation_is_hysteretic() {
        let mut b = BrownoutController::new(config());
        assert_eq!(b.rung(), DegradationRung::Full);
        assert_eq!(b.observe(2_000), DegradationRung::CacheOnly);
        assert_eq!(b.observe(10_000), DegradationRung::NoLinkage);
        // Two healthy observations are not enough.
        assert_eq!(b.observe(0), DegradationRung::NoLinkage);
        assert_eq!(b.observe(0), DegradationRung::NoLinkage);
        // The third steps down exactly one rung.
        assert_eq!(b.observe(0), DegradationRung::CacheOnly);
        // An unhealthy (but sub-threshold) observation resets the streak.
        assert_eq!(b.observe(2), DegradationRung::CacheOnly);
        assert_eq!(b.observe(2), DegradationRung::CacheOnly);
        assert_eq!(b.observe(700), DegradationRung::CacheOnly);
        for _ in 0..3 {
            b.observe(0);
        }
        assert_eq!(b.rung(), DegradationRung::Full);
    }

    #[test]
    fn escalation_jumps_straight_to_the_demanded_rung() {
        let mut b = BrownoutController::new(config());
        assert_eq!(b.observe(1_000_000), DegradationRung::NoLinkage);
    }

    #[test]
    fn pinned_config_never_de_escalates() {
        let mut b = BrownoutController::new(BrownoutConfig::pinned(DegradationRung::NoLinkage));
        for _ in 0..1_000 {
            assert_eq!(b.observe(0), DegradationRung::NoLinkage);
        }
        let mut cache_only = BrownoutController::new(BrownoutConfig::pinned(DegradationRung::CacheOnly));
        for _ in 0..10 {
            assert_eq!(cache_only.observe(0), DegradationRung::CacheOnly);
        }
        let mut full = BrownoutController::new(BrownoutConfig::pinned(DegradationRung::Full));
        assert_eq!(full.observe(1 << 62), DegradationRung::Full);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn rejects_inverted_thresholds() {
        BrownoutController::new(BrownoutConfig {
            enter_cache_only_us: 10,
            enter_no_linkage_us: 5,
            ..config()
        });
    }
}
