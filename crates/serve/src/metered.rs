//! Per-worker retrieval instrumentation.
//!
//! Each worker threads its pipeline calls through its own
//! [`MeteredBackend`], so retrieval counters accumulate lock-free on the
//! hot path (atomics) and the service can later fold the per-worker
//! [`MetricsSnapshot`]s into one aggregate with
//! [`MetricsSnapshot::merge`].
//!
//! [`ExpiredBackend`] is the degenerate backend used for requests whose
//! deadline elapsed while queued: every retrieval fails instantly with a
//! timeout, which drives the pipeline down its existing graceful
//! no-linkage degradation path — the request completes with pure-PLM
//! annotations instead of panicking or blocking a worker.

use crate::service::SharedBackend;
use kglink_obs::Histogram;
use kglink_search::{Deadline, KgBackend, MetricsSnapshot, RetrievalError, SearchOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Counts and times every retrieval a worker performs.
pub struct MeteredBackend {
    inner: SharedBackend,
    queries: AtomicU64,
    successes: AtomicU64,
    failures: AtomicU64,
    truncated: AtomicU64,
    /// Total simulated retrieval time, microseconds (successes only —
    /// failures carry no meaningful latency value).
    sim_latency_us: AtomicU64,
    latency: Mutex<Histogram>,
}

impl MeteredBackend {
    pub fn new(inner: SharedBackend) -> Self {
        MeteredBackend {
            inner,
            queries: AtomicU64::new(0),
            successes: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            sim_latency_us: AtomicU64::new(0),
            latency: Mutex::new(Histogram::new()),
        }
    }

    /// Total simulated retrieval microseconds accumulated so far. The
    /// worker reads this before and after a table to charge the table's
    /// retrieval cost to its simulated busy-time.
    pub fn sim_latency_us(&self) -> u64 {
        self.sim_latency_us.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            successes: self.successes.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            breaker_rejections: 0,
            retries: 0,
            retry_budget_denied: 0,
            breaker_trips: 0,
            truncated: self.truncated.load(Ordering::Relaxed),
            // A histogram is re-validatable state: recover from a panicked
            // sibling's poison rather than lose the whole snapshot.
            latency: self
                .latency
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }
}

impl KgBackend for MeteredBackend {
    fn search_entities(
        &self,
        query: &str,
        top_k: usize,
        deadline: Deadline,
    ) -> Result<SearchOutcome, RetrievalError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        match self.inner.search_entities(query, top_k, deadline) {
            Ok(outcome) => {
                self.successes.fetch_add(1, Ordering::Relaxed);
                if outcome.truncated {
                    self.truncated.fetch_add(1, Ordering::Relaxed);
                }
                self.sim_latency_us
                    .fetch_add(outcome.latency_us, Ordering::Relaxed);
                self.latency
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .record(outcome.latency_us);
                Ok(outcome)
            }
            Err(e) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

/// Backend for requests that timed out while still queued: every call
/// fails immediately, so annotation falls through to the degraded
/// no-linkage path without spending any retrieval budget.
pub struct ExpiredBackend;

impl KgBackend for ExpiredBackend {
    fn search_entities(
        &self,
        _query: &str,
        _top_k: usize,
        _deadline: Deadline,
    ) -> Result<SearchOutcome, RetrievalError> {
        Err(RetrievalError::Timeout {
            needed_us: 1,
            budget_us: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_kg::{Entity, KgBuilder, NeSchema};
    use kglink_search::EntitySearcher;
    use std::sync::Arc;

    fn shared_searcher() -> SharedBackend {
        let mut b = KgBuilder::new();
        let ty = b.add_type("City", None);
        b.add_instance(Entity::new("paris", NeSchema::Place), ty);
        b.add_instance(Entity::new("lyon", NeSchema::Place), ty);
        Arc::new(EntitySearcher::build(&b.build()))
    }

    #[test]
    fn meter_counts_and_snapshots() {
        let meter = MeteredBackend::new(shared_searcher());
        for _ in 0..3 {
            meter
                .search_entities("paris", 2, Deadline::UNBOUNDED)
                .expect("searcher is infallible");
        }
        let snap = meter.snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.successes, 3);
        assert_eq!(snap.failures, 0);
        // The raw searcher reports zero simulated latency.
        assert_eq!(meter.sim_latency_us(), 0);
        assert_eq!(snap.latency_p50_us(), 0);
        assert_eq!(snap.latency.count(), 3);
    }

    #[test]
    fn expired_backend_always_times_out() {
        let b = ExpiredBackend;
        for q in ["a", "b", "c"] {
            match b.search_entities(q, 5, Deadline::from_us(10)) {
                Err(RetrievalError::Timeout { needed_us, .. }) => assert_eq!(needed_us, 1),
                other => panic!("expected timeout, got {other:?}"),
            }
        }
    }

    #[test]
    fn meter_records_failures() {
        let meter = MeteredBackend::new(Arc::new(ExpiredBackend));
        assert!(meter
            .search_entities("x", 1, Deadline::from_us(5))
            .is_err());
        let snap = meter.snapshot();
        assert_eq!(snap.queries, 1);
        assert_eq!(snap.failures, 1);
        assert_eq!(snap.successes, 0);
    }
}
