//! Typed service errors.
//!
//! [`ServiceError`] extends the pipeline's [`KgLinkError`] family with the
//! failure modes a *service* adds on top of annotation itself: admission
//! rejection under overload, load-shedding, and shutdown. Pipeline errors
//! pass through in the [`Pipeline`](ServiceError::Pipeline) variant.

use kglink_core::KgLinkError;
use std::fmt;

/// Everything a service request can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The bounded queue was full and the admission policy is
    /// [`Reject`](crate::queue::AdmissionPolicy::Reject): the request was
    /// turned away at the door instead of blocking the caller.
    Overloaded { queue_depth: usize, capacity: usize },
    /// The request was admitted but later pushed out by a newer one under
    /// the [`ShedOldest`](crate::queue::AdmissionPolicy::ShedOldest) policy.
    Shed,
    /// The service shut down before the request was processed.
    Closed,
    /// The worker thread serving this request panicked. The panic was
    /// isolated: the ticket's completion-on-drop guard delivered this
    /// error instead of leaving the caller blocked forever, and the
    /// supervisor respawns the worker (within its restart budget).
    WorkerPanicked,
    /// Every worker died and the supervisor's restart budget is spent:
    /// the service can no longer make progress, so queued and future
    /// requests fail with this instead of hanging.
    RestartBudgetExhausted { budget: usize },
    /// The underlying annotation pipeline failed.
    Pipeline(KgLinkError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded {
                queue_depth,
                capacity,
            } => write!(
                f,
                "service overloaded: queue at {queue_depth}/{capacity}, request rejected"
            ),
            ServiceError::Shed => write!(f, "request shed by a newer arrival under backpressure"),
            ServiceError::Closed => write!(f, "service closed before the request completed"),
            ServiceError::WorkerPanicked => {
                write!(f, "the worker serving this request panicked")
            }
            ServiceError::RestartBudgetExhausted { budget } => write!(
                f,
                "all workers dead and the restart budget ({budget}) is exhausted"
            ),
            ServiceError::Pipeline(e) => write!(f, "annotation failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<KgLinkError> for ServiceError {
    fn from(e: KgLinkError) -> Self {
        ServiceError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_table::TableId;

    #[test]
    fn errors_format_their_context() {
        let e = ServiceError::Overloaded {
            queue_depth: 64,
            capacity: 64,
        };
        assert!(e.to_string().contains("64/64"));
        assert!(ServiceError::Shed.to_string().contains("shed"));
        assert!(ServiceError::Closed.to_string().contains("closed"));
        let e: ServiceError = KgLinkError::degenerate(TableId(3), "no columns").into();
        assert!(matches!(e, ServiceError::Pipeline(_)));
        assert!(e.to_string().contains("no columns"));
    }
}
