//! Adaptive admission control: an AIMD limit driven by a CoDel-style
//! sojourn signal.
//!
//! The static `queue_capacity` of [`BoundedQueue`](crate::BoundedQueue)
//! protects memory, but it is a terrible *latency* bound: a queue sized
//! for burst absorption holds seconds of work once arrival rate exceeds
//! service rate, and every admitted request then blows its deadline —
//! goodput collapses while the queue stays proudly "bounded".
//! [`AimdLimit`] closes the loop: workers feed it each request's queue
//! sojourn (the time between enqueue and pickup), and it clamps the
//! queue's *effective* admission limit so standing queues drain instead
//! of growing.
//!
//! Two classic ideas compose here:
//!
//! * **CoDel's congestion signal** — look at the *minimum* sojourn over a
//!   window, not the mean or max. A short burst produces a few slow
//!   sojourns but the minimum stays low as the burst drains; a *standing*
//!   queue keeps even the luckiest request waiting, so a window minimum
//!   above target is unambiguous congestion. The window is counted in
//!   observations, not wall time, which keeps the controller fully
//!   deterministic for simulated workloads.
//! * **AIMD** — on a congested window, multiply the limit down (default
//!   halve); on a healthy window, add a constant. The multiplicative cut
//!   reacts in one window to any overload magnitude; the additive probe
//!   recovers capacity slowly enough not to re-trigger.
//!
//! The controller is a pure observation-driven state machine: no clocks,
//! no threads, no locks. The serving layer owns the mutex around it.

/// Tuning for an [`AimdLimit`].
#[derive(Debug, Clone)]
pub struct AimdConfig {
    /// Lower clamp for the limit. Never below 1: the queue must always
    /// admit *something* or the controller can never observe recovery.
    pub min_limit: usize,
    /// Upper clamp for the limit (the uncongested steady state).
    pub max_limit: usize,
    /// Additive increase applied after each healthy window.
    pub increase: usize,
    /// Multiplicative decrease factor in `(0, 1)` applied on congestion.
    pub decrease_factor: f64,
    /// Sojourn target, microseconds: a window whose *minimum* sojourn
    /// exceeds this is congested (the CoDel standing-queue test).
    pub target_sojourn_us: u64,
    /// Observations per control window.
    pub window: usize,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            min_limit: 2,
            max_limit: 64,
            increase: 2,
            decrease_factor: 0.5,
            target_sojourn_us: 20_000,
            window: 16,
        }
    }
}

/// What an [`AimdLimit`] concluded when a window closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AimdVerdict {
    /// Window minimum sojourn exceeded target: the limit was cut.
    Congested,
    /// Window minimum within target: the limit was (additively) raised.
    Healthy,
}

/// AIMD concurrency/queue-depth limiter over a windowed min-sojourn
/// signal. Feed it one [`observe`](Self::observe) per served request.
#[derive(Debug, Clone)]
pub struct AimdLimit {
    config: AimdConfig,
    limit: usize,
    window_min_us: u64,
    seen: usize,
}

impl AimdLimit {
    /// Start optimistic, at `max_limit`. Panics on a nonsensical config
    /// (zero-size window, inverted clamps, decrease factor outside
    /// `(0, 1)`): these are construction-time programming errors, not
    /// runtime conditions.
    pub fn new(config: AimdConfig) -> Self {
        assert!(config.min_limit >= 1, "min_limit must be at least 1");
        assert!(
            config.min_limit <= config.max_limit,
            "min_limit must not exceed max_limit"
        );
        assert!(
            config.decrease_factor > 0.0 && config.decrease_factor < 1.0,
            "decrease_factor must be in (0, 1)"
        );
        assert!(config.window >= 1, "window must be at least 1");
        AimdLimit {
            limit: config.max_limit,
            config,
            window_min_us: u64::MAX,
            seen: 0,
        }
    }

    /// The current admission limit, always within `[min_limit, max_limit]`.
    pub fn limit(&self) -> usize {
        self.limit
    }

    pub fn config(&self) -> &AimdConfig {
        &self.config
    }

    /// Record one request's queue sojourn. Returns a verdict exactly when
    /// this observation closes a control window (every `window`-th call),
    /// after the limit has been adjusted.
    pub fn observe(&mut self, sojourn_us: u64) -> Option<AimdVerdict> {
        self.window_min_us = self.window_min_us.min(sojourn_us);
        self.seen += 1;
        if self.seen < self.config.window {
            return None;
        }
        let verdict = if self.window_min_us > self.config.target_sojourn_us {
            // Even the fastest request of the window waited too long: a
            // standing queue, not a burst. Cut multiplicatively.
            let cut = (self.limit as f64 * self.config.decrease_factor) as usize;
            self.limit = cut.max(self.config.min_limit);
            AimdVerdict::Congested
        } else {
            self.limit = self
                .limit
                .saturating_add(self.config.increase)
                .min(self.config.max_limit);
            AimdVerdict::Healthy
        };
        self.window_min_us = u64::MAX;
        self.seen = 0;
        Some(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AimdConfig {
        AimdConfig {
            min_limit: 2,
            max_limit: 32,
            increase: 2,
            decrease_factor: 0.5,
            target_sojourn_us: 1_000,
            window: 4,
        }
    }

    #[test]
    fn congested_windows_halve_and_healthy_windows_probe_up() {
        let mut aimd = AimdLimit::new(config());
        assert_eq!(aimd.limit(), 32);
        // Three observations do not close the window.
        for _ in 0..3 {
            assert_eq!(aimd.observe(5_000), None);
        }
        assert_eq!(aimd.observe(5_000), Some(AimdVerdict::Congested));
        assert_eq!(aimd.limit(), 16);
        for _ in 0..4 {
            aimd.observe(5_000);
        }
        assert_eq!(aimd.limit(), 8);
        // Recovery is additive: one healthy window adds `increase`.
        for _ in 0..4 {
            aimd.observe(100);
        }
        assert_eq!(aimd.limit(), 10);
    }

    #[test]
    fn one_fast_request_in_the_window_vetoes_congestion() {
        // The CoDel property: a burst (some slow sojourns) with one fast
        // pickup is not a standing queue.
        let mut aimd = AimdLimit::new(config());
        aimd.observe(50_000);
        aimd.observe(50_000);
        aimd.observe(10); // the burst drained for at least one request
        assert_eq!(aimd.observe(50_000), Some(AimdVerdict::Healthy));
        assert_eq!(aimd.limit(), 32, "already at max_limit");
    }

    #[test]
    fn limit_clamps_to_min_under_sustained_congestion() {
        let mut aimd = AimdLimit::new(config());
        for _ in 0..100 {
            aimd.observe(1_000_000);
        }
        assert_eq!(aimd.limit(), 2);
        // And recovers to max under sustained health.
        for _ in 0..100 {
            aimd.observe(0);
        }
        assert_eq!(aimd.limit(), 32);
    }

    #[test]
    #[should_panic(expected = "decrease_factor")]
    fn rejects_degenerate_decrease_factor() {
        AimdLimit::new(AimdConfig {
            decrease_factor: 1.0,
            ..config()
        });
    }
}
