//! Bounded admission queue with pluggable backpressure policies.
//!
//! The service's front door is a fixed-capacity MPMC queue built on
//! `Mutex` + `Condvar`. When the queue is full, the [`AdmissionPolicy`]
//! decides what happens to the *new* arrival:
//!
//! * [`Reject`](AdmissionPolicy::Reject) — turn it away with a typed error
//!   so the caller can retry elsewhere (fail-fast).
//! * [`Block`](AdmissionPolicy::Block) — park the submitting thread until a
//!   worker frees a slot (natural producer throttling).
//! * [`ShedOldest`](AdmissionPolicy::ShedOldest) — admit the new request and
//!   evict the oldest queued one, which is the request most likely to have
//!   already blown its deadline (freshness-first).
//!
//! Workers drain with [`BoundedQueue::pop_batch`], which removes up to
//! `max_batch` items per wakeup — the micro-batching lever: one lock
//! acquisition and one worker wakeup amortized over several tables.
//!
//! Poisoning: a worker that panics *while annotating* never holds the
//! queue lock (all critical sections here are pure `VecDeque` + counter
//! arithmetic, which cannot unwind), but a panic elsewhere on a thread's
//! stack still marks the `Mutex` poisoned. The queue state is always
//! internally consistent at lock-release, so every acquisition recovers
//! the guard with [`PoisonError::into_inner`] instead of propagating the
//! poison — one crashed worker must not take the whole front door down.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// What to do with a new request when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse the new request with [`PushError::Rejected`].
    Reject,
    /// Block the submitting thread until space frees up.
    Block,
    /// Admit the new request; evict and return the oldest queued one.
    ShedOldest,
}

/// Why a push did not enqueue the item.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// Queue full under [`AdmissionPolicy::Reject`].
    Rejected { queue_depth: usize, capacity: usize },
    /// The queue was closed; no more work is accepted.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Total items ever admitted (including later-shed ones).
    admitted: u64,
    /// Total items evicted under `ShedOldest`.
    shed: u64,
}

/// Fixed-capacity MPMC queue; see the module docs for the policy semantics.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// Dynamic admission limit in `[1, capacity]`, adjusted by the
    /// adaptive admission controller. `capacity` stays the hard memory
    /// bound; this is the *latency* bound the policies enforce.
    limit: AtomicUsize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items. Panics if `capacity == 0`:
    /// a zero-capacity queue can never transfer work.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                admitted: 0,
                shed: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            limit: AtomicUsize::new(capacity),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current effective admission limit (`<= capacity`).
    pub fn limit(&self) -> usize {
        self.limit.load(Ordering::Relaxed)
    }

    /// Set the dynamic admission limit, clamped to `[1, capacity]`, and
    /// return the clamped value. Raising the limit wakes producers parked
    /// under [`AdmissionPolicy::Block`]. Lowering it does *not* evict
    /// already-queued items — call [`trim_to_limit`](Self::trim_to_limit)
    /// for that, so the caller can fail the victims explicitly.
    pub fn set_limit(&self, limit: usize) -> usize {
        let clamped = limit.clamp(1, self.capacity);
        let previous = self.limit.swap(clamped, Ordering::Relaxed);
        if clamped > previous {
            self.not_full.notify_all();
        }
        clamped
    }

    /// Evict oldest-first until the depth is within the current limit,
    /// returning the victims (in eviction order) for the caller to fail
    /// explicitly. Each victim counts toward the `shed` counter, exactly
    /// like a `ShedOldest` eviction.
    pub fn trim_to_limit(&self) -> Vec<T> {
        let limit = self.limit();
        let mut state = self.lock_state();
        let mut victims = Vec::new();
        while state.items.len() > limit {
            match state.items.pop_front() {
                Some(victim) => {
                    state.shed += 1;
                    victims.push(victim);
                }
                None => break,
            }
        }
        victims
    }

    /// Acquire the state lock, recovering from poison (see module docs:
    /// the state is re-validatable, so a poisoned lock is survivable).
    fn lock_state(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current number of queued items.
    pub fn depth(&self) -> usize {
        self.lock_state().items.len()
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock_state().closed
    }

    /// (admitted, shed) lifetime counters.
    pub fn counters(&self) -> (u64, u64) {
        let s = self.lock_state();
        (s.admitted, s.shed)
    }

    /// Enqueue `item` under `policy`. `Ok(None)` means plainly enqueued;
    /// `Ok(Some(victim))` means enqueued by shedding the returned oldest
    /// item; `Err` means the item was not admitted.
    pub fn push(&self, item: T, policy: AdmissionPolicy) -> Result<Option<T>, PushError> {
        let mut state = self.lock_state();
        if state.closed {
            return Err(PushError::Closed);
        }
        let mut victim = None;
        let limit = self.limit();
        if state.items.len() >= limit {
            match policy {
                AdmissionPolicy::Reject => {
                    return Err(PushError::Rejected {
                        queue_depth: state.items.len(),
                        capacity: limit,
                    });
                }
                AdmissionPolicy::Block => {
                    // Re-read the limit each wakeup: the admission
                    // controller may raise it while we are parked.
                    while state.items.len() >= self.limit() && !state.closed {
                        state = self
                            .not_full
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    if state.closed {
                        return Err(PushError::Closed);
                    }
                }
                AdmissionPolicy::ShedOldest => {
                    victim = state.items.pop_front();
                    if victim.is_some() {
                        state.shed += 1;
                    }
                }
            }
        }
        state.items.push_back(item);
        state.admitted += 1;
        drop(state);
        self.not_empty.notify_one();
        Ok(victim)
    }

    /// Block until at least one item is available (or the queue closes),
    /// then drain up to `max_batch` items. An empty Vec means the queue is
    /// closed *and* fully drained — the worker's signal to exit.
    pub fn pop_batch(&self, max_batch: usize) -> Vec<T> {
        let max_batch = max_batch.max(1);
        let mut state = self.lock_state();
        while state.items.is_empty() && !state.closed {
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let take = state.items.len().min(max_batch);
        let batch: Vec<T> = state.items.drain(..take).collect();
        drop(state);
        if !batch.is_empty() {
            // Freed capacity: wake blocked producers; more items may remain
            // for sibling workers.
            self.not_full.notify_all();
            self.not_empty.notify_one();
        }
        batch
    }

    /// Put already-admitted items back at the *front* of the queue in
    /// order (index 0 becomes the next item popped). Used by the worker
    /// panic path: the rest of a micro-batch goes back for a sibling (or
    /// the respawned worker) to pick up, ahead of newer arrivals.
    /// Capacity is intentionally not enforced — these items already passed
    /// admission once. Returns the items unchanged if the queue closed in
    /// the meantime, so the caller can fail them explicitly.
    pub fn requeue_front(&self, items: Vec<T>) -> Result<(), Vec<T>> {
        if items.is_empty() {
            return Ok(());
        }
        let mut state = self.lock_state();
        if state.closed {
            return Err(items);
        }
        for item in items.into_iter().rev() {
            state.items.push_front(item);
        }
        drop(state);
        self.not_empty.notify_all();
        Ok(())
    }

    /// Close the queue and return everything still queued, so the caller
    /// can fail those requests explicitly rather than dropping them.
    pub fn close(&self) -> Vec<T> {
        let mut state = self.lock_state();
        state.closed = true;
        let leftovers: Vec<T> = state.items.drain(..).collect();
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        leftovers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reject_policy_returns_typed_overflow() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1, AdmissionPolicy::Reject), Ok(None));
        assert_eq!(q.push(2, AdmissionPolicy::Reject), Ok(None));
        assert_eq!(
            q.push(3, AdmissionPolicy::Reject),
            Err(PushError::Rejected {
                queue_depth: 2,
                capacity: 2
            })
        );
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn shed_oldest_evicts_in_fifo_order() {
        let q = BoundedQueue::new(2);
        q.push(1, AdmissionPolicy::ShedOldest).unwrap();
        q.push(2, AdmissionPolicy::ShedOldest).unwrap();
        assert_eq!(q.push(3, AdmissionPolicy::ShedOldest), Ok(Some(1)));
        assert_eq!(q.push(4, AdmissionPolicy::ShedOldest), Ok(Some(2)));
        assert_eq!(q.pop_batch(8), vec![3, 4]);
        assert_eq!(q.counters(), (4, 2));
    }

    #[test]
    fn pop_batch_respects_max_batch_and_fifo() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i, AdmissionPolicy::Reject).unwrap();
        }
        assert_eq!(q.pop_batch(3), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(3), vec![3, 4]);
    }

    #[test]
    fn requeue_front_restores_fifo_order_ahead_of_queued_items() {
        let q = BoundedQueue::new(2);
        q.push(10, AdmissionPolicy::Reject).unwrap();
        q.push(11, AdmissionPolicy::Reject).unwrap();
        // Requeue past capacity: already-admitted items are never dropped.
        q.requeue_front(vec![1, 2, 3]).unwrap();
        assert_eq!(q.depth(), 5);
        assert_eq!(q.pop_batch(8), vec![1, 2, 3, 10, 11]);
        // After close, requeue hands the items back for explicit failure.
        assert!(!q.is_closed());
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.requeue_front(vec![7, 8]), Err(vec![7, 8]));
        assert_eq!(q.requeue_front(Vec::<i32>::new()), Ok(()));
    }

    #[test]
    fn dynamic_limit_clamps_admission_below_capacity() {
        let q = BoundedQueue::new(8);
        assert_eq!(q.limit(), 8);
        assert_eq!(q.set_limit(3), 3);
        for i in 0..3 {
            q.push(i, AdmissionPolicy::Reject).unwrap();
        }
        assert_eq!(
            q.push(99, AdmissionPolicy::Reject),
            Err(PushError::Rejected {
                queue_depth: 3,
                capacity: 3
            }),
            "the effective limit, not the hard capacity, bounds admission"
        );
        // The clamp range is [1, capacity].
        assert_eq!(q.set_limit(0), 1);
        assert_eq!(q.set_limit(1_000), 8);
    }

    #[test]
    fn trim_to_limit_evicts_oldest_and_counts_shed() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.push(i, AdmissionPolicy::Reject).unwrap();
        }
        assert!(q.trim_to_limit().is_empty(), "within limit: no victims");
        q.set_limit(2);
        assert_eq!(q.trim_to_limit(), vec![0, 1, 2, 3]);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.counters(), (6, 4));
        assert_eq!(q.pop_batch(8), vec![4, 5]);
    }

    #[test]
    fn raising_the_limit_unblocks_parked_producers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.set_limit(1);
        q.push(1, AdmissionPolicy::Block).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2, AdmissionPolicy::Block))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.depth(), 1, "producer is parked on the shrunk limit");
        q.set_limit(2);
        assert_eq!(producer.join().unwrap(), Ok(None));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push(1, AdmissionPolicy::Reject).unwrap();
        // Poison the mutex: panic while holding the guard on another thread.
        let poisoner = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let _guard = q.state.lock().unwrap();
                panic!("deliberate poison");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(q.state.is_poisoned());
        // Every operation still works on the recovered state.
        assert_eq!(q.depth(), 1);
        q.push(2, AdmissionPolicy::Reject).unwrap();
        assert_eq!(q.pop_batch(8), vec![1, 2]);
        assert!(q.close().is_empty());
    }

    #[test]
    fn close_drains_and_unblocks() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push("a", AdmissionPolicy::Reject).unwrap();
        q.push("b", AdmissionPolicy::Reject).unwrap();
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // Drain the two queued items, then block until close.
                let first = q.pop_batch(8);
                let second = q.pop_batch(8);
                (first, second)
            })
        };
        // Give the waiter a chance to drain and park; close() must wake it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let leftovers = q.close();
        let (first, second) = waiter.join().unwrap();
        assert_eq!(first, vec!["a", "b"]);
        assert!(second.is_empty(), "closed queue returns an empty batch");
        assert!(leftovers.is_empty());
        assert_eq!(q.push("c", AdmissionPolicy::Block), Err(PushError::Closed));
    }

    #[test]
    fn block_policy_waits_for_capacity() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, AdmissionPolicy::Block).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2, AdmissionPolicy::Block))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        // Producer is parked on the full queue; draining must release it.
        assert_eq!(q.pop_batch(1), vec![1]);
        assert_eq!(producer.join().unwrap(), Ok(None));
        assert_eq!(q.pop_batch(1), vec![2]);
    }
}
