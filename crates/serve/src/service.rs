//! The annotation service: submit tables, get tickets, wait for labels.
//!
//! [`AnnotationService`] wraps a trained [`KgLink`] behind a sharded worker
//! pool. The moving parts, front to back:
//!
//! ```text
//!  submit() ──► BoundedQueue (admission policy) ──► worker 0 ─┐
//!  submit() ──►                                ──► worker 1 ─┼─► reply
//!  submit() ──►                                ──► worker N ─┘  channels
//!                       │                            │
//!                  backpressure                MeteredBackend
//!                 (Reject/Block/                     │
//!                   ShedOldest)              CachingBackend (shared LRU)
//!                                                    │
//!                                             user backend stack
//!                                        (searcher / resilient / faulty)
//! ```
//!
//! Determinism: annotation is a pure function of (model, resources, table).
//! The cache only ever serves bit-identical [`SearchOutcome`]s (keyed by
//! normalized mention + `top_k` over a deterministic backend), so results
//! are independent of worker count and scheduling — the serve tests and
//! `exp_serve` assert bit-identity between 1-worker and N-worker runs.

use crate::error::ServiceError;
use crate::metered::MeteredBackend;
use crate::metrics::ServiceMetrics;
use crate::queue::{AdmissionPolicy, BoundedQueue, PushError};
use crate::worker::{self, WorkerContext};
use kglink_core::KgLink;
use kglink_kg::KnowledgeGraph;
use kglink_nn::Tokenizer;
use kglink_obs::{Histogram, Tracer};
use kglink_search::{CacheConfig, CachingBackend, Deadline, KgBackend, MetricsSnapshot};
use kglink_table::{LabelId, Table};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The retrieval stack handed to the service: any [`KgBackend`] decorator
/// chain behind an `Arc` ([`KgBackend`] is `Send + Sync` by contract).
pub type SharedBackend = Arc<dyn KgBackend>;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads. `0` is allowed and means admission-only: requests
    /// queue but are never processed — useful for deterministic
    /// backpressure tests. `Block` admission requires `workers > 0` to
    /// ever make progress.
    pub workers: usize,
    /// Bounded queue capacity; beyond it the admission policy applies.
    pub queue_capacity: usize,
    /// Max tables a worker drains per wakeup (micro-batch size).
    pub max_batch: usize,
    /// What to do with new requests when the queue is full.
    pub admission: AdmissionPolicy,
    /// Deadline applied by [`AnnotationService::submit`] when the caller
    /// does not pass one explicitly.
    pub default_deadline: Deadline,
    /// Shared retrieval LRU configuration; `None` disables caching.
    pub cache: Option<CacheConfig>,
    /// Modeled PLM cost per column, simulated microseconds. Together with
    /// simulated retrieval latency this yields the per-worker busy-time
    /// that scaling experiments measure.
    pub sim_col_cost_us: u64,
    /// Observability sink shared by the cache and every worker: queue-wait
    /// and per-request service spans, plus cache hit/miss counters, land
    /// here. Defaults to [`Tracer::disabled`] (zero overhead).
    pub tracer: Tracer,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 64,
            max_batch: 4,
            admission: AdmissionPolicy::Block,
            default_deadline: Deadline::UNBOUNDED,
            cache: Some(CacheConfig::default()),
            sim_col_cost_us: 2_000,
            tracer: Tracer::disabled(),
        }
    }
}

/// One completed annotation, with its service-level context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// One predicted label per column of the submitted table.
    pub labels: Vec<LabelId>,
    /// Columns that fell back to the degraded no-linkage path.
    pub degraded_columns: usize,
    /// Cell retrievals that failed and were skipped.
    pub failed_cells: usize,
    /// Real microseconds the request spent queued before a worker took it.
    pub queue_us: u64,
    /// True when the deadline expired in the queue and the request was
    /// served entirely through the degraded no-linkage path.
    pub expired: bool,
}

/// Handle for one submitted request; redeem it with [`Ticket::wait`].
pub struct Ticket {
    id: u64,
    rx: mpsc::Receiver<Result<Annotation, ServiceError>>,
}

impl Ticket {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the request completes. A disconnected channel means the
    /// service shut down before the request was served.
    pub fn wait(self) -> Result<Annotation, ServiceError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(mpsc::RecvError) => Err(ServiceError::Closed),
        }
    }
}

/// A queued unit of work (crate-internal; callers only see [`Ticket`]s).
pub(crate) struct Request {
    pub table: Table,
    pub deadline: Deadline,
    pub enqueued: Instant,
    pub reply: mpsc::Sender<Result<Annotation, ServiceError>>,
}

/// Counters shared between the submit path, the workers, and `metrics()`.
pub(crate) struct Shared {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected: AtomicU64,
    pub shed: AtomicU64,
    pub expired: AtomicU64,
    pub annotated_columns: AtomicU64,
    pub degraded_columns: AtomicU64,
    pub failed_cells: AtomicU64,
    pub in_flight: AtomicUsize,
    pub latency: Mutex<Histogram>,
    /// One slot per worker: simulated busy-time, µs.
    pub sim_busy_us: Vec<AtomicU64>,
}

impl Shared {
    fn new(workers: usize) -> Self {
        Shared {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            annotated_columns: AtomicU64::new(0),
            degraded_columns: AtomicU64::new(0),
            failed_cells: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            latency: Mutex::new(Histogram::new()),
            sim_busy_us: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Concurrent in-process annotation service over a trained [`KgLink`].
pub struct AnnotationService {
    queue: Arc<BoundedQueue<Request>>,
    shared: Arc<Shared>,
    meters: Vec<Arc<MeteredBackend>>,
    cache: Option<Arc<CachingBackend<SharedBackend>>>,
    admission: AdmissionPolicy,
    default_deadline: Deadline,
    next_id: AtomicU64,
    started: Instant,
    handles: Vec<JoinHandle<()>>,
    closed: bool,
}

impl AnnotationService {
    /// Spawn the worker pool. The `backend` is the caller's retrieval
    /// stack (plain searcher, or `ResilientBackend`/`FaultyBackend`
    /// decorators); when `config.cache` is set the service interposes a
    /// shared [`CachingBackend`] in front of it, and every worker meters
    /// its own traffic through that shared stack.
    pub fn new(
        model: Arc<KgLink>,
        graph: Arc<KnowledgeGraph>,
        backend: SharedBackend,
        tokenizer: Arc<Tokenizer>,
        config: ServiceConfig,
    ) -> Self {
        let cache = config
            .cache
            .clone()
            .map(|c| Arc::new(CachingBackend::new(backend.clone(), c).with_tracer(&config.tracer)));
        let effective: SharedBackend = match &cache {
            Some(c) => Arc::clone(c) as SharedBackend,
            None => backend,
        };
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let shared = Arc::new(Shared::new(config.workers));
        let mut meters = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        for idx in 0..config.workers {
            let meter = Arc::new(MeteredBackend::new(effective.clone()));
            meters.push(Arc::clone(&meter));
            let ctx = WorkerContext {
                idx,
                model: Arc::clone(&model),
                graph: Arc::clone(&graph),
                tokenizer: Arc::clone(&tokenizer),
                meter,
                queue: Arc::clone(&queue),
                shared: Arc::clone(&shared),
                max_batch: config.max_batch.max(1),
                sim_col_cost_us: config.sim_col_cost_us,
                tracer: config.tracer.clone(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("kglink-serve-{idx}"))
                .spawn(move || worker::run(ctx))
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
        AnnotationService {
            queue,
            shared,
            meters,
            cache,
            admission: config.admission,
            default_deadline: config.default_deadline,
            next_id: AtomicU64::new(0),
            started: Instant::now(),
            handles,
            closed: false,
        }
    }

    /// Submit one table under the configured default deadline.
    pub fn submit(&self, table: Table) -> Result<Ticket, ServiceError> {
        self.submit_with_deadline(table, self.default_deadline)
    }

    /// Submit one table with an explicit per-request deadline. The budget
    /// covers queue wait *and* retrieval: time spent queued is subtracted
    /// from what the pipeline may spend on KG queries, and a request whose
    /// budget is gone before a worker picks it up completes through the
    /// degraded no-linkage path (never an error, never a panic).
    pub fn submit_with_deadline(
        &self,
        table: Table,
        deadline: Deadline,
    ) -> Result<Ticket, ServiceError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let request = Request {
            table,
            deadline,
            enqueued: Instant::now(),
            reply: tx,
        };
        match self.queue.push(request, self.admission) {
            Ok(None) => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { id, rx })
            }
            Ok(Some(victim)) => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                let _ = victim.reply.send(Err(ServiceError::Shed));
                Ok(Ticket { id, rx })
            }
            Err(PushError::Rejected {
                queue_depth,
                capacity,
            }) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Overloaded {
                    queue_depth,
                    capacity,
                })
            }
            Err(PushError::Closed) => Err(ServiceError::Closed),
        }
    }

    /// Submit many tables at once; tickets come back in submission order.
    pub fn submit_batch(
        &self,
        tables: impl IntoIterator<Item = Table>,
    ) -> Vec<Result<Ticket, ServiceError>> {
        tables.into_iter().map(|t| self.submit(t)).collect()
    }

    /// Blocking convenience: submit and wait.
    pub fn annotate(&self, table: Table) -> Result<Annotation, ServiceError> {
        self.submit(table)?.wait()
    }

    /// Point-in-time service snapshot; see [`ServiceMetrics`].
    pub fn metrics(&self) -> ServiceMetrics {
        let retrieval = self
            .meters
            .iter()
            .map(|m| m.snapshot())
            .fold(MetricsSnapshot::default(), |acc, s| acc.merge(&s));
        let latency = self
            .shared
            .latency
            .lock()
            .expect("latency lock poisoned")
            .clone();
        ServiceMetrics {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            expired: self.shared.expired.load(Ordering::Relaxed),
            queue_depth: self.queue.depth(),
            in_flight: self.shared.in_flight.load(Ordering::SeqCst),
            annotated_columns: self.shared.annotated_columns.load(Ordering::Relaxed),
            degraded_columns: self.shared.degraded_columns.load(Ordering::Relaxed),
            failed_cells: self.shared.failed_cells.load(Ordering::Relaxed),
            latency_p50_us: latency.p50(),
            latency_p99_us: latency.p99(),
            sim_busy_us: self
                .shared
                .sim_busy_us
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            uptime_us: self.started.elapsed().as_micros() as u64,
            retrieval,
            cache: self.cache.as_ref().map(|c| c.stats()),
        }
    }

    /// Drain and stop: close the queue, fail still-queued requests with
    /// [`ServiceError::Closed`], and join every worker. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        for leftover in self.queue.close() {
            let _ = leftover.reply.send(Err(ServiceError::Closed));
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for AnnotationService {
    fn drop(&mut self) {
        self.shutdown();
    }
}
