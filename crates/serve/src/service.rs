//! The annotation service: submit tables, get tickets, wait for labels.
//!
//! [`AnnotationService`] wraps a trained [`KgLink`] behind a sharded worker
//! pool. The moving parts, front to back:
//!
//! ```text
//!  submit() ──► BoundedQueue (admission policy) ──► worker 0 ─┐
//!  submit() ──►                                ──► worker 1 ─┼─► reply
//!  submit() ──►                                ──► worker N ─┘  channels
//!                       │                            │
//!                  backpressure                MeteredBackend
//!                 (Reject/Block/                     │
//!                   ShedOldest)              CachingBackend (shared LRU)
//!                                                    │
//!                                             user backend stack
//!                                        (searcher / resilient / faulty)
//! ```
//!
//! Determinism: annotation is a pure function of (model, resources, table).
//! The cache only ever serves bit-identical [`SearchOutcome`]s (keyed by
//! normalized mention + `top_k` over a deterministic backend), so results
//! are independent of worker count and scheduling — the serve tests and
//! `exp_serve` assert bit-identity between 1-worker and N-worker runs.

use crate::admission::{AimdConfig, AimdLimit};
use crate::brownout::{self, BrownoutConfig, BrownoutController};
use crate::error::ServiceError;
use crate::lifecycle::{
    Lifecycle, ModelEpoch, ShadowState, SwapError, SwapPhase, SwapPlan, SwapReport, VersionStats,
};
use crate::metered::MeteredBackend;
use crate::metrics::ServiceMetrics;
use crate::queue::{AdmissionPolicy, BoundedQueue, PushError};
use crate::worker::{self, WorkerContext, WorkerExit};
use kglink_core::pipeline::req;
use kglink_core::{DegradationRung, KgLink};
use kglink_kg::GraphAccess;
use kglink_nn::Tokenizer;
use kglink_obs::{Histogram, Tracer};
use kglink_search::{CacheConfig, CachingBackend, Deadline, KgBackend, MetricsSnapshot};
use kglink_table::{LabelId, Table};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The retrieval stack handed to the service: any [`KgBackend`] decorator
/// chain behind an `Arc` ([`KgBackend`] is `Send + Sync` by contract).
pub type SharedBackend = Arc<dyn KgBackend>;

/// Overload-protection wiring: an adaptive admission controller plus the
/// graceful-degradation ladder. `None` (the default) preserves the static
/// behavior: admission at full `queue_capacity`, every request served at
/// rung 0.
#[derive(Debug, Clone, Default)]
pub struct OverloadConfig {
    /// AIMD admission limit driven by queue-sojourn congestion detection.
    pub aimd: AimdConfig,
    /// Hysteretic rung selection for the degradation ladder.
    pub brownout: BrownoutConfig,
}

/// Admission + brownout controller state, fed one observation per request
/// by whichever worker dequeues it. One mutex guards both so the limit and
/// the rung always move on the same signal.
pub(crate) struct OverloadState {
    pub aimd: AimdLimit,
    pub brownout: BrownoutController,
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads. `0` is allowed and means admission-only: requests
    /// queue but are never processed — useful for deterministic
    /// backpressure tests. `Block` admission requires `workers > 0` to
    /// ever make progress.
    pub workers: usize,
    /// Bounded queue capacity; beyond it the admission policy applies.
    pub queue_capacity: usize,
    /// Max tables a worker drains per wakeup (micro-batch size).
    pub max_batch: usize,
    /// What to do with new requests when the queue is full.
    pub admission: AdmissionPolicy,
    /// Deadline applied by [`AnnotationService::submit`] when the caller
    /// does not pass one explicitly.
    pub default_deadline: Deadline,
    /// Shared retrieval LRU configuration; `None` disables caching.
    pub cache: Option<CacheConfig>,
    /// Modeled PLM cost per column, simulated microseconds. Together with
    /// simulated retrieval latency this yields the per-worker busy-time
    /// that scaling experiments measure.
    pub sim_col_cost_us: u64,
    /// Total worker respawns the supervisor may perform over the service's
    /// lifetime (pool-wide, not per worker). When every worker is dead and
    /// the budget is spent, queued and future requests fail with
    /// [`ServiceError::RestartBudgetExhausted`].
    pub restart_budget: usize,
    /// Observability sink shared by the cache and every worker: queue-wait
    /// and per-request service spans, plus cache hit/miss counters, land
    /// here. Defaults to [`Tracer::disabled`] (zero overhead).
    pub tracer: Tracer,
    /// Overload protection (adaptive admission + degradation ladder);
    /// `None` keeps the static queue behavior.
    pub overload: Option<OverloadConfig>,
    /// Version id reported for the model the service starts with
    /// (typically its registry version; `0` = unversioned baseline).
    pub initial_version: u64,
    /// Automatic rollbacks the lifecycle may perform over the service's
    /// lifetime. Like `restart_budget`, it fails closed: once spent,
    /// [`AnnotationService::swap_model`] refuses further candidates with
    /// [`SwapError::RollbackBudgetExhausted`] and the last-known-good
    /// epoch keeps serving.
    pub rollback_budget: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 64,
            max_batch: 4,
            admission: AdmissionPolicy::Block,
            default_deadline: Deadline::UNBOUNDED,
            cache: Some(CacheConfig::default()),
            sim_col_cost_us: 2_000,
            restart_budget: 3,
            tracer: Tracer::disabled(),
            overload: None,
            initial_version: 0,
            rollback_budget: 3,
        }
    }
}

/// One completed annotation, with its service-level context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// One predicted label per column of the submitted table.
    pub labels: Vec<LabelId>,
    /// Columns that fell back to the degraded no-linkage path.
    pub degraded_columns: usize,
    /// Cell retrievals that failed and were skipped.
    pub failed_cells: usize,
    /// Real microseconds the request spent queued before a worker took it.
    pub queue_us: u64,
    /// True when the deadline expired in the queue and the request was
    /// served entirely through the degraded no-linkage path.
    pub expired: bool,
    /// The degradation-ladder rung this request was served at. Expired
    /// requests always report [`DegradationRung::NoLinkage`].
    pub rung: DegradationRung,
    /// Version of the [`ModelEpoch`] that served this request end-to-end.
    /// Replaying the same table single-threaded against that version's
    /// model yields bit-identical labels.
    pub model_version: u64,
}

/// Handle for one submitted request; redeem it with [`Ticket::wait`].
pub struct Ticket {
    id: u64,
    rx: mpsc::Receiver<Result<Annotation, ServiceError>>,
}

impl Ticket {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the request completes. A disconnected channel means the
    /// service shut down before the request was served.
    pub fn wait(self) -> Result<Annotation, ServiceError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(mpsc::RecvError) => Err(ServiceError::Closed),
        }
    }
}

/// A queued unit of work (crate-internal; callers only see [`Ticket`]s).
pub(crate) struct Request {
    /// Ticket id; also the deterministic shadow-sampling key.
    pub id: u64,
    pub table: Table,
    pub deadline: Deadline,
    pub enqueued: Instant,
    pub reply: mpsc::Sender<Result<Annotation, ServiceError>>,
}

/// Counters shared between the submit path, the workers, and `metrics()`.
pub(crate) struct Shared {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected: AtomicU64,
    pub shed: AtomicU64,
    pub expired: AtomicU64,
    pub annotated_columns: AtomicU64,
    pub degraded_columns: AtomicU64,
    pub failed_cells: AtomicU64,
    pub in_flight: AtomicUsize,
    pub worker_panics: AtomicU64,
    pub worker_restarts: AtomicU64,
    pub workers_alive: AtomicUsize,
    /// Set by the supervisor when every worker is dead and the restart
    /// budget is spent: the service can no longer make progress.
    pub failed: AtomicBool,
    pub latency: Mutex<Histogram>,
    /// One slot per worker: simulated busy-time, µs.
    pub sim_busy_us: Vec<AtomicU64>,
    /// Current degradation-ladder level (0..=2); written by whichever
    /// worker last consulted the brownout controller.
    pub rung: AtomicUsize,
    /// Completions per rung, indexed by [`DegradationRung::level`].
    pub rung_served: [AtomicU64; 3],
    /// Overload-controller state; `None` when overload protection is off.
    pub overload: Option<Mutex<OverloadState>>,
}

impl Shared {
    fn new(workers: usize, overload: Option<&OverloadConfig>) -> Self {
        Shared {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            annotated_columns: AtomicU64::new(0),
            degraded_columns: AtomicU64::new(0),
            failed_cells: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            worker_panics: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            workers_alive: AtomicUsize::new(workers),
            failed: AtomicBool::new(false),
            latency: Mutex::new(Histogram::new()),
            sim_busy_us: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            rung: AtomicUsize::new(0),
            rung_served: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            overload: overload.map(|o| {
                Mutex::new(OverloadState {
                    aimd: AimdLimit::new(o.aimd.clone()),
                    brownout: BrownoutController::new(o.brownout.clone()),
                })
            }),
        }
    }
}

/// Everything needed to (re)spawn a worker thread at a given pool index.
/// The supervisor keeps one of these so a respawned worker is
/// indistinguishable from the original (same shared state, same meter).
struct Pool {
    lifecycle: Arc<Lifecycle>,
    /// The shared (cached) retrieval stack without any worker's meter;
    /// shadow duplicates annotate through this.
    backend: SharedBackend,
    graph: Arc<dyn GraphAccess>,
    tokenizer: Arc<Tokenizer>,
    queue: Arc<BoundedQueue<Request>>,
    shared: Arc<Shared>,
    cache: Option<Arc<CachingBackend<SharedBackend>>>,
    max_batch: usize,
    sim_col_cost_us: u64,
    tracer: Tracer,
}

impl Pool {
    fn spawn(
        &self,
        idx: usize,
        meter: Arc<MeteredBackend>,
        exit_tx: mpsc::Sender<(usize, WorkerExit)>,
    ) -> JoinHandle<()> {
        let ctx = WorkerContext {
            idx,
            lifecycle: Arc::clone(&self.lifecycle),
            backend: Arc::clone(&self.backend),
            graph: Arc::clone(&self.graph),
            tokenizer: Arc::clone(&self.tokenizer),
            meter,
            queue: Arc::clone(&self.queue),
            shared: Arc::clone(&self.shared),
            cache: self.cache.clone(),
            max_batch: self.max_batch,
            sim_col_cost_us: self.sim_col_cost_us,
            tracer: self.tracer.clone(),
        };
        std::thread::Builder::new()
            .name(format!("kglink-serve-{idx}"))
            .spawn(move || {
                // `worker::run` already isolates per-request panics; this
                // outer net catches anything that unwinds out of the loop
                // itself so the supervisor always learns how we died.
                let exit = catch_unwind(AssertUnwindSafe(|| worker::run(ctx)))
                    .unwrap_or(WorkerExit::Panicked);
                let _ = exit_tx.send((idx, exit));
            })
            // kglink-lint: allow(panic-in-lib) — OS thread spawn fails only
            // on process-level resource exhaustion at startup; there is no
            // degraded mode to offer without a worker pool.
            .expect("failed to spawn worker thread")
    }
}

/// Supervision loop: join each exiting worker, respawn panicked ones while
/// the pool-wide restart budget lasts, and declare the service failed when
/// every worker is dead with the budget spent (failing all queued tickets
/// with a typed error instead of stranding them).
fn supervise(
    pool: Pool,
    meters: Vec<Arc<MeteredBackend>>,
    restart_budget: usize,
    exit_tx: mpsc::Sender<(usize, WorkerExit)>,
    exit_rx: mpsc::Receiver<(usize, WorkerExit)>,
    mut handles: Vec<Option<JoinHandle<()>>>,
) {
    let mut alive = handles.len();
    let mut restarts_used = 0usize;
    while alive > 0 {
        let Ok((idx, exit)) = exit_rx.recv() else {
            break;
        };
        if let Some(handle) = handles[idx].take() {
            let _ = handle.join();
        }
        match exit {
            WorkerExit::Drained => alive -= 1,
            WorkerExit::Panicked => {
                if restarts_used < restart_budget && !pool.queue.is_closed() {
                    restarts_used += 1;
                    pool.shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
                    pool.tracer.incr("worker.restart", 1);
                    pool.tracer.event_with(
                        "worker.restart",
                        vec![
                            ("worker", idx.to_string()),
                            ("restarts_used", restarts_used.to_string()),
                            ("budget", restart_budget.to_string()),
                        ],
                    );
                    handles[idx] = Some(pool.spawn(idx, Arc::clone(&meters[idx]), exit_tx.clone()));
                } else {
                    alive -= 1;
                    // Publish the count before failing leftovers: a caller
                    // unblocked by those failures must not read a stale
                    // alive count.
                    pool.shared.workers_alive.store(alive, Ordering::SeqCst);
                    if alive == 0 && !pool.queue.is_closed() {
                        pool.shared.failed.store(true, Ordering::SeqCst);
                        pool.tracer.incr("worker.pool_failed", 1);
                        for leftover in pool.queue.close() {
                            let _ = leftover.reply.send(Err(
                                ServiceError::RestartBudgetExhausted {
                                    budget: restart_budget,
                                },
                            ));
                        }
                    }
                }
            }
        }
        pool.shared.workers_alive.store(alive, Ordering::SeqCst);
    }
}

/// Concurrent in-process annotation service over a trained [`KgLink`].
pub struct AnnotationService {
    queue: Arc<BoundedQueue<Request>>,
    shared: Arc<Shared>,
    meters: Vec<Arc<MeteredBackend>>,
    cache: Option<Arc<CachingBackend<SharedBackend>>>,
    admission: AdmissionPolicy,
    default_deadline: Deadline,
    restart_budget: usize,
    rollback_budget: usize,
    tracer: Tracer,
    next_id: AtomicU64,
    started: Instant,
    supervisor: Option<JoinHandle<()>>,
    closed: bool,
    lifecycle: Arc<Lifecycle>,
    // Retained for swap-time probe runs: the same graph/tokenizer/backend
    // stack the workers annotate through.
    graph: Arc<dyn GraphAccess>,
    tokenizer: Arc<Tokenizer>,
    probe_backend: SharedBackend,
}

impl AnnotationService {
    /// Spawn the worker pool. The `backend` is the caller's retrieval
    /// stack (plain searcher, or `ResilientBackend`/`FaultyBackend`
    /// decorators); when `config.cache` is set the service interposes a
    /// shared [`CachingBackend`] in front of it, and every worker meters
    /// its own traffic through that shared stack.
    pub fn new(
        model: Arc<KgLink>,
        graph: Arc<dyn GraphAccess>,
        backend: SharedBackend,
        tokenizer: Arc<Tokenizer>,
        config: ServiceConfig,
    ) -> Self {
        let cache = config
            .cache
            .clone()
            .map(|c| Arc::new(CachingBackend::new(backend.clone(), c).with_tracer(&config.tracer)));
        let effective: SharedBackend = match &cache {
            Some(c) => Arc::clone(c) as SharedBackend,
            None => backend,
        };
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let shared = Arc::new(Shared::new(config.workers, config.overload.as_ref()));
        if let Some(overload) = &shared.overload {
            // Start admission at the controller's optimistic initial limit
            // (clamped to the physical capacity by `set_limit`).
            let initial = overload
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .aimd
                .limit();
            queue.set_limit(initial);
        }
        let meters: Vec<Arc<MeteredBackend>> = (0..config.workers)
            .map(|_| Arc::new(MeteredBackend::new(effective.clone())))
            .collect();
        let lifecycle = Arc::new(Lifecycle::new(
            ModelEpoch::new(config.initial_version, model),
            config.rollback_budget,
        ));
        let pool = Pool {
            lifecycle: Arc::clone(&lifecycle),
            backend: effective.clone(),
            graph: Arc::clone(&graph),
            tokenizer: Arc::clone(&tokenizer),
            queue: Arc::clone(&queue),
            shared: Arc::clone(&shared),
            cache: cache.clone(),
            max_batch: config.max_batch.max(1),
            sim_col_cost_us: config.sim_col_cost_us,
            tracer: config.tracer.clone(),
        };
        // Admission-only mode (`workers == 0`) needs no worker threads and
        // therefore no supervisor either.
        let supervisor = if config.workers > 0 {
            // kglink-lint: allow(unbounded-channel) — worker-exit signal:
            // at most one message per worker death, bounded by the restart
            // budget plus the pool size; can never grow under load.
            let (exit_tx, exit_rx) = mpsc::channel();
            let handles: Vec<Option<JoinHandle<()>>> = meters
                .iter()
                .enumerate()
                .map(|(idx, meter)| Some(pool.spawn(idx, Arc::clone(meter), exit_tx.clone())))
                .collect();
            let sup_meters = meters.clone();
            let restart_budget = config.restart_budget;
            Some(
                std::thread::Builder::new()
                    .name("kglink-serve-supervisor".to_string())
                    .spawn(move || {
                        supervise(pool, sup_meters, restart_budget, exit_tx, exit_rx, handles)
                    })
                    // kglink-lint: allow(panic-in-lib) — same startup-only
                    // resource-exhaustion case as the worker spawn above.
                    .expect("failed to spawn supervisor thread"),
            )
        } else {
            None
        };
        AnnotationService {
            queue,
            shared,
            meters,
            cache,
            admission: config.admission,
            default_deadline: config.default_deadline,
            restart_budget: config.restart_budget,
            rollback_budget: config.rollback_budget,
            tracer: config.tracer,
            next_id: AtomicU64::new(0),
            // kglink-lint: allow(nondeterminism) — wall-clock uptime for
            // the metrics snapshot only; no annotation output reads it.
            started: Instant::now(),
            supervisor,
            closed: false,
            lifecycle,
            graph,
            tokenizer,
            probe_backend: effective,
        }
    }

    /// Submit one table under the configured default deadline.
    pub fn submit(&self, table: Table) -> Result<Ticket, ServiceError> {
        self.submit_with_deadline(table, self.default_deadline)
    }

    /// Submit one table with an explicit per-request deadline. The budget
    /// covers queue wait *and* retrieval: time spent queued is subtracted
    /// from what the pipeline may spend on KG queries, and a request whose
    /// budget is gone before a worker picks it up completes through the
    /// degraded no-linkage path (never an error, never a panic).
    pub fn submit_with_deadline(
        &self,
        table: Table,
        deadline: Deadline,
    ) -> Result<Ticket, ServiceError> {
        if self.shared.failed.load(Ordering::SeqCst) {
            return Err(ServiceError::RestartBudgetExhausted {
                budget: self.restart_budget,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // kglink-lint: allow(unbounded-channel) — per-ticket reply channel:
        // exactly one message ever flows through it, so "unbounded" holds
        // at most one item by construction.
        let (tx, rx) = mpsc::channel();
        let request = Request {
            id,
            table,
            deadline,
            // kglink-lint: allow(nondeterminism) — queue-wait timestamp:
            // deadlines are budgeted against real elapsed time by design;
            // annotation *results* stay bit-identical regardless (PR 2).
            enqueued: Instant::now(),
            reply: tx,
        };
        match self.queue.push(request, self.admission) {
            Ok(None) => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { id, rx })
            }
            Ok(Some(victim)) => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                brownout::resolve_shed(victim, &self.shared.shed, &self.tracer);
                Ok(Ticket { id, rx })
            }
            Err(PushError::Rejected {
                queue_depth,
                capacity,
            }) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Overloaded {
                    queue_depth,
                    capacity,
                })
            }
            Err(PushError::Closed) => Err(ServiceError::Closed),
        }
    }

    /// Submit many tables at once; tickets come back in submission order.
    pub fn submit_batch(
        &self,
        tables: impl IntoIterator<Item = Table>,
    ) -> Vec<Result<Ticket, ServiceError>> {
        tables.into_iter().map(|t| self.submit(t)).collect()
    }

    /// Blocking convenience: submit and wait.
    pub fn annotate(&self, table: Table) -> Result<Annotation, ServiceError> {
        self.submit(table)?.wait()
    }

    /// Point-in-time service snapshot; see [`ServiceMetrics`].
    pub fn metrics(&self) -> ServiceMetrics {
        let retrieval = self
            .meters
            .iter()
            .map(|m| m.snapshot())
            .fold(MetricsSnapshot::default(), |acc, s| acc.merge(&s));
        let latency = self
            .shared
            .latency
            .lock()
            // The histogram is always internally consistent; recover from a
            // panicked worker's poison rather than fail the metrics read.
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        ServiceMetrics {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            expired: self.shared.expired.load(Ordering::Relaxed),
            queue_depth: self.queue.depth(),
            admission_limit: self.queue.limit(),
            rung: DegradationRung::from_level(self.shared.rung.load(Ordering::Relaxed) as u8),
            served_full: self.shared.rung_served[0].load(Ordering::Relaxed),
            served_cache_only: self.shared.rung_served[1].load(Ordering::Relaxed),
            served_no_linkage: self.shared.rung_served[2].load(Ordering::Relaxed),
            in_flight: self.shared.in_flight.load(Ordering::SeqCst),
            annotated_columns: self.shared.annotated_columns.load(Ordering::Relaxed),
            degraded_columns: self.shared.degraded_columns.load(Ordering::Relaxed),
            failed_cells: self.shared.failed_cells.load(Ordering::Relaxed),
            latency_p50_us: latency.p50(),
            latency_p99_us: latency.p99(),
            worker_panics: self.shared.worker_panics.load(Ordering::Relaxed),
            worker_restarts: self.shared.worker_restarts.load(Ordering::Relaxed),
            workers_alive: self.shared.workers_alive.load(Ordering::SeqCst),
            sim_busy_us: self
                .shared
                .sim_busy_us
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            uptime_us: self.started.elapsed().as_micros() as u64,
            retrieval,
            cache: self.cache.as_ref().map(|c| c.stats()),
            model_version: self.lifecycle.current().version,
            swaps: self.lifecycle.swaps.load(Ordering::Relaxed),
            rollbacks: self.lifecycle.rollbacks.load(Ordering::Relaxed),
        }
    }

    /// Per-version serving statistics (request counts and latency
    /// histograms keyed by the epoch version that served them).
    pub fn version_stats(&self) -> BTreeMap<u64, VersionStats> {
        self.lifecycle.version_stats()
    }

    /// The version id of the epoch currently serving traffic.
    pub fn model_version(&self) -> u64 {
        self.lifecycle.current().version
    }

    /// Hot-swap the serving model through the prepare → shadow → promote
    /// → watch state machine (see [`crate::lifecycle`] and DESIGN.md §15).
    ///
    /// Blocks the calling thread through every phase; live traffic is
    /// never paused. On [`SwapError::Rejected`] the serving epoch was
    /// never touched; on [`SwapError::RolledBack`] the prior epoch has
    /// already been reinstalled. Once the rollback budget is spent the
    /// lifecycle fails closed: every further call returns
    /// [`SwapError::RollbackBudgetExhausted`] without touching the model.
    pub fn swap_model(
        &self,
        version: u64,
        candidate: Arc<KgLink>,
        plan: &SwapPlan,
    ) -> Result<SwapReport, SwapError> {
        if self.shared.failed.load(Ordering::SeqCst) || self.queue.is_closed() {
            return Err(SwapError::ServiceUnavailable);
        }
        if self.lifecycle.exhausted.load(Ordering::SeqCst)
            || self.lifecycle.rollback_budget_left.load(Ordering::SeqCst) == 0
        {
            self.lifecycle.exhausted.store(true, Ordering::SeqCst);
            return Err(SwapError::RollbackBudgetExhausted {
                budget: self.rollback_budget,
            });
        }
        if self
            .lifecycle
            .swap_in_progress
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(SwapError::SwapInProgress);
        }
        let _guard = SwapGuard {
            lifecycle: &self.lifecycle,
        };
        self.swap_inner(version, candidate, plan)
    }

    fn swap_inner(
        &self,
        version: u64,
        candidate: Arc<KgLink>,
        plan: &SwapPlan,
    ) -> Result<SwapReport, SwapError> {
        let active = self.lifecycle.current();
        let mut report = SwapReport {
            from_version: active.version,
            to_version: version,
            ..SwapReport::default()
        };

        // ---- prepare: self-check before the candidate sees traffic ----
        let reject = |phase: SwapPhase, reason: String| {
            self.tracer.incr("model.reject", 1);
            self.tracer.event_with(
                "model.reject",
                vec![
                    ("candidate", version.to_string()),
                    ("phase", phase.to_string()),
                    ("reason", reason.clone()),
                ],
            );
            Err(SwapError::Rejected { phase, reason })
        };
        let base_labels = &active.model.labels;
        if candidate.labels.len() != base_labels.len()
            || base_labels
                .iter()
                .any(|(id, name)| candidate.labels.name(id) != name)
        {
            return reject(
                SwapPhase::Prepare,
                format!(
                    "label space differs: candidate has {} labels, active has {}",
                    candidate.labels.len(),
                    base_labels.len()
                ),
            );
        }
        for table in &plan.probe_tables {
            let base = match self.probe_labels(&active.model, table) {
                Ok(l) => l,
                Err(()) => {
                    return reject(
                        SwapPhase::Prepare,
                        "active model panicked on a probe table".into(),
                    )
                }
            };
            let cand = match self.probe_labels(&candidate, table) {
                Ok(l) => l,
                Err(()) => {
                    return reject(
                        SwapPhase::Prepare,
                        "candidate panicked on a probe table".into(),
                    )
                }
            };
            if base.len() != cand.len() {
                return reject(
                    SwapPhase::Prepare,
                    format!(
                        "candidate arity {} != active arity {} on a probe table",
                        cand.len(),
                        base.len()
                    ),
                );
            }
            report.probe_columns += base.len() as u64;
            report.probe_flipped_columns +=
                base.iter().zip(&cand).filter(|(a, b)| a != b).count() as u64;
        }
        if report.probe_columns > 0 {
            let rate = report.probe_flipped_columns as f64 / report.probe_columns as f64;
            if rate > plan.prepare_max_flip_rate {
                return reject(
                    SwapPhase::Prepare,
                    format!(
                        "probe flip rate {rate:.3} exceeds gate {:.3} \
                         ({} of {} columns)",
                        plan.prepare_max_flip_rate,
                        report.probe_flipped_columns,
                        report.probe_columns
                    ),
                );
            }
        }
        self.tracer.event_with(
            "model.prepare",
            vec![
                ("candidate", version.to_string()),
                ("probe_columns", report.probe_columns.to_string()),
                ("probe_flipped", report.probe_flipped_columns.to_string()),
            ],
        );

        let cand_epoch = Arc::new(ModelEpoch::new(version, candidate));

        // ---- shadow: duplicated live traffic, no user-visible output ----
        if plan.shadow_min_requests > 0 {
            let st = Arc::new(ShadowState::new(
                Arc::clone(&cand_epoch),
                plan.shadow_sample_every,
            ));
            self.lifecycle.set_shadow(Some(Arc::clone(&st)));
            self.await_comparisons(&st, plan.shadow_min_requests, plan.phase_timeout);
            self.lifecycle.set_shadow(None);
            report.shadow_compared = st.compared.load(Ordering::SeqCst);
            report.shadow_flips = st.flips.load(Ordering::SeqCst);
            report.shadow_p99_us = st.shadow_p99();
            report.shadow_baseline_p99_us = st.primary_p99();
            self.tracer.event_with(
                "model.shadow_verdict",
                vec![
                    ("candidate", version.to_string()),
                    ("compared", report.shadow_compared.to_string()),
                    ("flips", report.shadow_flips.to_string()),
                ],
            );
            if report.shadow_compared < plan.shadow_min_requests {
                return reject(
                    SwapPhase::Shadow,
                    format!(
                        "shadow starved: {} of {} required comparisons before timeout",
                        report.shadow_compared, plan.shadow_min_requests
                    ),
                );
            }
            let rate = st.flip_rate();
            if rate > plan.shadow_max_flip_rate {
                return reject(
                    SwapPhase::Shadow,
                    format!(
                        "shadow label-flip rate {rate:.3} exceeds gate {:.3} \
                         ({} of {} requests)",
                        plan.shadow_max_flip_rate,
                        report.shadow_flips,
                        report.shadow_compared
                    ),
                );
            }
        }

        // ---- promote: atomic epoch bump between micro-batches ----
        // kglink-lint: allow(nondeterminism) — measures how long the epoch
        // bump itself takes for the swap report; no annotation reads it.
        let t_promote = Instant::now();
        let prior = self.lifecycle.install(Arc::clone(&cand_epoch));
        report.promote_us = t_promote.elapsed().as_micros() as u64;
        self.lifecycle.swaps.fetch_add(1, Ordering::SeqCst);
        self.tracer.incr("model.promote", 1);
        self.tracer.event_with(
            "model.promote",
            vec![
                ("from", prior.version.to_string()),
                ("to", version.to_string()),
                ("promote_us", report.promote_us.to_string()),
            ],
        );

        // ---- watch: divergence guard with automatic rollback ----
        if plan.watch_min_requests > 0 {
            let st = Arc::new(ShadowState::new(
                Arc::clone(&prior),
                plan.watch_sample_every,
            ));
            self.lifecycle.set_shadow(Some(Arc::clone(&st)));
            self.await_comparisons(&st, plan.watch_min_requests, plan.phase_timeout);
            self.lifecycle.set_shadow(None);
            report.watch_compared = st.compared.load(Ordering::SeqCst);
            report.watch_flips = st.flips.load(Ordering::SeqCst);
            let flip_rate = st.flip_rate();
            // During watch the *primary* is the freshly promoted candidate,
            // so its live annotate p99 is compared against the prior
            // epoch's p99 from the shadow window.
            let live_p99 = st.primary_p99();
            let baseline_p99 = report.shadow_baseline_p99_us;
            let mut trip: Option<String> = None;
            if report.watch_compared > 0 && flip_rate > plan.watch_max_flip_rate {
                trip = Some(format!(
                    "watch label-flip rate {flip_rate:.3} exceeds gate {:.3} \
                     ({} of {} requests)",
                    plan.watch_max_flip_rate, report.watch_flips, report.watch_compared
                ));
            } else if plan.watch_max_p99_inflation > 0.0
                && baseline_p99 > 0
                && live_p99 as f64 > baseline_p99 as f64 * plan.watch_max_p99_inflation
            {
                trip = Some(format!(
                    "p99 inflation: live {live_p99}us exceeds {:.1}x \
                     pre-swap baseline {baseline_p99}us",
                    plan.watch_max_p99_inflation
                ));
            }
            if let Some(reason) = trip {
                self.lifecycle.install(prior);
                self.lifecycle.rollbacks.fetch_add(1, Ordering::SeqCst);
                let left = self
                    .lifecycle
                    .rollback_budget_left
                    .fetch_sub(1, Ordering::SeqCst)
                    .saturating_sub(1);
                if left == 0 {
                    self.lifecycle.exhausted.store(true, Ordering::SeqCst);
                }
                self.tracer.incr("model.rollback", 1);
                self.tracer.event_with(
                    "model.rollback",
                    vec![
                        ("from", version.to_string()),
                        ("to", report.from_version.to_string()),
                        ("reason", reason.clone()),
                        ("budget_left", left.to_string()),
                    ],
                );
                return Err(SwapError::RolledBack { reason });
            }
        }
        Ok(report)
    }

    /// Annotate one probe table, trapping panics so a poisoned candidate
    /// cannot take the swap thread (or the service) down with it.
    fn probe_labels(&self, model: &KgLink, table: &Table) -> Result<Vec<LabelId>, ()> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let resources = kglink_core::pipeline::Resources::builder()
                .graph(&self.graph)
                .backend(self.probe_backend.as_ref())
                .tokenizer(&self.tokenizer)
                .tracer(&self.tracer)
                .build()
                .map_err(|_| ())?;
            Ok(model.annotate_request(&resources, req(table)).labels)
        }));
        match outcome {
            Ok(result) => result,
            Err(_panic) => Err(()),
        }
    }

    /// Poll until the comparison window has seen `min` requests or the
    /// timeout elapses. Live traffic drives the counters; this thread only
    /// sleeps and reads.
    fn await_comparisons(&self, st: &ShadowState, min: u64, timeout: Duration) {
        // kglink-lint: allow(nondeterminism) — real-time phase timeout for
        // the blocking swap driver; annotation outputs never read it.
        let t0 = Instant::now();
        while st.compared.load(Ordering::SeqCst) < min && t0.elapsed() < timeout {
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// Drain and stop: close the queue, fail still-queued requests with
    /// [`ServiceError::Closed`], and join the supervisor (which in turn
    /// joins every worker). Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        for leftover in self.queue.close() {
            let _ = leftover.reply.send(Err(ServiceError::Closed));
        }
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for AnnotationService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Clears the swap-in-progress latch and any leftover comparison window on
/// every exit path out of [`AnnotationService::swap_model`] — success,
/// rejection, rollback, or a panic unwinding through the swap driver.
struct SwapGuard<'a> {
    lifecycle: &'a Lifecycle,
}

impl Drop for SwapGuard<'_> {
    fn drop(&mut self) {
        self.lifecycle.set_shadow(None);
        self.lifecycle
            .swap_in_progress
            .store(false, Ordering::SeqCst);
    }
}
