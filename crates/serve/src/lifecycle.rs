//! Model lifecycle: versioned epochs, shadow evaluation, swap state.
//!
//! The serving layer never holds a bare model: it holds the current
//! [`ModelEpoch`] behind a mutex-guarded `Arc` slot (the std-only stand-in
//! for an `ArcSwap`). Workers clone the slot **once per micro-batch**, so
//! a promote is an atomic pointer bump between batches: every request is
//! served end-to-end by exactly one epoch, and nobody ever observes a
//! torn model. In-place mutation of a live epoch is a lint error
//! (`model-publish-atomicity`); the only way weights change is a whole
//! new epoch through [`AnnotationService::swap_model`].
//!
//! A swap walks a four-phase state machine (DESIGN.md §15):
//!
//! ```text
//! prepare ──► shadow ──► promote ──► watch ──► committed
//!    │           │                     │
//!    └ reject    └ reject              └ automatic rollback
//!      (service untouched)               (prior epoch reinstalled)
//! ```
//!
//! - **prepare**: the candidate is self-checked on held-out probe tables
//!   against the active epoch — wrong label space, panics, or a probe
//!   flip rate above the gate reject it before it sees any traffic.
//! - **shadow**: a sampled fraction of live traffic is *duplicated*
//!   against the candidate inside the worker (no user-visible output);
//!   label flips and per-version latency feed the verdict.
//! - **promote**: the epoch slot is swapped between micro-batches.
//! - **watch**: the divergence guard keeps sampling live traffic against
//!   the *prior* epoch; a label-flip rate or p99 inflation past the gate
//!   triggers an automatic rollback (`model.rollback` tracer event),
//!   bounded by a rollback budget that fails closed like the PR-4
//!   restart budget: once spent, further swaps are refused outright and
//!   the service keeps serving the last-known-good epoch.
//!
//! [`AnnotationService::swap_model`]: crate::AnnotationService::swap_model

use kglink_core::KgLink;
use kglink_obs::Histogram;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// One immutable generation of the serving model. Workers treat the whole
/// epoch as read-only; retiring an epoch is dropping the last `Arc`.
pub struct ModelEpoch {
    /// Registry-assigned (or caller-assigned) version id.
    pub version: u64,
    /// The trained pipeline this epoch serves with.
    pub model: Arc<KgLink>,
}

impl ModelEpoch {
    pub fn new(version: u64, model: Arc<KgLink>) -> Self {
        ModelEpoch { version, model }
    }
}

/// Live comparison window: while installed, workers duplicate a sampled
/// fraction of traffic against `epoch` (the candidate during shadow, the
/// prior epoch during watch) and record divergence + latency here.
pub(crate) struct ShadowState {
    /// The epoch requests are duplicated against.
    pub epoch: Arc<ModelEpoch>,
    /// Duplicate every Nth request (by request id); `1` = every request.
    pub sample_every: u64,
    /// Requests compared so far.
    pub compared: AtomicU64,
    /// Requests whose label vector differed (or whose duplicate panicked).
    pub flips: AtomicU64,
    /// Columns that flipped, across all compared requests.
    pub flipped_columns: AtomicU64,
    /// Columns compared in total.
    pub compared_columns: AtomicU64,
    /// Annotate-only latency of the duplicated (shadow) run.
    pub shadow_latency: Mutex<Histogram>,
    /// Annotate-only latency of the primary run over the same window —
    /// the baseline the watch phase's p99-inflation guard compares against.
    pub primary_latency: Mutex<Histogram>,
}

impl ShadowState {
    pub(crate) fn new(epoch: Arc<ModelEpoch>, sample_every: u64) -> Self {
        ShadowState {
            epoch,
            sample_every: sample_every.max(1),
            compared: AtomicU64::new(0),
            flips: AtomicU64::new(0),
            flipped_columns: AtomicU64::new(0),
            compared_columns: AtomicU64::new(0),
            shadow_latency: Mutex::new(Histogram::new()),
            primary_latency: Mutex::new(Histogram::new()),
        }
    }

    pub(crate) fn flip_rate(&self) -> f64 {
        let compared = self.compared.load(Ordering::SeqCst);
        if compared == 0 {
            return 0.0;
        }
        self.flips.load(Ordering::SeqCst) as f64 / compared as f64
    }

    pub(crate) fn shadow_p99(&self) -> u64 {
        self.shadow_latency
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .p99()
    }

    pub(crate) fn primary_p99(&self) -> u64 {
        self.primary_latency
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .p99()
    }
}

/// Per-version serving statistics, keyed by epoch version.
#[derive(Clone)]
pub struct VersionStats {
    /// Requests completed while this version was the serving epoch.
    pub served: u64,
    /// End-to-end latency histogram of those requests.
    pub latency: Histogram,
}

/// Shared lifecycle state: the epoch slot, the optional comparison window,
/// and the swap/rollback accounting `metrics()` publishes.
pub(crate) struct Lifecycle {
    epoch: Mutex<Arc<ModelEpoch>>,
    shadow: Mutex<Option<Arc<ShadowState>>>,
    pub swaps: AtomicU64,
    pub rollbacks: AtomicU64,
    /// Rollbacks remaining before the lifecycle fails closed.
    pub rollback_budget_left: AtomicUsize,
    /// Latched once the budget is spent: no further swaps, ever.
    pub exhausted: AtomicBool,
    /// One swap at a time; a second concurrent `swap_model` is refused.
    pub swap_in_progress: AtomicBool,
    per_version: Mutex<BTreeMap<u64, VersionStats>>,
}

impl Lifecycle {
    pub(crate) fn new(initial: ModelEpoch, rollback_budget: usize) -> Self {
        Lifecycle {
            epoch: Mutex::new(Arc::new(initial)),
            shadow: Mutex::new(None),
            swaps: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            rollback_budget_left: AtomicUsize::new(rollback_budget),
            exhausted: AtomicBool::new(false),
            swap_in_progress: AtomicBool::new(false),
            per_version: Mutex::new(BTreeMap::new()),
        }
    }

    /// The serving epoch, cloned out of the slot. Workers call this once
    /// per micro-batch; the swap path calls [`install`](Self::install).
    pub(crate) fn current(&self) -> Arc<ModelEpoch> {
        Arc::clone(&self.epoch.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically replace the serving epoch; returns the one displaced.
    pub(crate) fn install(&self, next: Arc<ModelEpoch>) -> Arc<ModelEpoch> {
        let mut slot = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *slot, next)
    }

    /// The active comparison window, if a swap is in shadow/watch phase.
    pub(crate) fn shadow_snapshot(&self) -> Option<Arc<ShadowState>> {
        self.shadow
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    pub(crate) fn set_shadow(&self, state: Option<Arc<ShadowState>>) {
        *self.shadow.lock().unwrap_or_else(PoisonError::into_inner) = state;
    }

    /// Record one completion against the epoch that served it.
    pub(crate) fn record_served(&self, version: u64, total_us: u64) {
        let mut map = self
            .per_version
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let entry = map.entry(version).or_insert_with(|| VersionStats {
            served: 0,
            latency: Histogram::new(),
        });
        entry.served += 1;
        entry.latency.record(total_us);
    }

    /// Snapshot of per-version serving stats.
    pub(crate) fn version_stats(&self) -> BTreeMap<u64, VersionStats> {
        self.per_version
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// Tuning for one [`swap_model`](crate::AnnotationService::swap_model)
/// run. Defaults are deliberately conservative; experiments loosen gates
/// they intend to trip.
#[derive(Clone)]
pub struct SwapPlan {
    /// Held-out tables the candidate must annotate sanely (against the
    /// active epoch) before it may shadow live traffic. Empty skips the
    /// probe comparison (the label-space check still runs).
    pub probe_tables: Vec<kglink_table::Table>,
    /// Max fraction of probe *columns* allowed to flip at prepare.
    pub prepare_max_flip_rate: f64,
    /// Duplicate every Nth live request during shadow (1 = all).
    pub shadow_sample_every: u64,
    /// Shadow completions required before the verdict; `0` skips the
    /// shadow phase entirely (promote directly after prepare).
    pub shadow_min_requests: u64,
    /// Max fraction of shadowed requests whose labels may differ.
    pub shadow_max_flip_rate: f64,
    /// Duplicate every Nth live request during watch (1 = all).
    pub watch_sample_every: u64,
    /// Watch comparisons required before the guard clears; `0` skips the
    /// watch phase (promote is final immediately).
    pub watch_min_requests: u64,
    /// Max fraction of watched requests whose labels may differ from the
    /// prior epoch before the divergence guard rolls back.
    pub watch_max_flip_rate: f64,
    /// Rollback when the candidate's live annotate p99 exceeds the prior
    /// epoch's shadow-window p99 by this factor. `0.0` disables the
    /// latency guard.
    pub watch_max_p99_inflation: f64,
    /// Max real time to wait for shadow/watch traffic before the phase is
    /// decided on whatever it has seen (a starved shadow rejects).
    pub phase_timeout: Duration,
}

impl Default for SwapPlan {
    fn default() -> Self {
        SwapPlan {
            probe_tables: Vec::new(),
            prepare_max_flip_rate: 0.10,
            shadow_sample_every: 2,
            shadow_min_requests: 16,
            shadow_max_flip_rate: 0.10,
            watch_sample_every: 2,
            watch_min_requests: 16,
            watch_max_flip_rate: 0.10,
            watch_max_p99_inflation: 0.0,
            phase_timeout: Duration::from_secs(10),
        }
    }
}

/// Which phase of the state machine produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapPhase {
    Prepare,
    Shadow,
    Promote,
    Watch,
}

impl fmt::Display for SwapPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapPhase::Prepare => write!(f, "prepare"),
            SwapPhase::Shadow => write!(f, "shadow"),
            SwapPhase::Promote => write!(f, "promote"),
            SwapPhase::Watch => write!(f, "watch"),
        }
    }
}

/// Typed outcome of a failed or refused swap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// The candidate was refused before promotion; the serving epoch was
    /// never touched.
    Rejected { phase: SwapPhase, reason: String },
    /// The candidate was promoted, tripped the divergence guard during
    /// watch, and the prior epoch was reinstalled.
    RolledBack { reason: String },
    /// The rollback budget is spent: the lifecycle fails closed and no
    /// further swaps are accepted (the current epoch keeps serving).
    RollbackBudgetExhausted { budget: usize },
    /// Another swap is mid-flight; one at a time.
    SwapInProgress,
    /// The service itself is failed or shut down.
    ServiceUnavailable,
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::Rejected { phase, reason } => {
                write!(f, "candidate rejected at {phase}: {reason}")
            }
            SwapError::RolledBack { reason } => {
                write!(f, "promoted then rolled back: {reason}")
            }
            SwapError::RollbackBudgetExhausted { budget } => write!(
                f,
                "rollback budget ({budget}) exhausted: model lifecycle failed closed"
            ),
            SwapError::SwapInProgress => write!(f, "another swap is in progress"),
            SwapError::ServiceUnavailable => write!(f, "service is failed or shut down"),
        }
    }
}

impl std::error::Error for SwapError {}

/// Receipt for a committed swap.
#[derive(Debug, Clone, Default)]
pub struct SwapReport {
    pub from_version: u64,
    pub to_version: u64,
    /// Probe columns compared / flipped at prepare.
    pub probe_columns: u64,
    pub probe_flipped_columns: u64,
    /// Requests compared / flipped during shadow.
    pub shadow_compared: u64,
    pub shadow_flips: u64,
    /// Candidate vs primary annotate p99 over the shadow window, µs.
    pub shadow_p99_us: u64,
    pub shadow_baseline_p99_us: u64,
    /// Requests compared / flipped during watch.
    pub watch_compared: u64,
    pub watch_flips: u64,
    /// Real microseconds the epoch bump itself took (promote phase).
    pub promote_us: u64,
}
