//! kglink-serve: concurrent in-process annotation service for KGLink.
//!
//! This crate turns a trained [`KgLink`](kglink_core::KgLink) annotator
//! into a service: callers submit [`Table`](kglink_table::Table)s and
//! redeem [`Ticket`]s, while a sharded pool of worker threads runs the
//! full KG-retrieval + PLM pipeline behind a bounded admission queue.
//! Everything is std-only (`std::thread`, `mpsc`, `Mutex`/`Condvar`) and
//! deterministic where it matters:
//!
//! * **Sharded worker pool** — N threads drain micro-batches of up to
//!   `max_batch` tables per wakeup from one bounded MPMC queue
//!   ([`queue::BoundedQueue`]).
//! * **Retrieval cache** — a shared
//!   [`CachingBackend`](kglink_search::CachingBackend) (sharded LRU keyed
//!   by normalized mention text) sits in front of the caller's backend
//!   stack, so repeated mentions across tables and workers hit memory
//!   instead of BM25.
//! * **Backpressure** — [`AdmissionPolicy`] picks fail-fast
//!   (`Reject` → [`ServiceError::Overloaded`]), producer throttling
//!   (`Block`), or freshness-first eviction (`ShedOldest` →
//!   [`ServiceError::Shed`]).
//! * **Deadline propagation** — a request's [`Deadline`] budget covers
//!   queue wait plus retrieval; requests that expire while queued complete
//!   through the pipeline's graceful no-linkage degradation path with the
//!   correct output arity.
//! * **Metrics** — [`ServiceMetrics`] merges per-worker retrieval
//!   snapshots ([`MetricsSnapshot::merge`](kglink_search::MetricsSnapshot))
//!   with queue, latency, cache, and simulated busy-time accounting.
//!
//! * **Overload protection** — an optional
//!   [`OverloadConfig`](service::OverloadConfig) wires in an AIMD
//!   admission controller ([`admission::AimdLimit`]) that resizes the
//!   queue's dynamic limit from queue-sojourn congestion signals, and a
//!   hysteretic [`brownout::BrownoutController`] that walks requests down
//!   the three-rung degradation ladder (full retrieval → cache-only →
//!   no linkage) instead of timing everything out.
//!
//! Annotation results are bit-identical across worker counts: each table's
//! annotation is a pure function of (model, resources, table), and the
//! cache only ever replays identical retrieval outcomes.

#![deny(deprecated)]

pub mod admission;
pub mod brownout;
pub mod error;
pub mod lifecycle;
pub mod metered;
pub mod metrics;
pub mod queue;
pub mod service;
mod worker;

pub use admission::{AimdConfig, AimdLimit, AimdVerdict};
pub use brownout::{BrownoutConfig, BrownoutController, CacheOnlyBackend};
pub use error::ServiceError;
pub use lifecycle::{ModelEpoch, SwapError, SwapPhase, SwapPlan, SwapReport, VersionStats};
pub use metered::{ExpiredBackend, MeteredBackend};
pub use metrics::ServiceMetrics;
pub use queue::{AdmissionPolicy, BoundedQueue, PushError};
pub use service::{
    Annotation, AnnotationService, OverloadConfig, ServiceConfig, SharedBackend, Ticket,
};

// Re-exported for callers wiring up a service without importing the
// search crate directly.
pub use kglink_core::DegradationRung;
pub use kglink_search::{CacheConfig, CacheStats, Deadline};
