//! Property tests for the overload controllers: the AIMD admission limit
//! stays inside its clamps and cuts multiplicatively on congestion, and
//! the brownout ladder is monotone — rising load never selects a *less*
//! degraded rung until the hysteresis window has actually elapsed.

use kglink_core::DegradationRung;
use kglink_serve::{AimdConfig, AimdLimit, AimdVerdict, BrownoutConfig, BrownoutController};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // For any observation sequence and any sane config, the limit never
    // leaves [min_limit, max_limit].
    #[test]
    fn aimd_limit_stays_within_clamps(
        sojourns in proptest::collection::vec(0u64..1_000_000, 1..200),
        min_limit in 1usize..8,
        extra in 0usize..64,
        increase in 1usize..8,
        window in 1usize..12,
        target in 1u64..100_000,
    ) {
        let max_limit = min_limit + extra;
        let mut aimd = AimdLimit::new(AimdConfig {
            min_limit,
            max_limit,
            increase,
            decrease_factor: 0.5,
            target_sojourn_us: target,
            window,
        });
        for s in sojourns {
            aimd.observe(s);
            prop_assert!(aimd.limit() >= min_limit && aimd.limit() <= max_limit,
                "limit {} escaped [{}, {}]", aimd.limit(), min_limit, max_limit);
        }
    }

    // Every congested window cuts the limit by the decrease factor (down
    // to the clamp); every healthy window raises it by at most `increase`.
    #[test]
    fn aimd_congestion_halves_and_health_probes_additively(
        sojourns in proptest::collection::vec(0u64..1_000_000, 1..200),
        window in 1usize..12,
    ) {
        let config = AimdConfig {
            min_limit: 2,
            max_limit: 64,
            increase: 2,
            decrease_factor: 0.5,
            target_sojourn_us: 20_000,
            window,
        };
        let mut aimd = AimdLimit::new(config.clone());
        for s in sojourns {
            let before = aimd.limit();
            match aimd.observe(s) {
                None => prop_assert_eq!(aimd.limit(), before, "limit moved mid-window"),
                Some(AimdVerdict::Congested) => {
                    let expected = ((before as f64 * config.decrease_factor) as usize)
                        .max(config.min_limit);
                    prop_assert_eq!(aimd.limit(), expected);
                }
                Some(AimdVerdict::Healthy) => {
                    let expected = (before + config.increase).min(config.max_limit);
                    prop_assert_eq!(aimd.limit(), expected);
                }
            }
        }
    }

    // Ladder monotonicity: the served rung never drops below what the
    // current observation demands, and it only ever steps *down* after
    // `hysteresis` consecutive healthy observations — never sooner.
    #[test]
    fn brownout_ladder_is_monotone_under_load(
        sojourns in proptest::collection::vec(0u64..300_000, 1..300),
        hysteresis in 1u32..10,
    ) {
        let config = BrownoutConfig {
            enter_cache_only_us: 40_000,
            enter_no_linkage_us: 120_000,
            exit_us: 10_000,
            hysteresis,
        };
        let mut b = BrownoutController::new(config.clone());
        let mut previous = b.rung();
        let mut healthy_streak = 0u32;
        for s in sojourns {
            let demanded = if s >= config.enter_no_linkage_us {
                DegradationRung::NoLinkage
            } else if s >= config.enter_cache_only_us {
                DegradationRung::CacheOnly
            } else {
                DegradationRung::Full
            };
            let rung = b.observe(s);
            // Never serve better than the signal demands.
            prop_assert!(rung >= demanded,
                "sojourn {} demanded {:?} but controller served {:?}", s, demanded, rung);
            // De-escalation is one rung at a time and only after the
            // streak: without `hysteresis` consecutive healthy
            // observations the rung must not improve.
            if rung < previous {
                prop_assert_eq!(rung.level(), previous.level() - 1, "skipped a rung down");
                prop_assert!(healthy_streak + 1 >= hysteresis,
                    "stepped down after only {} healthy observations", healthy_streak + 1);
            }
            if s < config.exit_us && demanded <= previous {
                healthy_streak += 1;
            } else {
                healthy_streak = 0;
            }
            if rung < previous {
                healthy_streak = 0;
            }
            previous = rung;
        }
    }
}
