//! The shared evaluation environment and model trait.

use kglink_core::pipeline::Resources;
use kglink_kg::EntityId;
use kglink_table::{Dataset, EvalSummary, LabelId, LabelVocab, Split, Table};
use std::collections::HashMap;

/// Everything a baseline may consume: KG + search + tokenizer (via
/// [`Resources`]), the label vocabulary, and the dataset-label → KG-type
/// mapping (used by MTab; the paper translates VizNet labels to WikiData
/// entities for it).
pub struct BenchEnv<'a> {
    pub resources: &'a Resources<'a>,
    pub labels: &'a LabelVocab,
    pub label_to_type: &'a HashMap<LabelId, EntityId>,
}

/// A column type annotation model, as the experiment harness sees it.
pub trait CtaModel {
    /// Display name (used in result tables).
    fn name(&self) -> &'static str;

    /// Train on the dataset's train split (validation split available for
    /// early stopping). No-op for learning-free methods.
    fn fit(&mut self, env: &BenchEnv<'_>, dataset: &Dataset);

    /// Predict one label per column of a raw table.
    fn predict_table(&self, env: &BenchEnv<'_>, table: &Table) -> Vec<LabelId>;

    /// Evaluate over a dataset split.
    fn evaluate(&self, env: &BenchEnv<'_>, dataset: &Dataset, split: Split) -> EvalSummary {
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for t in dataset.tables_in(split) {
            preds.extend(self.predict_table(env, t));
            truths.extend(t.labels.iter().copied());
        }
        EvalSummary::compute(&preds, &truths)
    }
}

/// Majority label of a dataset's training columns — the shared fallback for
/// methods that cannot produce a prediction (e.g. MTab on numeric columns).
pub fn train_majority_label(dataset: &Dataset) -> LabelId {
    let hist = dataset.label_histogram(Split::Train);
    hist.into_iter()
        .max_by_key(|&(l, c)| (c, std::cmp::Reverse(l)))
        .map(|(l, _)| l)
        .unwrap_or(LabelId(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_table::{CellValue, SplitSpec, Table, TableId};

    #[test]
    fn majority_label_is_most_frequent_training_label() {
        let mut vocab = LabelVocab::new();
        let a = vocab.intern("a");
        let b = vocab.intern("b");
        let mut tables = Vec::new();
        for i in 0..10u32 {
            let l = if i < 7 { a } else { b };
            tables.push(Table::new(
                TableId(i),
                vec![],
                vec![vec![CellValue::Text("x".into())]],
                vec![l],
            ));
        }
        let mut ds = Dataset::new("toy", tables, vocab);
        ds.assign_splits(SplitSpec::default(), 3);
        assert_eq!(train_majority_label(&ds), a);
    }
}
