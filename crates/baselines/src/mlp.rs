//! A small two-layer MLP classifier shared by Sherlock and HNN.

use kglink_nn::layers::linear::Linear;
use kglink_nn::layers::param::{HasParams, Param};
use kglink_nn::kernels::{gelu, gelu_grad};
use kglink_nn::{cross_entropy, AdamW, AdamWConfig, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// `logits = W2 · GELU(W1 · x + b1) + b2`.
pub struct Mlp {
    l1: Linear,
    l2: Linear,
}

impl HasParams for Mlp {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.l1.visit_params(f);
        self.l2.visit_params(f);
    }
}

/// MLP training settings.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            epochs: 40,
            batch_size: 32,
            lr: 3e-3,
            seed: 9,
        }
    }
}

impl Mlp {
    /// Build an MLP with the given layer widths.
    pub fn new(d_in: usize, d_hidden: usize, n_out: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp {
            l1: Linear::new(d_in, d_hidden, &mut rng),
            l2: Linear::new(d_hidden, n_out, &mut rng),
        }
    }

    /// Class logits for one feature vector.
    pub fn logits(&self, x: &[f32]) -> Vec<f32> {
        let x = Tensor::from_vec(1, x.len(), x.to_vec());
        let mut h = self.l1.infer(&x);
        for v in h.data_mut() {
            *v = gelu(*v);
        }
        self.l2.infer(&h).data().to_vec()
    }

    /// Predicted class for one feature vector.
    pub fn predict(&self, x: &[f32]) -> usize {
        self.logits(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Train with cross-entropy on `(features, class)` pairs.
    pub fn fit(&mut self, xs: &[Vec<f32>], ys: &[usize], config: &MlpConfig) {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut opt = AdamW::new(
            AdamWConfig {
                lr: config.lr,
                ..Default::default()
            },
            None,
        );
        let mut order: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size.max(1)) {
                for &i in chunk {
                    let x = Tensor::from_vec(1, xs[i].len(), xs[i].clone());
                    let (h_pre, c1) = self.l1.forward(&x);
                    let mut h = h_pre.clone();
                    for v in h.data_mut() {
                        *v = gelu(*v);
                    }
                    let (logits, c2) = self.l2.forward(&h);
                    let (_, dlogits) = cross_entropy(logits.row(0), ys[i]);
                    let dl = Tensor::from_vec(1, dlogits.len(), dlogits);
                    let mut dh = self.l2.backward(&c2, &dl);
                    for (g, &pre) in dh.data_mut().iter_mut().zip(h_pre.data()) {
                        *g *= gelu_grad(pre);
                    }
                    self.l1.backward(&c1, &dh);
                }
                self.scale_grads(1.0 / chunk.len() as f32);
                opt.step(self);
            }
        }
    }
}

/// Z-score normalizer fitted on training features (Sherlock normalizes its
/// hand-crafted statistics before the network).
#[derive(Debug, Clone, Default)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fit on rows of features.
    pub fn fit(xs: &[Vec<f32>]) -> Self {
        let d = xs.first().map_or(0, Vec::len);
        let n = xs.len().max(1) as f32;
        let mut mean = vec![0.0f32; d];
        for x in xs {
            for (m, &v) in mean.iter_mut().zip(x) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0f32; d];
        for x in xs {
            for ((s, &v), &m) in std.iter_mut().zip(x).zip(&mean) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-6);
        }
        Standardizer { mean, std }
    }

    /// Normalize one row.
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        x.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_learns_xor() {
        let xs: Vec<Vec<f32>> = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0usize, 1, 1, 0];
        let mut mlp = Mlp::new(2, 16, 2, 3);
        mlp.fit(
            &xs,
            &ys,
            &MlpConfig {
                epochs: 400,
                lr: 1e-2,
                ..Default::default()
            },
        );
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(mlp.predict(x), y, "XOR at {x:?}");
        }
    }

    #[test]
    fn standardizer_zero_means_unit_std() {
        let xs = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let s = Standardizer::fit(&xs);
        let normed: Vec<Vec<f32>> = xs.iter().map(|x| s.apply(x)).collect();
        for d in 0..2 {
            let mean: f32 = normed.iter().map(|x| x[d]).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn empty_fit_is_a_noop() {
        let mut mlp = Mlp::new(2, 4, 2, 1);
        mlp.fit(&[], &[], &MlpConfig::default());
        assert!(mlp.predict(&[0.0, 0.0]) < 2);
    }
}
