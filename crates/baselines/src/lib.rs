//! Baseline CTA methods for the paper's comparisons (Table I / IV, Fig. 7).
//!
//! Each module is an *algorithmic skeleton* of the corresponding published
//! system: it keeps the defining design decision while running on the same
//! substrates (synthetic KG, BM25 search, MiniLM encoder) as KGLink, so that
//! Table I measures method differences rather than checkpoint differences.
//!
//! | Module        | System                 | Defining design decision |
//! |---------------|------------------------|---------------------------|
//! | [`mtab`]      | MTab (SemTab winner)   | pure KG voting over linked entity types; no learning |
//! | [`sherlock`]  | Sherlock (KDD'19)      | hand-crafted per-column statistics + MLP; single-column |
//! | [`tabert`]    | TaBERT (ACL'20)        | PLM over row-major table linearization, span pooling |
//! | [`doduo`]     | Doduo (SIGMOD'22)      | PLM over column-major serialization with per-column `[CLS]` |
//! | [`hnn`]       | HNN (IJCAI'19)         | first-cell KG `type` attribute + shallow network |
//! | [`reca`]      | RECA (VLDB'23)         | single-column PLM + most-similar *inter-table* column |
//! | [`sudowoodo`] | Sudowoodo (ICDE'23)    | contrastive self-supervised column encoder + light head |
//!
//! All models implement [`CtaModel`], the harness-facing trait.

#![deny(deprecated)]

pub mod doduo;
pub mod env;
pub mod hnn;
pub mod mlp;
pub mod mtab;
pub mod plm;
pub mod reca;
pub mod sherlock;
pub mod sudowoodo;
pub mod tabert;

pub use env::{BenchEnv, CtaModel};
