//! Doduo-like baseline: multi-column PLM serialization, classification only.
//!
//! Doduo (Suhara et al., SIGMOD'22) serializes the whole table column by
//! column with a `[CLS]` per column (the paper's Eq. 11 — KGLink adopts the
//! same scheme) and fine-tunes BERT with plain cross-entropy. It is the
//! closest baseline to KGLink: same serialization, same PLM, but no KG
//! information and no representation-generation sub-task.

use crate::env::{BenchEnv, CtaModel};
use crate::plm::{encode_cell, Anchor, ColumnSeq, PlmConfig, PlmCore};
use kglink_nn::{special, Tokenizer};
use kglink_table::{Dataset, LabelId, Split, Table};

/// Serialization limits shared with KGLink's defaults for fairness.
const TOKENS_PER_COLUMN: usize = 18;
const MAX_COLUMNS: usize = 8;
const MAX_ROWS: usize = 12;

/// The Doduo-like annotator.
pub struct Doduo {
    core: Option<PlmCore>,
    pub config: PlmConfig,
}

impl Doduo {
    pub fn new(config: PlmConfig) -> Self {
        Doduo { core: None, config }
    }

    /// Eq. 11 serialization of one ≤MAX_COLUMNS chunk.
    fn serialize_chunk(table: &Table, tokenizer: &Tokenizer) -> ColumnSeq {
        let mut ids = Vec::new();
        let mut anchors = Vec::with_capacity(table.n_cols());
        for c in 0..table.n_cols() {
            anchors.push(Anchor::Pos(ids.len()));
            ids.push(special::CLS);
            let budget = ids.len() + TOKENS_PER_COLUMN;
            'cells: for cell in table.column(c).iter().take(MAX_ROWS) {
                for t in encode_cell(cell, tokenizer) {
                    if ids.len() >= budget {
                        break 'cells;
                    }
                    ids.push(t);
                }
            }
        }
        ids.push(special::SEP);
        ColumnSeq {
            ids,
            anchors,
            labels: table.labels.clone(),
        }
    }

    /// Serialize a table (splitting wide tables like KGLink does).
    pub fn serialize(table: &Table, tokenizer: &Tokenizer) -> Vec<ColumnSeq> {
        table
            .split_columns(MAX_COLUMNS)
            .iter()
            .map(|chunk| Self::serialize_chunk(chunk, tokenizer))
            .collect()
    }

    fn sequences(dataset: &Dataset, split: Split, tokenizer: &Tokenizer) -> Vec<ColumnSeq> {
        dataset
            .tables_in(split)
            .flat_map(|t| Self::serialize(t, tokenizer))
            .collect()
    }
}

impl CtaModel for Doduo {
    fn name(&self) -> &'static str {
        "Doduo"
    }

    fn fit(&mut self, env: &BenchEnv<'_>, dataset: &Dataset) {
        let tok = env.resources.tokenizer;
        let train = Self::sequences(dataset, Split::Train, tok);
        let val = Self::sequences(dataset, Split::Validation, tok);
        let enc_cfg = kglink_nn::EncoderConfig::mini(tok.vocab.len());
        let mut core = PlmCore::new(
            enc_cfg,
            env.labels.len(),
            self.config.seed,
            env.resources.pretrained_encoder,
        );
        core.fit(&train, &val, &self.config);
        self.core = Some(core);
    }

    fn predict_table(&self, env: &BenchEnv<'_>, table: &Table) -> Vec<LabelId> {
        // kglink-lint: allow(panic-in-lib) — Baseline trait contract: the
        // bench harness always fits before predicting; a None here is a
        // harness bug, not a data condition to degrade on.
        let core = self.core.as_ref().expect("fit before predict");
        Self::serialize(table, env.resources.tokenizer)
            .iter()
            .flat_map(|seq| core.predict(seq))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_core::pipeline::{build_vocab, Resources};
    use kglink_datagen::{pretrain_corpus, semtab_like, SemTabConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_search::EntitySearcher;

    #[test]
    fn doduo_learns_semtab_like_data() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(95));
        let bench = semtab_like(&world, &SemTabConfig::tiny(95));
        let searcher = EntitySearcher::build(&world.graph);
        let corpus = pretrain_corpus(&world, 3);
        let vocab = build_vocab(corpus.iter().map(String::as_str), &[&bench.dataset], 6000);
        let tokenizer = kglink_nn::Tokenizer::new(vocab);
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&searcher)
            .tokenizer(&tokenizer)
            .build()
            .unwrap();
        let env = BenchEnv {
            resources: &resources,
            labels: &bench.dataset.labels,
            label_to_type: &bench.label_to_type,
        };
        let mut doduo = Doduo::new(PlmConfig {
            epochs: 8,
            patience: 0,
            ..Default::default()
        });
        doduo.fit(&env, &bench.dataset);
        let summary = doduo.evaluate(&env, &bench.dataset, Split::Test);
        assert!(
            summary.accuracy > 1.5 / bench.dataset.labels.len() as f64,
            "clearly better than random: {}",
            summary.accuracy
        );
    }

    #[test]
    fn serialization_has_one_cls_per_column() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(96));
        let bench = semtab_like(&world, &SemTabConfig::tiny(96));
        let vocab = build_vocab([], &[&bench.dataset], 4000);
        let tokenizer = kglink_nn::Tokenizer::new(vocab);
        let t = &bench.dataset.tables[0];
        let seqs = Doduo::serialize(t, &tokenizer);
        let total_anchors: usize = seqs.iter().map(|s| s.anchors.len()).sum();
        assert_eq!(total_anchors, t.n_cols());
        for s in &seqs {
            let cls_count = s.ids.iter().filter(|&&t| t == special::CLS).count();
            assert_eq!(cls_count, s.anchors.len());
        }
    }
}
