//! Shared PLM fine-tuning core for the deep-learning baselines.
//!
//! TaBERT, Doduo, and RECA all fine-tune the same encoder (BERT in the
//! paper, the MiniLM here); they differ only in how tables become token
//! sequences and how a column representation is pooled. This module owns
//! the shared encoder + classifier + training loop; each baseline supplies
//! sequences.

use kglink_nn::layers::linear::Linear;
use kglink_nn::layers::param::{HasParams, Param};
use kglink_nn::serialize::{load_params, save_params};
use kglink_nn::{cross_entropy, AdamW, AdamWConfig, Encoder, EncoderConfig, LinearDecay, Tensor};
use kglink_table::{EvalSummary, LabelId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Where a column's representation comes from in a sequence.
#[derive(Debug, Clone)]
pub enum Anchor {
    /// A single position (a `[CLS]` token).
    Pos(usize),
    /// The mean of several positions (span pooling, TaBERT-style).
    Mean(Vec<usize>),
}

/// One serialized training/evaluation sequence with its column anchors.
#[derive(Debug, Clone)]
pub struct ColumnSeq {
    pub ids: Vec<u32>,
    pub anchors: Vec<Anchor>,
    pub labels: Vec<LabelId>,
}

/// Fine-tuning hyper-parameters for the baseline PLMs (kept aligned with
/// KGLink's own training so comparisons are fair — the paper uses the same
/// experimental settings for TaBERT and Doduo as for KGLink).
#[derive(Debug, Clone)]
pub struct PlmConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub patience: usize,
    pub optimizer: AdamWConfig,
    /// Train-time dropout on encoder outputs — kept identical to KGLink's
    /// setting on each dataset ("The experimental settings for TaBERT and
    /// Doduo were the same as KGLink").
    pub dropout: f32,
    pub seed: u64,
}

impl Default for PlmConfig {
    fn default() -> Self {
        PlmConfig {
            epochs: 6,
            batch_size: 16,
            patience: 2,
            optimizer: AdamWConfig {
                lr: 4e-4,
                ..Default::default()
            },
            dropout: 0.1,
            seed: 77,
        }
    }
}

/// Encoder + linear classifier.
pub struct PlmCore {
    pub encoder: Encoder,
    pub classifier: Linear,
}

impl HasParams for PlmCore {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.encoder.visit_params(f);
        self.classifier.visit_params(f);
    }
}

impl PlmCore {
    /// Build, optionally warm-starting the encoder from pre-trained weights.
    pub fn new(
        enc_cfg: EncoderConfig,
        n_labels: usize,
        seed: u64,
        pretrained: Option<&[u8]>,
    ) -> Self {
        let mut encoder = Encoder::new(enc_cfg);
        if let Some(blob) = pretrained {
            let _ = load_params(&mut encoder, blob);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let d = encoder.d_model();
        PlmCore {
            encoder,
            classifier: Linear::new(d, n_labels, &mut rng),
        }
    }

    /// Pool a column representation from hidden states.
    fn pool(hidden: &Tensor, anchor: &Anchor) -> Option<Vec<f32>> {
        match anchor {
            Anchor::Pos(p) => (*p < hidden.rows()).then(|| hidden.row(*p).to_vec()),
            Anchor::Mean(ps) => {
                let valid: Vec<usize> = ps.iter().copied().filter(|&p| p < hidden.rows()).collect();
                if valid.is_empty() {
                    return None;
                }
                let d = hidden.cols();
                let mut v = vec![0.0f32; d];
                for &p in &valid {
                    for (a, &b) in v.iter_mut().zip(hidden.row(p)) {
                        *a += b;
                    }
                }
                let inv = 1.0 / valid.len() as f32;
                for a in &mut v {
                    *a *= inv;
                }
                Some(v)
            }
        }
    }

    /// One gradient-accumulating step on a sequence; returns the mean loss.
    fn train_seq(&mut self, seq: &ColumnSeq, dropout: f32, rng: &mut StdRng) -> f32 {
        let (mut hidden, cache) = self.encoder.forward(&seq.ids);
        let dropout_mask = if dropout > 0.0 {
            let keep = 1.0 - dropout;
            let scale = 1.0 / keep;
            let mask: Vec<f32> = (0..hidden.numel())
                .map(|_| if rng.gen_bool(keep as f64) { scale } else { 0.0 })
                .collect();
            for (h, &m) in hidden.data_mut().iter_mut().zip(&mask) {
                *h *= m;
            }
            Some(mask)
        } else {
            None
        };
        let d = hidden.cols();
        let mut d_hidden = Tensor::zeros(hidden.rows(), d);
        let mut loss_sum = 0.0f32;
        let mut counted = 0usize;
        let visible = seq
            .anchors
            .iter()
            .filter(|a| Self::pool(&hidden, a).is_some())
            .count()
            .max(1);
        let inv = 1.0 / visible as f32;
        for (a, &label) in seq.anchors.iter().zip(&seq.labels) {
            let Some(pooled) = Self::pool(&hidden, a) else {
                continue;
            };
            let x = Tensor::from_vec(1, d, pooled);
            let (logits, ccache) = self.classifier.forward(&x);
            let (loss, mut dlogits) = cross_entropy(logits.row(0), label.index());
            loss_sum += loss;
            counted += 1;
            for g in &mut dlogits {
                *g *= inv;
            }
            let dl = Tensor::from_vec(1, dlogits.len(), dlogits);
            let dx = self.classifier.backward(&ccache, &dl);
            match a {
                Anchor::Pos(p) => {
                    for (g, &v) in d_hidden.row_mut(*p).iter_mut().zip(dx.row(0)) {
                        *g += v;
                    }
                }
                Anchor::Mean(ps) => {
                    let valid: Vec<usize> =
                        ps.iter().copied().filter(|&p| p < hidden.rows()).collect();
                    let share = 1.0 / valid.len() as f32;
                    for p in valid {
                        for (g, &v) in d_hidden.row_mut(p).iter_mut().zip(dx.row(0)) {
                            *g += share * v;
                        }
                    }
                }
            }
        }
        if let Some(mask) = &dropout_mask {
            for (g, &m) in d_hidden.data_mut().iter_mut().zip(mask) {
                *g *= m;
            }
        }
        self.encoder.backward(&cache, &d_hidden);
        loss_sum / counted.max(1) as f32
    }

    /// Predict labels for a sequence.
    pub fn predict(&self, seq: &ColumnSeq) -> Vec<LabelId> {
        let hidden = self.encoder.infer(&seq.ids);
        seq.anchors
            .iter()
            .map(|a| {
                let Some(pooled) = Self::pool(&hidden, a) else {
                    return LabelId(0);
                };
                let x = Tensor::from_vec(1, pooled.len(), pooled);
                let logits = self.classifier.infer(&x);
                let best = logits
                    .row(0)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                LabelId(best as u32)
            })
            .collect()
    }

    /// Evaluate over sequences.
    pub fn evaluate(&self, seqs: &[ColumnSeq]) -> EvalSummary {
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for s in seqs {
            preds.extend(self.predict(s));
            truths.extend(s.labels.iter().copied());
        }
        EvalSummary::compute(&preds, &truths)
    }

    /// Fine-tune with early stopping; restores the best epoch's weights.
    pub fn fit(&mut self, train: &[ColumnSeq], val: &[ColumnSeq], config: &PlmConfig) {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let batch = config.batch_size.max(1);
        let mut opt = AdamW::new(
            config.optimizer,
            Some(LinearDecay {
                total_steps: train.len().div_ceil(batch) * config.epochs,
            }),
        );
        let mut best = f64::NEG_INFINITY;
        let mut best_blob: Option<Vec<u8>> = None;
        let mut bad = 0usize;
        let mut order: Vec<usize> = (0..train.len()).collect();
        for _epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch) {
                for &i in chunk {
                    self.train_seq(&train[i], config.dropout, &mut rng);
                }
                self.scale_grads(1.0 / chunk.len() as f32);
                opt.step(self);
            }
            // Without a validation split, train to the end (no early stop,
            // keep final weights).
            if !val.is_empty() {
                let acc = self.evaluate(val).accuracy;
                if acc > best {
                    best = acc;
                    best_blob = Some(save_params(self).to_vec());
                    bad = 0;
                } else {
                    bad += 1;
                    if config.patience > 0 && bad >= config.patience {
                        break;
                    }
                }
            }
        }
        if let Some(blob) = best_blob {
            // kglink-lint: allow(panic-in-lib) — structural: the blob was
            // produced by save_params on this very model moments ago, so
            // shapes always match; a failure is memory corruption, not input.
            load_params(self, &blob).expect("restoring own weights cannot fail");
        }
    }
}

/// Tokenize one cell the way every PLM model in this workspace does:
/// words for text, magnitude buckets for numbers, year buckets for dates.
pub fn encode_cell(cell: &kglink_table::CellValue, tokenizer: &kglink_nn::Tokenizer) -> Vec<u32> {
    use kglink_table::CellValue;
    match cell {
        CellValue::Text(s) => tokenizer.encode_text(s),
        CellValue::Number(n) => vec![tokenizer.encode_number(*n)],
        CellValue::Date(d) => {
            let year = d.get(..4).and_then(|y| y.parse::<f64>().ok()).unwrap_or(0.0);
            vec![tokenizer.encode_number(year)]
        }
        CellValue::Empty => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_nn::special;

    fn seqs(n: usize, n_labels: u32) -> Vec<ColumnSeq> {
        // Token identity encodes the label: trivially learnable.
        (0..n)
            .map(|i| {
                let label = (i as u32) % n_labels;
                let tok = special::FIRST_WORD + label;
                ColumnSeq {
                    ids: vec![special::CLS, tok, tok, special::SEP],
                    anchors: vec![Anchor::Pos(0)],
                    labels: vec![LabelId(label)],
                }
            })
            .collect()
    }

    fn enc_cfg() -> EncoderConfig {
        EncoderConfig {
            vocab_size: 20,
            d_model: 16,
            n_heads: 2,
            d_ff: 32,
            n_layers: 1,
            max_len: 8,
            seed: 6,
        }
    }

    #[test]
    fn plm_learns_a_trivial_mapping() {
        let train = seqs(60, 3);
        let mut core = PlmCore::new(enc_cfg(), 3, 1, None);
        let before = core.evaluate(&train).accuracy;
        core.fit(
            &train,
            &train,
            &PlmConfig {
                epochs: 10,
                patience: 0,
                ..Default::default()
            },
        );
        let after = core.evaluate(&train).accuracy;
        assert!(after > before.max(0.8), "{before} -> {after}");
    }

    #[test]
    fn mean_anchor_pools_span() {
        let core = PlmCore::new(enc_cfg(), 3, 1, None);
        let hidden = core.encoder.infer(&[2, 11, 12, 3]);
        let a = PlmCore::pool(&hidden, &Anchor::Mean(vec![1, 2])).unwrap();
        for (i, v) in a.iter().enumerate() {
            let expect = (hidden.get(1, i) + hidden.get(2, i)) / 2.0;
            assert!((v - expect).abs() < 1e-6);
        }
        // Out-of-range anchors pool to None.
        assert!(PlmCore::pool(&hidden, &Anchor::Pos(99)).is_none());
        assert!(PlmCore::pool(&hidden, &Anchor::Mean(vec![99])).is_none());
    }

    #[test]
    fn predict_handles_truncated_anchor() {
        let core = PlmCore::new(enc_cfg(), 3, 1, None);
        let seq = ColumnSeq {
            ids: vec![special::CLS, 11, special::SEP],
            anchors: vec![Anchor::Pos(0), Anchor::Pos(50)],
            labels: vec![LabelId(0), LabelId(1)],
        };
        let preds = core.predict(&seq);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[1], LabelId(0), "fallback for truncated anchor");
    }
}
