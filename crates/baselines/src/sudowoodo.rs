//! Sudowoodo-like baseline: contrastive self-supervised column encoder.
//!
//! Sudowoodo (Wang et al., ICDE'23) learns column representations with
//! SimCLR-style contrastive learning (two augmented views of the same
//! column must embed close together, different columns far apart) and then
//! needs only light supervision on top. The skeleton keeps that shape:
//! an InfoNCE pre-training phase over training columns (labels unused),
//! then a small classifier on the **frozen** embeddings — which is why it
//! lands below the fully fine-tuned PLMs in Table I, while still beating
//! feature-engineering baselines.

use crate::env::{BenchEnv, CtaModel};
use crate::mlp::{Mlp, MlpConfig};
use crate::plm::encode_cell;
use kglink_nn::{special, AdamW, AdamWConfig, Encoder, Tensor, Tokenizer};
use kglink_table::{Dataset, LabelId, Split, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const TOKENS_PER_COLUMN: usize = 18;
const MAX_ROWS: usize = 12;

/// Sudowoodo-like training settings.
#[derive(Debug, Clone)]
pub struct SudowoodoConfig {
    /// Contrastive epochs over the training columns.
    pub contrastive_epochs: usize,
    /// Contrastive batch size (columns per InfoNCE batch).
    pub batch_size: usize,
    /// InfoNCE temperature.
    pub tau: f32,
    /// Classifier training settings on frozen embeddings.
    pub head: MlpConfig,
    pub lr: f32,
    pub seed: u64,
}

impl Default for SudowoodoConfig {
    fn default() -> Self {
        SudowoodoConfig {
            contrastive_epochs: 2,
            batch_size: 8,
            tau: 0.3,
            head: MlpConfig::default(),
            lr: 3e-4,
            seed: 13,
        }
    }
}

/// The Sudowoodo-like annotator.
pub struct Sudowoodo {
    encoder: Option<Encoder>,
    head: Option<Mlp>,
    pub config: SudowoodoConfig,
}

impl Sudowoodo {
    pub fn new(config: SudowoodoConfig) -> Self {
        Sudowoodo {
            encoder: None,
            head: None,
            config,
        }
    }

    /// Token ids of one column (full view).
    fn column_tokens(table: &Table, c: usize, tokenizer: &Tokenizer) -> Vec<u32> {
        let mut out = Vec::new();
        for cell in table.column(c).iter().take(MAX_ROWS) {
            out.extend(encode_cell(cell, tokenizer));
            if out.len() >= TOKENS_PER_COLUMN {
                out.truncate(TOKENS_PER_COLUMN);
                break;
            }
        }
        out
    }

    /// An augmented view: a random ~60% subset of the column's tokens.
    fn view(tokens: &[u32], rng: &mut StdRng) -> Vec<u32> {
        let mut ids = vec![special::CLS];
        for &t in tokens {
            if rng.gen_bool(0.6) {
                ids.push(t);
            }
        }
        if ids.len() == 1 {
            if let Some(&t) = tokens.first() {
                ids.push(t);
            }
        }
        ids.push(special::SEP);
        ids
    }

    /// `[CLS]`-embedding of a token sequence.
    fn embed(encoder: &Encoder, tokens: &[u32]) -> Vec<f32> {
        let mut ids = vec![special::CLS];
        ids.extend_from_slice(tokens);
        ids.push(special::SEP);
        encoder.infer(&ids).row(0).to_vec()
    }

    /// L2-normalize in place; returns the original norm.
    fn normalize(v: &mut [f32]) -> f32 {
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        for x in v.iter_mut() {
            *x /= norm;
        }
        norm
    }

    /// One InfoNCE step on a batch of column token lists. Returns the loss.
    fn contrastive_step(
        encoder: &mut Encoder,
        opt: &mut AdamW,
        batch: &[&Vec<u32>],
        tau: f32,
        rng: &mut StdRng,
    ) -> f32 {
        let b = batch.len();
        if b < 2 {
            return 0.0;
        }
        let d = encoder.d_model();
        // Forward both views with caches.
        let mut caches = Vec::with_capacity(2 * b);
        let mut raw = Vec::with_capacity(2 * b); // un-normalized CLS embeddings
        let mut z = Vec::with_capacity(2 * b); // normalized
        let mut norms = Vec::with_capacity(2 * b);
        let mut rows = Vec::with_capacity(2 * b);
        for view_idx in 0..2 {
            let _ = view_idx;
            for tokens in batch {
                let ids = Self::view(tokens, rng);
                let (h, cache) = encoder.forward(&ids);
                let mut v = h.row(0).to_vec();
                raw.push(v.clone());
                let norm = Self::normalize(&mut v);
                norms.push(norm);
                z.push(v);
                caches.push(cache);
                rows.push(h.rows());
            }
        }
        // logits[i][j] = z1_i · z2_j / tau
        let mut loss = 0.0f32;
        let mut dz = vec![vec![0.0f32; d]; 2 * b];
        for i in 0..b {
            let logits: Vec<f32> = (0..b)
                .map(|j| {
                    z[i].iter()
                        .zip(&z[b + j])
                        .map(|(a, c)| a * c)
                        .sum::<f32>()
                        / tau
                })
                .collect();
            let (l, dlogits) = kglink_nn::cross_entropy(&logits, i);
            loss += l / b as f32;
            for (j, &g) in dlogits.iter().enumerate() {
                let g = g / (tau * b as f32);
                for k in 0..d {
                    dz[i][k] += g * z[b + j][k];
                    dz[b + j][k] += g * z[i][k];
                }
            }
        }
        // Backward through normalization and the encoder.
        for (idx, cache) in caches.iter().enumerate() {
            let zi = &z[idx];
            let gi = &dz[idx];
            let dot: f32 = zi.iter().zip(gi).map(|(a, b)| a * b).sum();
            let mut draw = vec![0.0f32; d];
            for k in 0..d {
                draw[k] = (gi[k] - zi[k] * dot) / norms[idx];
            }
            let mut dh = Tensor::zeros(rows[idx], d);
            dh.row_mut(0).copy_from_slice(&draw);
            encoder.backward(cache, &dh);
        }
        opt.step(encoder);
        loss
    }
}

impl CtaModel for Sudowoodo {
    fn name(&self) -> &'static str {
        "Sudowoodo"
    }

    fn fit(&mut self, env: &BenchEnv<'_>, dataset: &Dataset) {
        let tok = env.resources.tokenizer;
        let mut encoder = Encoder::new(kglink_nn::EncoderConfig::mini(tok.vocab.len()));
        if let Some(blob) = env.resources.pretrained_encoder {
            let _ = kglink_nn::serialize::load_params(&mut encoder, blob);
        }
        // Collect training columns (labels unused during contrastive phase).
        let columns: Vec<Vec<u32>> = dataset
            .tables_in(Split::Train)
            .flat_map(|t| (0..t.n_cols()).map(|c| Self::column_tokens(t, c, tok)))
            .filter(|toks| !toks.is_empty())
            .collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut opt = AdamW::new(
            AdamWConfig {
                lr: self.config.lr,
                ..Default::default()
            },
            None,
        );
        let mut order: Vec<usize> = (0..columns.len()).collect();
        for _ in 0..self.config.contrastive_epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.config.batch_size.max(2)) {
                let batch: Vec<&Vec<u32>> = chunk.iter().map(|&i| &columns[i]).collect();
                Self::contrastive_step(&mut encoder, &mut opt, &batch, self.config.tau, &mut rng);
            }
        }
        // Supervised head on frozen embeddings.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for t in dataset.tables_in(Split::Train) {
            for c in 0..t.n_cols() {
                let toks = Self::column_tokens(t, c, tok);
                xs.push(Self::embed(&encoder, &toks));
                ys.push(t.labels[c].index());
            }
        }
        let mut head = Mlp::new(encoder.d_model(), 64, env.labels.len(), self.config.seed ^ 0x5);
        head.fit(&xs, &ys, &self.config.head);
        self.encoder = Some(encoder);
        self.head = Some(head);
    }

    fn predict_table(&self, env: &BenchEnv<'_>, table: &Table) -> Vec<LabelId> {
        // kglink-lint: allow(panic-in-lib) — Baseline trait contract: the
        // bench harness always fits before predicting; a None here is a
        // harness bug, not a data condition to degrade on.
        let encoder = self.encoder.as_ref().expect("fit before predict");
        // kglink-lint: allow(panic-in-lib) — same contract as the line above.
        let head = self.head.as_ref().expect("fit before predict");
        (0..table.n_cols())
            .map(|c| {
                let toks = Self::column_tokens(table, c, env.resources.tokenizer);
                LabelId(head.predict(&Self::embed(encoder, &toks)) as u32)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_core::pipeline::{build_vocab, Resources};
    use kglink_datagen::{semtab_like, SemTabConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_search::EntitySearcher;

    #[test]
    fn views_are_subsets_with_frame_tokens() {
        let mut rng = StdRng::seed_from_u64(1);
        let tokens = vec![20u32, 21, 22, 23, 24];
        let v = Sudowoodo::view(&tokens, &mut rng);
        assert_eq!(v[0], special::CLS);
        assert_eq!(*v.last().unwrap(), special::SEP);
        for t in &v[1..v.len() - 1] {
            assert!(tokens.contains(t));
        }
    }

    #[test]
    fn contrastive_loss_decreases() {
        let mut encoder = Encoder::new(kglink_nn::EncoderConfig {
            vocab_size: 40,
            d_model: 16,
            n_heads: 2,
            d_ff: 32,
            n_layers: 1,
            max_len: 24,
            seed: 2,
        });
        let mut rng = StdRng::seed_from_u64(3);
        let mut opt = AdamW::new(
            AdamWConfig {
                lr: 1e-3,
                ..Default::default()
            },
            None,
        );
        let columns: Vec<Vec<u32>> = (0..8)
            .map(|i| (0..6).map(|j| 11 + ((i * 3 + j) % 28) as u32).collect())
            .collect();
        let batch: Vec<&Vec<u32>> = columns.iter().collect();
        let first = Sudowoodo::contrastive_step(&mut encoder, &mut opt, &batch, 0.3, &mut rng);
        let mut last = first;
        for _ in 0..15 {
            last = Sudowoodo::contrastive_step(&mut encoder, &mut opt, &batch, 0.3, &mut rng);
        }
        assert!(last < first, "InfoNCE should decrease: {first} -> {last}");
    }

    #[test]
    fn sudowoodo_end_to_end_beats_random() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(130));
        let bench = semtab_like(&world, &SemTabConfig::tiny(130));
        let searcher = EntitySearcher::build(&world.graph);
        let vocab = build_vocab([], &[&bench.dataset], 4000);
        let tokenizer = kglink_nn::Tokenizer::new(vocab);
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&searcher)
            .tokenizer(&tokenizer)
            .build()
            .unwrap();
        let env = BenchEnv {
            resources: &resources,
            labels: &bench.dataset.labels,
            label_to_type: &bench.label_to_type,
        };
        let mut model = Sudowoodo::new(SudowoodoConfig {
            contrastive_epochs: 1,
            ..Default::default()
        });
        model.fit(&env, &bench.dataset);
        let summary = model.evaluate(&env, &bench.dataset, Split::Test);
        assert!(
            summary.accuracy > 1.0 / bench.dataset.labels.len() as f64,
            "{}",
            summary.accuracy
        );
    }
}
