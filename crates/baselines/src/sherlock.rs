//! Sherlock-like baseline: hand-crafted column statistics + MLP.
//!
//! Sherlock (Hulsebos et al., KDD'19) predicts a column's type from
//! engineered features of its values alone — no table context, no KG. The
//! skeleton keeps a representative feature set (character/word statistics,
//! type fractions, value distributions) and the MLP classifier.

use crate::env::{BenchEnv, CtaModel};
use crate::mlp::{Mlp, MlpConfig, Standardizer};
use kglink_table::{CellValue, Dataset, LabelId, Split, Table};

/// Number of engineered features.
pub const N_FEATURES: usize = 18;

/// Extract Sherlock-style statistics from one column.
pub fn column_features(table: &Table, c: usize) -> Vec<f32> {
    let cells = table.column(c);
    let n = cells.len().max(1) as f32;
    let mut numeric = 0f32;
    let mut dates = 0f32;
    let mut empty = 0f32;
    let mut text = 0f32;
    let mut char_lens = Vec::new();
    let mut word_counts = Vec::new();
    let mut digit_frac_sum = 0f32;
    let mut upper_frac_sum = 0f32;
    let mut alpha_frac_sum = 0f32;
    let mut values = Vec::new();
    let mut distinct = std::collections::HashSet::new();
    for cell in cells {
        match cell {
            CellValue::Number(v) => {
                numeric += 1.0;
                values.push(*v as f32);
            }
            CellValue::Date(_) => dates += 1.0,
            CellValue::Empty => empty += 1.0,
            CellValue::Text(s) => {
                text += 1.0;
                let chars: Vec<char> = s.chars().collect();
                let len = chars.len().max(1) as f32;
                char_lens.push(len);
                word_counts.push(s.split_whitespace().count() as f32);
                digit_frac_sum += chars.iter().filter(|c| c.is_ascii_digit()).count() as f32 / len;
                upper_frac_sum += chars.iter().filter(|c| c.is_uppercase()).count() as f32 / len;
                alpha_frac_sum += chars.iter().filter(|c| c.is_alphabetic()).count() as f32 / len;
            }
        }
        distinct.insert(cell.surface());
    }
    let mean = |v: &[f32]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f32>() / v.len() as f32
        }
    };
    let std = |v: &[f32]| {
        if v.len() < 2 {
            return 0.0;
        }
        let m = mean(v);
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / v.len() as f32).sqrt()
    };
    let text_n = text.max(1.0);
    let val_mean = mean(&values);
    vec![
        numeric / n,                       // fraction numeric
        dates / n,                         // fraction dates
        empty / n,                         // fraction empty
        text / n,                          // fraction text
        mean(&char_lens),                  // mean text length
        std(&char_lens),                   // std text length
        char_lens.iter().copied().fold(0.0, f32::max), // max text length
        mean(&word_counts),                // mean word count
        std(&word_counts),                 // std word count
        digit_frac_sum / text_n,           // mean digit fraction
        upper_frac_sum / text_n,           // mean uppercase fraction
        alpha_frac_sum / text_n,           // mean alphabetic fraction
        distinct.len() as f32 / n,         // distinct ratio
        val_mean.abs().ln_1p(),            // log |mean value|
        std(&values).ln_1p(),              // log value std
        values.iter().copied().fold(f32::INFINITY, f32::min).clamp(-1e9, 1e9), // min value (clamped)
        values.iter().copied().fold(f32::NEG_INFINITY, f32::max).clamp(-1e9, 1e9), // max value (clamped)
        n.ln(),                            // log row count
    ]
}

/// The Sherlock-like annotator.
pub struct Sherlock {
    mlp: Option<Mlp>,
    norm: Standardizer,
    pub config: MlpConfig,
}

impl Sherlock {
    pub fn new(config: MlpConfig) -> Self {
        Sherlock {
            mlp: None,
            norm: Standardizer::default(),
            config,
        }
    }
}

impl CtaModel for Sherlock {
    fn name(&self) -> &'static str {
        "Sherlock"
    }

    fn fit(&mut self, env: &BenchEnv<'_>, dataset: &Dataset) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for t in dataset.tables_in(Split::Train) {
            for c in 0..t.n_cols() {
                let mut f = column_features(t, c);
                // Replace infinities from empty value sets.
                for v in &mut f {
                    if !v.is_finite() {
                        *v = 0.0;
                    }
                }
                xs.push(f);
                ys.push(t.labels[c].index());
            }
        }
        self.norm = Standardizer::fit(&xs);
        let xs: Vec<Vec<f32>> = xs.iter().map(|x| self.norm.apply(x)).collect();
        let mut mlp = Mlp::new(N_FEATURES, 64, env.labels.len(), self.config.seed);
        mlp.fit(&xs, &ys, &self.config);
        self.mlp = Some(mlp);
    }

    fn predict_table(&self, _env: &BenchEnv<'_>, table: &Table) -> Vec<LabelId> {
        // kglink-lint: allow(panic-in-lib) — Baseline trait contract: the
        // bench harness always fits before predicting; a None here is a
        // harness bug, not a data condition to degrade on.
        let mlp = self.mlp.as_ref().expect("fit before predict");
        (0..table.n_cols())
            .map(|c| {
                let mut f = column_features(table, c);
                for v in &mut f {
                    if !v.is_finite() {
                        *v = 0.0;
                    }
                }
                LabelId(mlp.predict(&self.norm.apply(&f)) as u32)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_core::pipeline::{build_vocab, Resources};
    use kglink_datagen::{viznet_like, VizNetConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_nn::Tokenizer;
    use kglink_search::EntitySearcher;
    use kglink_table::TableId;

    #[test]
    fn feature_vector_has_fixed_length() {
        let t = Table::new(
            TableId(0),
            vec![],
            vec![vec![
                CellValue::parse("Alpha"),
                CellValue::parse("42"),
                CellValue::parse(""),
            ]],
            vec![LabelId(0)],
        );
        let f = column_features(&t, 0);
        assert_eq!(f.len(), N_FEATURES);
        assert!((f[0] - 1.0 / 3.0).abs() < 1e-6, "numeric fraction");
        assert!((f[2] - 1.0 / 3.0).abs() < 1e-6, "empty fraction");
    }

    #[test]
    fn sherlock_beats_random_on_viznet_like() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(110));
        let bench = viznet_like(&world, &VizNetConfig::tiny(110));
        let searcher = EntitySearcher::build(&world.graph);
        let vocab = build_vocab([], &[&bench.dataset], 2000);
        let tokenizer = Tokenizer::new(vocab);
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&searcher)
            .tokenizer(&tokenizer)
            .build()
            .unwrap();
        let env = BenchEnv {
            resources: &resources,
            labels: &bench.dataset.labels,
            label_to_type: &bench.label_to_type,
        };
        let mut sherlock = Sherlock::new(MlpConfig::default());
        sherlock.fit(&env, &bench.dataset);
        let summary = sherlock.evaluate(&env, &bench.dataset, Split::Test);
        assert!(
            summary.accuracy > 1.0 / bench.dataset.labels.len() as f64,
            "{}",
            summary.accuracy
        );
    }

    #[test]
    fn numeric_and_text_columns_separate_in_feature_space() {
        let t = Table::new(
            TableId(0),
            vec![],
            vec![
                vec![CellValue::parse("12"), CellValue::parse("15")],
                vec![CellValue::parse("Alice"), CellValue::parse("Bob")],
            ],
            vec![LabelId(0), LabelId(1)],
        );
        let f_num = column_features(&t, 0);
        let f_text = column_features(&t, 1);
        assert_eq!(f_num[0], 1.0);
        assert_eq!(f_text[0], 0.0);
        assert!(f_text[4] > 0.0, "text length feature");
    }
}
