//! MTab-like baseline: pure knowledge-graph voting, no learning.
//!
//! MTab wins SemTab rounds by entity-linking every cell and aggregating the
//! linked entities' types. It has no trained component, so it excels when
//! dataset labels *are* KG types (SemTab) and collapses on numeric columns
//! and non-KG label vocabularies (VizNet) — exactly the behaviour the paper
//! reports in Table I (89.10 on SemTab, 38.21 on VizNet).

use crate::env::{train_majority_label, BenchEnv, CtaModel};
use kglink_kg::TypeHierarchy;
use kglink_table::{Dataset, LabelId, Table};
use std::collections::HashMap;

/// The MTab-like annotator.
#[derive(Debug, Default)]
pub struct MTab {
    /// Fallback label when KG voting produces nothing (numeric columns,
    /// unlinkable text): the training majority class.
    fallback: LabelId,
}

impl MTab {
    pub fn new() -> Self {
        Self::default()
    }
}

impl CtaModel for MTab {
    fn name(&self) -> &'static str {
        "MTab"
    }

    fn fit(&mut self, _env: &BenchEnv<'_>, dataset: &Dataset) {
        self.fallback = train_majority_label(dataset);
    }

    fn predict_table(&self, env: &BenchEnv<'_>, table: &Table) -> Vec<LabelId> {
        let graph = env.resources.graph;
        let searcher = env.resources.backend;
        let hierarchy = TypeHierarchy::new(graph);
        (0..table.n_cols())
            .map(|c| {
                // Vote over all linked cells' entity types.
                let mut label_scores: HashMap<LabelId, f64> = HashMap::new();
                for cell in table.column(c) {
                    if !cell.is_linkable() {
                        continue;
                    }
                    for (entity, score) in searcher.link_mention(&cell.surface(), 5) {
                        for ty in graph.types_of(entity) {
                            // Match the entity type against every dataset
                            // label's KG translation, rewarding exact matches
                            // over hierarchy matches.
                            for (&label, &label_ty) in env.label_to_type {
                                let w = if ty == label_ty {
                                    2.0
                                } else if hierarchy.is_subtype_of(ty, label_ty)
                                    || hierarchy.is_subtype_of(label_ty, ty)
                                {
                                    0.75
                                } else {
                                    continue;
                                };
                                *label_scores.entry(label).or_insert(0.0) += w * score as f64;
                            }
                        }
                    }
                }
                // kglink-lint: allow(nondeterminism) — max under a total order
                // (score, then label id): the winner is independent of the
                // hash map's iteration order.
                label_scores
                    .into_iter()
                    .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
                    .map(|(l, _)| l)
                    .unwrap_or(self.fallback)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_core::pipeline::{build_vocab, Resources};
    use kglink_datagen::{semtab_like, viznet_like, SemTabConfig, VizNetConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_nn::Tokenizer;
    use kglink_search::EntitySearcher;
    use kglink_table::Split;

    #[test]
    fn mtab_is_strong_on_semtab_like_data() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(91));
        let bench = semtab_like(&world, &SemTabConfig::tiny(91));
        let searcher = EntitySearcher::build(&world.graph);
        let vocab = build_vocab([], &[&bench.dataset], 4000);
        let tokenizer = Tokenizer::new(vocab);
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&searcher)
            .tokenizer(&tokenizer)
            .build()
            .unwrap();
        let env = BenchEnv {
            resources: &resources,
            labels: &bench.dataset.labels,
            label_to_type: &bench.label_to_type,
        };
        let mut mtab = MTab::new();
        mtab.fit(&env, &bench.dataset);
        let summary = mtab.evaluate(&env, &bench.dataset, Split::Test);
        assert!(
            summary.accuracy > 0.5,
            "KG voting should shine on KG-derived data: {}",
            summary.accuracy
        );
    }

    #[test]
    fn mtab_degrades_on_viznet_like_data() {
        // Needs a moderately sized world: on a tiny fixture the two
        // accuracies are within sampling noise of each other.
        let world = SyntheticWorld::generate(&WorldConfig {
            seed: 92,
            scale: 0.35,
            ..WorldConfig::default()
        });
        let semtab = semtab_like(
            &world,
            &SemTabConfig {
                seed: 92,
                n_tables: 80,
                ..SemTabConfig::default()
            },
        );
        let viznet = viznet_like(
            &world,
            &VizNetConfig {
                seed: 92,
                n_tables: 120,
                ..VizNetConfig::default()
            },
        );
        let searcher = EntitySearcher::build(&world.graph);
        let vocab = build_vocab([], &[&viznet.dataset], 4000);
        let tokenizer = Tokenizer::new(vocab);
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&searcher)
            .tokenizer(&tokenizer)
            .build()
            .unwrap();
        let env_v = BenchEnv {
            resources: &resources,
            labels: &viznet.dataset.labels,
            label_to_type: &viznet.label_to_type,
        };
        let env_s = BenchEnv {
            resources: &resources,
            labels: &semtab.dataset.labels,
            label_to_type: &semtab.label_to_type,
        };
        let mut mtab = MTab::new();
        mtab.fit(&env_v, &viznet.dataset);
        let viz = mtab.evaluate(&env_v, &viznet.dataset, Split::Test);
        let mut mtab2 = MTab::new();
        mtab2.fit(&env_s, &semtab.dataset);
        let sem = mtab2.evaluate(&env_s, &semtab.dataset, Split::Test);
        assert!(
            sem.accuracy > viz.accuracy,
            "paper Table I shape: MTab semtab {} > viznet {}",
            sem.accuracy,
            viz.accuracy
        );
    }

    #[test]
    fn numeric_columns_fall_back_to_majority() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(93));
        let bench = viznet_like(&world, &VizNetConfig::tiny(93));
        let searcher = EntitySearcher::build(&world.graph);
        let vocab = build_vocab([], &[&bench.dataset], 4000);
        let tokenizer = Tokenizer::new(vocab);
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&searcher)
            .tokenizer(&tokenizer)
            .build()
            .unwrap();
        let env = BenchEnv {
            resources: &resources,
            labels: &bench.dataset.labels,
            label_to_type: &bench.label_to_type,
        };
        let mut mtab = MTab::new();
        mtab.fit(&env, &bench.dataset);
        // Find a numeric column in a test table.
        let numeric = bench
            .dataset
            .tables_in(Split::Test)
            .find_map(|t| (0..t.n_cols()).find(|&c| t.is_numeric_column(c)).map(|c| (t, c)));
        if let Some((t, c)) = numeric {
            let preds = mtab.predict_table(&env, t);
            assert_eq!(preds[c], mtab.fallback);
        }
    }
}
