//! RECA-like baseline: single-column PLM + inter-table augmentation.
//!
//! RECA (Sun et al., VLDB'23) annotates each column independently but
//! augments it with aligned columns from *related tables* found in the
//! corpus. The skeleton keeps both defining choices: no intra-table context
//! (each column is its own sequence — which is why it trails the
//! multi-column models on the paper's Table IV non-numeric subset) and an
//! inter-table retrieval step (Jaccard similarity over cell token sets)
//! that appends the most similar training column's cells.

use crate::env::{BenchEnv, CtaModel};
use crate::plm::{encode_cell, Anchor, ColumnSeq, PlmConfig, PlmCore};
use kglink_nn::{special, Tokenizer};
use kglink_table::{Dataset, LabelId, Split, Table, TableId};
use std::collections::HashSet;

const TOKENS_PER_COLUMN: usize = 18;
const AUG_TOKENS: usize = 10;
const MAX_ROWS: usize = 12;

/// A stored training column for inter-table retrieval.
#[derive(Debug, Clone)]
struct StoredColumn {
    table: TableId,
    tokens: Vec<u32>,
    token_set: HashSet<u32>,
}

/// The RECA-like annotator.
pub struct Reca {
    core: Option<PlmCore>,
    store: Vec<StoredColumn>,
    pub config: PlmConfig,
}

impl Reca {
    pub fn new(config: PlmConfig) -> Self {
        Reca {
            core: None,
            store: Vec::new(),
            config,
        }
    }

    fn column_tokens(table: &Table, c: usize, tokenizer: &Tokenizer) -> Vec<u32> {
        let mut out = Vec::new();
        for cell in table.column(c).iter().take(MAX_ROWS) {
            out.extend(encode_cell(cell, tokenizer));
            if out.len() >= TOKENS_PER_COLUMN {
                out.truncate(TOKENS_PER_COLUMN);
                break;
            }
        }
        out
    }

    /// Jaccard similarity of two token sets.
    fn jaccard(a: &HashSet<u32>, b: &HashSet<u32>) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        let inter = a.intersection(b).count();
        let union = a.len() + b.len() - inter;
        inter as f64 / union as f64
    }

    /// Most similar stored column from a *different* table.
    fn most_similar(&self, table: TableId, tokens: &[u32]) -> Option<&StoredColumn> {
        let set: HashSet<u32> = tokens.iter().copied().collect();
        self.store
            .iter()
            .filter(|s| s.table != table)
            .map(|s| (Self::jaccard(&set, &s.token_set), s))
            .filter(|(sim, _)| *sim > 0.0)
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, s)| s)
    }

    /// Build the sequence for one column: `[CLS] cells [SEP] related-cells`.
    fn sequence_for(&self, table: &Table, c: usize, tokenizer: &Tokenizer) -> ColumnSeq {
        let tokens = Self::column_tokens(table, c, tokenizer);
        let mut ids = vec![special::CLS];
        ids.extend(&tokens);
        ids.push(special::SEP);
        if let Some(similar) = self.most_similar(table.id, &tokens) {
            ids.extend(similar.tokens.iter().take(AUG_TOKENS));
            ids.push(special::SEP);
        }
        ColumnSeq {
            ids,
            anchors: vec![Anchor::Pos(0)],
            labels: vec![table.labels[c]],
        }
    }

    fn sequences(&self, dataset: &Dataset, split: Split, tokenizer: &Tokenizer) -> Vec<ColumnSeq> {
        dataset
            .tables_in(split)
            .flat_map(|t| (0..t.n_cols()).map(|c| self.sequence_for(t, c, tokenizer)))
            .collect()
    }
}

impl CtaModel for Reca {
    fn name(&self) -> &'static str {
        "RECA"
    }

    fn fit(&mut self, env: &BenchEnv<'_>, dataset: &Dataset) {
        let tok = env.resources.tokenizer;
        // Build the inter-table store from training columns.
        self.store = dataset
            .tables_in(Split::Train)
            .flat_map(|t| {
                (0..t.n_cols()).map(|c| {
                    let tokens = Self::column_tokens(t, c, tok);
                    StoredColumn {
                        table: t.id,
                        token_set: tokens.iter().copied().collect(),
                        tokens,
                    }
                })
            })
            .collect();
        let train = self.sequences(dataset, Split::Train, tok);
        let val = self.sequences(dataset, Split::Validation, tok);
        let enc_cfg = kglink_nn::EncoderConfig::mini(tok.vocab.len());
        let mut core = PlmCore::new(
            enc_cfg,
            env.labels.len(),
            self.config.seed,
            env.resources.pretrained_encoder,
        );
        core.fit(&train, &val, &self.config);
        self.core = Some(core);
    }

    fn predict_table(&self, env: &BenchEnv<'_>, table: &Table) -> Vec<LabelId> {
        // kglink-lint: allow(panic-in-lib) — Baseline trait contract: the
        // bench harness always fits before predicting; a None here is a
        // harness bug, not a data condition to degrade on.
        let core = self.core.as_ref().expect("fit before predict");
        (0..table.n_cols())
            .flat_map(|c| core.predict(&self.sequence_for(table, c, env.resources.tokenizer)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_core::pipeline::build_vocab;
    use kglink_datagen::{semtab_like, SemTabConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_table::CellValue;

    #[test]
    fn jaccard_basics() {
        let a: HashSet<u32> = [1, 2, 3].into();
        let b: HashSet<u32> = [2, 3, 4].into();
        assert!((Reca::jaccard(&a, &b) - 0.5).abs() < 1e-9);
        assert_eq!(Reca::jaccard(&HashSet::new(), &HashSet::new()), 0.0);
        assert_eq!(Reca::jaccard(&a, &a), 1.0);
    }

    #[test]
    fn augmentation_comes_from_other_tables() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(99));
        let bench = semtab_like(&world, &SemTabConfig::tiny(99));
        let vocab = build_vocab([], &[&bench.dataset], 4000);
        let tokenizer = kglink_nn::Tokenizer::new(vocab);
        let mut reca = Reca::new(PlmConfig::default());
        reca.store = bench
            .dataset
            .tables_in(Split::Train)
            .flat_map(|t| {
                (0..t.n_cols()).map(|c| {
                    let tokens = Reca::column_tokens(t, c, &tokenizer);
                    StoredColumn {
                        table: t.id,
                        token_set: tokens.iter().copied().collect(),
                        tokens,
                    }
                })
            })
            .collect();
        let t = bench.dataset.tables_in(Split::Test).next().unwrap();
        let tokens = Reca::column_tokens(t, 0, &tokenizer);
        if let Some(similar) = reca.most_similar(t.id, &tokens) {
            assert_ne!(similar.table, t.id);
        }
    }

    #[test]
    fn sequence_is_single_column_with_cls_anchor() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(100));
        let bench = semtab_like(&world, &SemTabConfig::tiny(100));
        let vocab = build_vocab([], &[&bench.dataset], 4000);
        let tokenizer = kglink_nn::Tokenizer::new(vocab);
        let reca = Reca::new(PlmConfig::default());
        let t = &bench.dataset.tables[0];
        let seq = reca.sequence_for(t, 0, &tokenizer);
        assert_eq!(seq.anchors.len(), 1);
        assert_eq!(seq.labels.len(), 1);
        assert_eq!(seq.ids[0], special::CLS);
    }

    #[test]
    fn empty_columns_produce_valid_sequences() {
        let vocab = build_vocab(["x"], &[], 100);
        let tokenizer = kglink_nn::Tokenizer::new(vocab);
        let reca = Reca::new(PlmConfig::default());
        let t = Table::new(
            TableId(0),
            vec![],
            vec![vec![CellValue::Empty, CellValue::Empty]],
            vec![LabelId(0)],
        );
        let seq = reca.sequence_for(&t, 0, &tokenizer);
        assert_eq!(seq.ids, vec![special::CLS, special::SEP]);
    }
}
