//! TaBERT-like baseline: row-major table linearization with span pooling.
//!
//! TaBERT (Yin et al., ACL'20) encodes a content snapshot of the table row
//! by row and derives column representations by pooling over each column's
//! cell tokens. The skeleton here keeps both properties: row-major
//! serialization (so the model still sees intra-table context, which the
//! paper credits for TaBERT's strong Table IV numbers) and mean-pooled
//! column representations instead of per-column `[CLS]` tokens.

use crate::env::{BenchEnv, CtaModel};
use crate::plm::{encode_cell, Anchor, ColumnSeq, PlmConfig, PlmCore};
use kglink_nn::{special, Tokenizer};
use kglink_table::{Dataset, LabelId, Split, Table};

const TOKENS_PER_CELL: usize = 3;
const MAX_ROWS: usize = 3;
const MAX_COLUMNS: usize = 8;

/// The TaBERT-like annotator.
pub struct TaBert {
    core: Option<PlmCore>,
    pub config: PlmConfig,
}

impl TaBert {
    pub fn new(config: PlmConfig) -> Self {
        TaBert { core: None, config }
    }

    fn serialize_chunk(table: &Table, tokenizer: &Tokenizer) -> ColumnSeq {
        let mut ids = vec![special::CLS];
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); table.n_cols()];
        for r in 0..table.n_rows().min(MAX_ROWS) {
            for (c, pos) in positions.iter_mut().enumerate() {
                for t in encode_cell(table.cell(r, c), tokenizer)
                    .into_iter()
                    .take(TOKENS_PER_CELL)
                {
                    pos.push(ids.len());
                    ids.push(t);
                }
                ids.push(special::SEP);
            }
        }
        let anchors = positions
            .into_iter()
            .map(|ps| {
                if ps.is_empty() {
                    // Empty column: fall back to the global [CLS].
                    Anchor::Pos(0)
                } else {
                    Anchor::Mean(ps)
                }
            })
            .collect();
        ColumnSeq {
            ids,
            anchors,
            labels: table.labels.clone(),
        }
    }

    /// Serialize a table row-major, splitting wide tables.
    pub fn serialize(table: &Table, tokenizer: &Tokenizer) -> Vec<ColumnSeq> {
        table
            .split_columns(MAX_COLUMNS)
            .iter()
            .map(|chunk| Self::serialize_chunk(chunk, tokenizer))
            .collect()
    }

    fn sequences(dataset: &Dataset, split: Split, tokenizer: &Tokenizer) -> Vec<ColumnSeq> {
        dataset
            .tables_in(split)
            .flat_map(|t| Self::serialize(t, tokenizer))
            .collect()
    }
}

impl CtaModel for TaBert {
    fn name(&self) -> &'static str {
        "TaBERT"
    }

    fn fit(&mut self, env: &BenchEnv<'_>, dataset: &Dataset) {
        let tok = env.resources.tokenizer;
        let train = Self::sequences(dataset, Split::Train, tok);
        let val = Self::sequences(dataset, Split::Validation, tok);
        let enc_cfg = kglink_nn::EncoderConfig::mini(tok.vocab.len());
        let mut core = PlmCore::new(
            enc_cfg,
            env.labels.len(),
            self.config.seed,
            env.resources.pretrained_encoder,
        );
        core.fit(&train, &val, &self.config);
        self.core = Some(core);
    }

    fn predict_table(&self, env: &BenchEnv<'_>, table: &Table) -> Vec<LabelId> {
        // kglink-lint: allow(panic-in-lib) — Baseline trait contract: the
        // bench harness always fits before predicting; a None here is a
        // harness bug, not a data condition to degrade on.
        let core = self.core.as_ref().expect("fit before predict");
        Self::serialize(table, env.resources.tokenizer)
            .iter()
            .flat_map(|seq| core.predict(seq))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_core::pipeline::build_vocab;
    use kglink_datagen::{semtab_like, SemTabConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};

    #[test]
    fn serialization_is_row_major_with_span_anchors() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(97));
        let bench = semtab_like(&world, &SemTabConfig::tiny(97));
        let vocab = build_vocab([], &[&bench.dataset], 4000);
        let tokenizer = kglink_nn::Tokenizer::new(vocab);
        let t = bench.dataset.tables.iter().find(|t| t.n_cols() >= 2).unwrap();
        let seqs = TaBert::serialize(t, &tokenizer);
        let total: usize = seqs.iter().map(|s| s.anchors.len()).sum();
        assert_eq!(total, t.n_cols());
        // Most anchors should be spans.
        let spans = seqs
            .iter()
            .flat_map(|s| &s.anchors)
            .filter(|a| matches!(a, Anchor::Mean(_)))
            .count();
        assert!(spans >= t.n_cols() - 1);
        // Sequence starts with a [CLS].
        assert_eq!(seqs[0].ids[0], special::CLS);
    }

    #[test]
    fn anchors_reference_valid_positions() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(98));
        let bench = semtab_like(&world, &SemTabConfig::tiny(98));
        let vocab = build_vocab([], &[&bench.dataset], 4000);
        let tokenizer = kglink_nn::Tokenizer::new(vocab);
        for t in bench.dataset.tables.iter().take(5) {
            for seq in TaBert::serialize(t, &tokenizer) {
                for a in &seq.anchors {
                    match a {
                        Anchor::Pos(p) => assert!(*p < seq.ids.len()),
                        Anchor::Mean(ps) => {
                            for &p in ps {
                                assert!(p < seq.ids.len());
                            }
                        }
                    }
                }
            }
        }
    }
}
