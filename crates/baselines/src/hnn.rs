//! HNN-like baseline: first-cell KG `type` attribute + shallow network.
//!
//! HNN (Chen et al., IJCAI'19) links **only the first cell** of each target
//! column to the KG and uses only the linked entity's `type` attribute
//! (`instance of` targets). Both simplifications are preserved here because
//! they are exactly what the paper criticizes: the single-cell linkage is
//! noise-sensitive, and restricting to the `type` attribute discards most
//! KG information — which is why HNN trails every PLM baseline in Table I
//! and collapses to 44%/18% in Table IV's no-KG subset.

use crate::env::{BenchEnv, CtaModel};
use crate::mlp::{Mlp, MlpConfig, Standardizer};
use kglink_kg::EntityId;
use kglink_table::{CellValue, Dataset, LabelId, Split, Table};
use std::collections::HashMap;

/// Number of non-KG auxiliary features. Deliberately minimal: HNN's
/// published design has no numeric-column handling and no text statistics
/// beyond the cell it links — the paper's Table IV shows the consequences.
const AUX_FEATURES: usize = 2;

/// The HNN-like annotator.
pub struct Hnn {
    mlp: Option<Mlp>,
    norm: Standardizer,
    /// KG type entity → feature slot, built from training columns.
    type_slots: HashMap<EntityId, usize>,
    pub config: MlpConfig,
}

impl Hnn {
    pub fn new(config: MlpConfig) -> Self {
        Hnn {
            mlp: None,
            norm: Standardizer::default(),
            type_slots: HashMap::new(),
            config,
        }
    }

    /// Types of the first linkable cell's best-linked entity — HNN's sole
    /// KG signal for a column.
    fn first_cell_types(env: &BenchEnv<'_>, table: &Table, c: usize) -> Vec<EntityId> {
        let first = table
            .column(c)
            .iter()
            .find(|cell| matches!(cell, CellValue::Text(_)));
        let Some(CellValue::Text(mention)) = first else {
            return Vec::new();
        };
        let hits = env.resources.backend.link_mention(mention, 1);
        match hits.first() {
            Some(&(e, _)) => env.resources.graph.types_of(e),
            None => Vec::new(),
        }
    }

    fn features(&self, env: &BenchEnv<'_>, table: &Table, c: usize) -> Vec<f32> {
        let mut f = vec![0.0f32; self.type_slots.len() + AUX_FEATURES];
        for ty in Self::first_cell_types(env, table, c) {
            if let Some(&slot) = self.type_slots.get(&ty) {
                f[slot] = 1.0;
            }
        }
        // Minimal auxiliary features (HNN consumes its linked cell's KG
        // types plus little else).
        let n = table.n_rows().max(1) as f32;
        let numeric = table
            .column(c)
            .iter()
            .filter(|v| matches!(v, CellValue::Number(_) | CellValue::Date(_)))
            .count() as f32;
        let empty = table
            .column(c)
            .iter()
            .filter(|v| matches!(v, CellValue::Empty))
            .count() as f32;
        let base = self.type_slots.len();
        f[base] = numeric / n;
        f[base + 1] = empty / n;
        f
    }
}

impl CtaModel for Hnn {
    fn name(&self) -> &'static str {
        "HNN"
    }

    fn fit(&mut self, env: &BenchEnv<'_>, dataset: &Dataset) {
        // Build the type-slot map from training columns' first-cell types.
        self.type_slots.clear();
        for t in dataset.tables_in(Split::Train) {
            for c in 0..t.n_cols() {
                for ty in Self::first_cell_types(env, t, c) {
                    let next = self.type_slots.len();
                    self.type_slots.entry(ty).or_insert(next);
                }
            }
        }
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for t in dataset.tables_in(Split::Train) {
            for c in 0..t.n_cols() {
                xs.push(self.features(env, t, c));
                ys.push(t.labels[c].index());
            }
        }
        self.norm = Standardizer::fit(&xs);
        let xs: Vec<Vec<f32>> = xs.iter().map(|x| self.norm.apply(x)).collect();
        let d_in = self.type_slots.len() + AUX_FEATURES;
        let mut mlp = Mlp::new(d_in, 24, env.labels.len(), self.config.seed);
        mlp.fit(&xs, &ys, &self.config);
        self.mlp = Some(mlp);
    }

    fn predict_table(&self, env: &BenchEnv<'_>, table: &Table) -> Vec<LabelId> {
        // kglink-lint: allow(panic-in-lib) — Baseline trait contract: the
        // bench harness always fits before predicting; a None here is a
        // harness bug, not a data condition to degrade on.
        let mlp = self.mlp.as_ref().expect("fit before predict");
        (0..table.n_cols())
            .map(|c| {
                let f = self.features(env, table, c);
                LabelId(mlp.predict(&self.norm.apply(&f)) as u32)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_core::pipeline::{build_vocab, Resources};
    use kglink_datagen::{semtab_like, SemTabConfig};
    use kglink_kg::{SyntheticWorld, WorldConfig};
    use kglink_nn::Tokenizer;
    use kglink_search::EntitySearcher;

    #[test]
    fn hnn_trains_and_beats_random_on_semtab_like() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(120));
        let bench = semtab_like(&world, &SemTabConfig::tiny(120));
        let searcher = EntitySearcher::build(&world.graph);
        let vocab = build_vocab([], &[&bench.dataset], 2000);
        let tokenizer = Tokenizer::new(vocab);
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&searcher)
            .tokenizer(&tokenizer)
            .build()
            .unwrap();
        let env = BenchEnv {
            resources: &resources,
            labels: &bench.dataset.labels,
            label_to_type: &bench.label_to_type,
        };
        let mut hnn = Hnn::new(MlpConfig::default());
        hnn.fit(&env, &bench.dataset);
        assert!(!hnn.type_slots.is_empty(), "KG types discovered in training");
        let summary = hnn.evaluate(&env, &bench.dataset, Split::Test);
        assert!(
            summary.accuracy > 1.0 / bench.dataset.labels.len() as f64,
            "{}",
            summary.accuracy
        );
    }

    #[test]
    fn first_cell_types_uses_only_the_first_linkable_cell() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(121));
        let bench = semtab_like(&world, &SemTabConfig::tiny(121));
        let searcher = EntitySearcher::build(&world.graph);
        let vocab = build_vocab([], &[&bench.dataset], 2000);
        let tokenizer = Tokenizer::new(vocab);
        let resources = Resources::builder()
            .graph(&world.graph)
            .backend(&searcher)
            .tokenizer(&tokenizer)
            .build()
            .unwrap();
        let env = BenchEnv {
            resources: &resources,
            labels: &bench.dataset.labels,
            label_to_type: &bench.label_to_type,
        };
        let t = &bench.dataset.tables[0];
        // The function returns the same thing regardless of later cells.
        let tys = Hnn::first_cell_types(&env, t, 0);
        let shortened = t.select_rows(&[0]);
        let tys_short = Hnn::first_cell_types(&env, &shortened, 0);
        assert_eq!(tys, tys_short);
    }
}
