//! Type-hierarchy reasoning over `subclass of` edges.
//!
//! The paper's *type granularity gap* (Figure 2a) is a property of the type
//! hierarchy: the KG proposes `Basketball player` (fine) where the dataset
//! label is `Name` (coarse, possibly outside the hierarchy entirely). These
//! helpers let experiments quantify that gap.

use crate::access::GraphAccess;
use crate::entity::EntityId;
use std::collections::{BTreeSet, VecDeque};

/// A view over the `subclass of` lattice of any [`GraphAccess`] store.
#[derive(Clone, Copy)]
pub struct TypeHierarchy<'g> {
    graph: &'g (dyn GraphAccess + 'g),
}

impl<'g> TypeHierarchy<'g> {
    /// Wrap a graph.
    pub fn new(graph: &'g (dyn GraphAccess + 'g)) -> Self {
        TypeHierarchy { graph }
    }

    /// All ancestors of `ty` (transitive `subclass of` targets), excluding
    /// `ty` itself, in BFS order.
    pub fn ancestors(&self, ty: EntityId) -> Vec<EntityId> {
        let mut seen: BTreeSet<EntityId> = BTreeSet::new();
        let mut order = Vec::new();
        let mut queue: VecDeque<EntityId> = self.graph.superclasses_of(ty).into();
        while let Some(t) = queue.pop_front() {
            if seen.insert(t) {
                order.push(t);
                queue.extend(self.graph.superclasses_of(t));
            }
        }
        order
    }

    /// Whether `sub` is `sup` or a transitive subclass of it.
    pub fn is_subtype_of(&self, sub: EntityId, sup: EntityId) -> bool {
        sub == sup || self.ancestors(sub).contains(&sup)
    }

    /// Depth of `ty`: number of edges to its furthest root. Roots have depth 0.
    pub fn depth(&self, ty: EntityId) -> usize {
        self.graph
            .superclasses_of(ty)
            .into_iter()
            .map(|p| 1 + self.depth(p))
            .max()
            .unwrap_or(0)
    }

    /// Granularity gap between a candidate type and a dataset label type:
    /// `Some(levels)` if one is an ancestor of the other, `None` if they are
    /// unrelated in the hierarchy (the hard case from Figure 2a).
    pub fn granularity_gap(&self, a: EntityId, b: EntityId) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        if self.is_subtype_of(a, b) || self.is_subtype_of(b, a) {
            return Some(self.depth(a).abs_diff(self.depth(b)));
        }
        None
    }

    /// Most specific common ancestor(s) of two types, if any.
    pub fn common_ancestors(&self, a: EntityId, b: EntityId) -> Vec<EntityId> {
        let anc_a: BTreeSet<EntityId> = self.ancestors(a).into_iter().chain([a]).collect();
        let anc_b: BTreeSet<EntityId> = self.ancestors(b).into_iter().chain([b]).collect();
        anc_a.intersection(&anc_b).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KgBuilder;
    use crate::graph::KnowledgeGraph;

    fn hierarchy() -> (KnowledgeGraph, EntityId, EntityId, EntityId, EntityId) {
        let mut b = KgBuilder::new();
        let person = b.add_type("Person", None);
        let athlete = b.add_type("Athlete", Some(person));
        let bballer = b.add_type("Basketball player", Some(athlete));
        let name = b.add_type("Name", None);
        (b.build(), person, athlete, bballer, name)
    }

    #[test]
    fn ancestors_are_transitive() {
        let (g, person, athlete, bballer, _) = hierarchy();
        let h = TypeHierarchy::new(&g);
        assert_eq!(h.ancestors(bballer), vec![athlete, person]);
        assert!(h.ancestors(person).is_empty());
    }

    #[test]
    fn subtype_checks() {
        let (g, person, athlete, bballer, name) = hierarchy();
        let h = TypeHierarchy::new(&g);
        assert!(h.is_subtype_of(bballer, person));
        assert!(h.is_subtype_of(athlete, athlete));
        assert!(!h.is_subtype_of(person, bballer));
        assert!(!h.is_subtype_of(bballer, name));
    }

    #[test]
    fn depth_counts_levels() {
        let (g, person, athlete, bballer, name) = hierarchy();
        let h = TypeHierarchy::new(&g);
        assert_eq!(h.depth(person), 0);
        assert_eq!(h.depth(athlete), 1);
        assert_eq!(h.depth(bballer), 2);
        assert_eq!(h.depth(name), 0);
    }

    #[test]
    fn granularity_gap_mirrors_figure_2a() {
        let (g, person, _, bballer, name) = hierarchy();
        let h = TypeHierarchy::new(&g);
        // Basketball player is two levels finer than Person.
        assert_eq!(h.granularity_gap(bballer, person), Some(2));
        // Name is outside the hierarchy of Basketball player: the paper's gap.
        assert_eq!(h.granularity_gap(bballer, name), None);
        assert_eq!(h.granularity_gap(name, name), Some(0));
    }

    #[test]
    fn common_ancestors_meet_at_person() {
        let mut b = KgBuilder::new();
        let person = b.add_type("Person", None);
        let athlete = b.add_type("Athlete", Some(person));
        let musician = b.add_type("Musician", Some(person));
        let g = b.build();
        let h = TypeHierarchy::new(&g);
        assert_eq!(h.common_ancestors(athlete, musician), vec![person]);
    }
}
