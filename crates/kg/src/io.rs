//! Knowledge-graph interchange: a line-oriented triples format.
//!
//! Lets users bring their own KG instead of the synthetic world. The format
//! is a pragmatic N-Triples-like TSV, one statement per line:
//!
//! ```text
//! # entity declarations
//! E <id> <schema> <is_type> <label>
//! A <id> <alias>
//! D <id> <description>
//! # edges
//! T <subject-id> <predicate-name> <object-id>
//! ```
//!
//! Ids are arbitrary strings; they are mapped to dense [`EntityId`]s on
//! load in first-seen order, so round-trips through this format are stable.

use crate::entity::{Entity, EntityId, NeSchema};
use crate::graph::KnowledgeGraph;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parse errors with line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KgIoError {
    BadRecord { line: usize, reason: String },
    UnknownEntity { line: usize, id: String },
}

impl std::fmt::Display for KgIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KgIoError::BadRecord { line, reason } => write!(f, "line {line}: {reason}"),
            KgIoError::UnknownEntity { line, id } => {
                write!(f, "line {line}: unknown entity id {id:?}")
            }
        }
    }
}

impl std::error::Error for KgIoError {}

fn schema_name(s: NeSchema) -> &'static str {
    match s {
        NeSchema::Person => "person",
        NeSchema::Date => "date",
        NeSchema::Organization => "organization",
        NeSchema::Place => "place",
        NeSchema::Work => "work",
        NeSchema::Biology => "biology",
        NeSchema::Concept => "concept",
        NeSchema::Other => "other",
    }
}

fn schema_from(name: &str) -> Option<NeSchema> {
    Some(match name {
        "person" => NeSchema::Person,
        "date" => NeSchema::Date,
        "organization" => NeSchema::Organization,
        "place" => NeSchema::Place,
        "work" => NeSchema::Work,
        "biology" => NeSchema::Biology,
        "concept" => NeSchema::Concept,
        "other" => NeSchema::Other,
        _ => return None,
    })
}

/// Serialize a graph to the triples text format.
pub fn export_triples(graph: &KnowledgeGraph) -> String {
    let mut out = String::new();
    out.push_str("# kglink knowledge graph export v1\n");
    for (id, e) in graph.entities() {
        let _ = writeln!(
            out,
            "E\t{}\t{}\t{}\t{}",
            id.0,
            schema_name(e.schema),
            u8::from(e.is_type),
            e.label.replace(['\t', '\n'], " ")
        );
        for alias in &e.aliases {
            let _ = writeln!(out, "A\t{}\t{}", id.0, alias.replace(['\t', '\n'], " "));
        }
        if !e.description.is_empty() {
            let _ = writeln!(out, "D\t{}\t{}", id.0, e.description.replace(['\t', '\n'], " "));
        }
    }
    for (id, _) in graph.entities() {
        for edge in graph.outgoing(id) {
            let _ = writeln!(
                out,
                "T\t{}\t{}\t{}",
                id.0,
                graph.predicate_name(edge.predicate),
                edge.target.0
            );
        }
    }
    out
}

/// Parse the triples text format into a graph.
pub fn import_triples(text: &str) -> Result<KnowledgeGraph, KgIoError> {
    let mut graph = KnowledgeGraph::new();
    let mut ids: HashMap<String, EntityId> = HashMap::new();
    // First pass: entities and attributes.
    for (ln, raw) in text.lines().enumerate() {
        let line = ln + 1;
        let trimmed = raw.trim_end();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.splitn(5, '\t');
        let tag = parts.next().unwrap_or("");
        match tag {
            "E" => {
                let id = parts.next().ok_or_else(|| bad(line, "missing id"))?;
                let schema = parts.next().ok_or_else(|| bad(line, "missing schema"))?;
                let is_type = parts.next().ok_or_else(|| bad(line, "missing is_type"))?;
                let label = parts.next().ok_or_else(|| bad(line, "missing label"))?;
                let schema = schema_from(schema)
                    .ok_or_else(|| bad(line, &format!("unknown schema {schema:?}")))?;
                let mut entity = Entity::new(label, schema);
                entity.is_type = is_type == "1";
                let eid = graph.add_entity(entity);
                if ids.insert(id.to_string(), eid).is_some() {
                    return Err(bad(line, &format!("duplicate entity id {id:?}")));
                }
            }
            "A" | "D" | "T" => {} // second pass
            other => return Err(bad(line, &format!("unknown record tag {other:?}"))),
        }
    }
    // Second pass: aliases, descriptions, edges (collected, then the graph
    // is rebuilt with attributes folded in — the graph has no mutable
    // entity accessor by design).
    let mut aliases: HashMap<EntityId, Vec<String>> = HashMap::new();
    let mut descriptions: HashMap<EntityId, String> = HashMap::new();
    let mut edges: Vec<(EntityId, String, EntityId)> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = ln + 1;
        let trimmed = raw.trim_end();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.splitn(4, '\t');
        match parts.next().unwrap_or("") {
            "A" => {
                let id = parts.next().unwrap_or("");
                let value = parts.next().unwrap_or("").to_string();
                let &eid = ids.get(id).ok_or_else(|| KgIoError::UnknownEntity {
                    line,
                    id: id.to_string(),
                })?;
                aliases.entry(eid).or_default().push(value);
            }
            "D" => {
                let id = parts.next().unwrap_or("");
                let value = parts.next().unwrap_or("").to_string();
                let &eid = ids.get(id).ok_or_else(|| KgIoError::UnknownEntity {
                    line,
                    id: id.to_string(),
                })?;
                descriptions.insert(eid, value);
            }
            "T" => {
                let s = parts.next().ok_or_else(|| bad(line, "missing subject"))?;
                let p = parts.next().ok_or_else(|| bad(line, "missing predicate"))?;
                let o = parts.next().ok_or_else(|| bad(line, "missing object"))?;
                let &sid = ids.get(s).ok_or_else(|| KgIoError::UnknownEntity {
                    line,
                    id: s.to_string(),
                })?;
                let &oid = ids.get(o).ok_or_else(|| KgIoError::UnknownEntity {
                    line,
                    id: o.to_string(),
                })?;
                edges.push((sid, p.to_string(), oid));
            }
            _ => {}
        }
    }
    // Rebuild the graph with attributes included (entities were added in
    // file order, so indices line up).
    let mut rebuilt = KnowledgeGraph::new();
    for (eid, e) in graph.entities() {
        let mut entity = e.clone();
        if let Some(a) = aliases.remove(&eid) {
            entity.aliases = a;
        }
        if let Some(d) = descriptions.remove(&eid) {
            entity.description = d;
        }
        rebuilt.add_entity(entity);
    }
    for (s, p, o) in edges {
        let pid = rebuilt.intern_predicate(&p);
        rebuilt.add_edge(s, pid, o);
    }
    Ok(rebuilt)
}

fn bad(line: usize, reason: &str) -> KgIoError {
    KgIoError::BadRecord {
        line,
        reason: reason.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KgBuilder;
    use crate::synthetic::{SyntheticWorld, WorldConfig};

    #[test]
    fn round_trip_preserves_everything() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(8));
        let text = export_triples(&world.graph);
        let back = import_triples(&text).unwrap();
        assert_eq!(back.len(), world.graph.len());
        assert_eq!(back.edge_count(), world.graph.edge_count());
        for (id, e) in world.graph.entities() {
            let b = back.entity(id);
            assert_eq!(b.label, e.label);
            assert_eq!(b.schema, e.schema);
            assert_eq!(b.is_type, e.is_type);
            assert_eq!(b.aliases, e.aliases);
        }
        // Structure preserved: one-hop neighborhoods match.
        for (id, _) in world.graph.entities().take(50) {
            assert_eq!(back.one_hop(id), world.graph.one_hop(id));
        }
    }

    #[test]
    fn import_rejects_unknown_tags_and_ids() {
        assert!(matches!(
            import_triples("X\t1\tperson\t0\tAlice\n"),
            Err(KgIoError::BadRecord { line: 1, .. })
        ));
        assert!(matches!(
            import_triples("E\t1\tperson\t0\tAlice\nT\t1\tknows\t99\n"),
            Err(KgIoError::UnknownEntity { line: 2, .. })
        ));
        assert!(matches!(
            import_triples("E\t1\tklingon\t0\tAlice\n"),
            Err(KgIoError::BadRecord { .. })
        ));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let text = "E\ta\tperson\t0\tAlice\nE\ta\tperson\t0\tBob\n";
        assert!(matches!(import_triples(text), Err(KgIoError::BadRecord { .. })));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = import_triples("# hello\n\nE\t1\tconcept\t1\tCity\n").unwrap();
        assert_eq!(g.len(), 1);
        assert!(g.entity(EntityId(0)).is_type);
    }

    #[test]
    fn predicates_survive_round_trip() {
        let mut b = KgBuilder::new();
        let ty = b.add_type("City", None);
        let a = b.instance("Springfield", NeSchema::Place, ty);
        let c = b.instance("Norland", NeSchema::Place, ty);
        let p = b.predicate("country");
        b.relate(a, p, c);
        let g = b.build();
        let back = import_triples(&export_triples(&g)).unwrap();
        let pid = back.predicate_id("country").expect("predicate preserved");
        assert!(back.outgoing(a).iter().any(|e| e.predicate == pid && e.target == c));
    }
}
