//! Knowledge-graph interchange: a line-oriented triples format.
//!
//! Lets users bring their own KG instead of the synthetic world. The format
//! is a pragmatic N-Triples-like TSV, one statement per line:
//!
//! ```text
//! # entity declarations
//! E <id> <schema> <is_type> <label>
//! A <id> <alias>
//! D <id> <description>
//! # edges
//! T <subject-id> <predicate-name> <object-id>
//! ```
//!
//! Ids are arbitrary strings; they are mapped to dense [`EntityId`]s on
//! load in first-seen order, so round-trips through this format are stable.

use crate::entity::{Entity, EntityId, NeSchema, PredicateId};
use crate::graph::KnowledgeGraph;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::BufRead;

/// Parse errors with line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KgIoError {
    BadRecord { line: usize, reason: String },
    UnknownEntity { line: usize, id: String },
    /// The underlying reader failed. `line` is the 1-based number of the
    /// line being read when the error surfaced.
    Io { line: usize, message: String },
}

impl std::fmt::Display for KgIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KgIoError::BadRecord { line, reason } => write!(f, "line {line}: {reason}"),
            KgIoError::UnknownEntity { line, id } => {
                write!(f, "line {line}: unknown entity id {id:?}")
            }
            KgIoError::Io { line, message } => write!(f, "line {line}: I/O error: {message}"),
        }
    }
}

impl std::error::Error for KgIoError {}

fn schema_name(s: NeSchema) -> &'static str {
    match s {
        NeSchema::Person => "person",
        NeSchema::Date => "date",
        NeSchema::Organization => "organization",
        NeSchema::Place => "place",
        NeSchema::Work => "work",
        NeSchema::Biology => "biology",
        NeSchema::Concept => "concept",
        NeSchema::Other => "other",
    }
}

fn schema_from(name: &str) -> Option<NeSchema> {
    Some(match name {
        "person" => NeSchema::Person,
        "date" => NeSchema::Date,
        "organization" => NeSchema::Organization,
        "place" => NeSchema::Place,
        "work" => NeSchema::Work,
        "biology" => NeSchema::Biology,
        "concept" => NeSchema::Concept,
        "other" => NeSchema::Other,
        _ => return None,
    })
}

/// Serialize a graph to the triples text format.
pub fn export_triples(graph: &KnowledgeGraph) -> String {
    let mut out = String::new();
    out.push_str("# kglink knowledge graph export v1\n");
    for (id, e) in graph.entities() {
        let _ = writeln!(
            out,
            "E\t{}\t{}\t{}\t{}",
            id.0,
            schema_name(e.schema),
            u8::from(e.is_type),
            e.label.replace(['\t', '\n'], " ")
        );
        for alias in &e.aliases {
            let _ = writeln!(out, "A\t{}\t{}", id.0, alias.replace(['\t', '\n'], " "));
        }
        if !e.description.is_empty() {
            let _ = writeln!(out, "D\t{}\t{}", id.0, e.description.replace(['\t', '\n'], " "));
        }
    }
    for (id, _) in graph.entities() {
        for edge in graph.outgoing(id) {
            let _ = writeln!(
                out,
                "T\t{}\t{}\t{}",
                id.0,
                graph.predicate_name(edge.predicate),
                edge.target.0
            );
        }
    }
    out
}

/// Parse the triples text format into a graph.
///
/// Thin wrapper over [`import_triples_from`] for callers that already hold
/// the whole document in memory.
pub fn import_triples(text: &str) -> Result<KnowledgeGraph, KgIoError> {
    import_triples_from(text.as_bytes())
}

/// An entity reference in a record that arrived before its `E` declaration.
/// Resolution is deferred to end-of-stream so declaration order stays as
/// flexible as it was with the old whole-document parser.
enum Pending {
    Alias { line: usize, id: String, value: String },
    Description { line: usize, id: String, value: String },
    Edge { line: usize, subject: String, predicate: PredicateId, object: String },
}

/// Parse the triples format from a buffered reader in a single streaming
/// pass, holding only the graph under construction (plus an edge buffer) in
/// memory — never the whole document. This is the entry point for
/// multi-million-entity world files.
///
/// Records referencing entities declared *later* in the stream are legal
/// (the old two-pass parser accepted them) and are resolved at end of
/// stream; for such out-of-order documents, forward-referencing aliases and
/// edges are applied after all in-order ones. Exports produced by
/// [`export_triples`] declare every entity before referencing it, so their
/// round-trip is byte-order faithful.
pub fn import_triples_from(reader: impl BufRead) -> Result<KnowledgeGraph, KgIoError> {
    let mut entities: Vec<Entity> = Vec::new();
    let mut ids: HashMap<String, EntityId> = HashMap::new();
    // Predicates interned up front so buffered edges store a dense id, not
    // a cloned name.
    let mut graph = KnowledgeGraph::new();
    let mut edges: Vec<(EntityId, PredicateId, EntityId)> = Vec::new();
    let mut pending: Vec<Pending> = Vec::new();

    let mut line = 0usize;
    for raw in reader.lines() {
        line += 1;
        let raw = raw.map_err(|e| KgIoError::Io {
            line,
            message: e.to_string(),
        })?;
        let trimmed = raw.trim_end();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let tag = trimmed.split('\t').next().unwrap_or("");
        match tag {
            "E" => {
                let mut parts = trimmed.splitn(5, '\t').skip(1);
                let id = parts.next().ok_or_else(|| bad(line, "missing id"))?;
                let schema = parts.next().ok_or_else(|| bad(line, "missing schema"))?;
                let is_type = parts.next().ok_or_else(|| bad(line, "missing is_type"))?;
                let label = parts.next().ok_or_else(|| bad(line, "missing label"))?;
                let schema = schema_from(schema)
                    .ok_or_else(|| bad(line, &format!("unknown schema {schema:?}")))?;
                let mut entity = Entity::new(label, schema);
                entity.is_type = is_type == "1";
                // kglink-lint: allow(panic-in-lib) — capacity guard mirroring
                // KnowledgeGraph::add_entity: ids are u32 by design.
                let eid = EntityId(u32::try_from(entities.len()).expect("more than u32::MAX entities"));
                entities.push(entity);
                if ids.insert(id.to_string(), eid).is_some() {
                    return Err(bad(line, &format!("duplicate entity id {id:?}")));
                }
            }
            "A" | "D" => {
                let mut parts = trimmed.splitn(3, '\t').skip(1);
                let id = parts.next().unwrap_or("");
                let value = parts.next().unwrap_or("").to_string();
                match ids.get(id) {
                    Some(&eid) => apply_attr(&mut entities, eid, tag, value),
                    None if tag == "A" => pending.push(Pending::Alias {
                        line,
                        id: id.to_string(),
                        value,
                    }),
                    None => pending.push(Pending::Description {
                        line,
                        id: id.to_string(),
                        value,
                    }),
                }
            }
            "T" => {
                let mut parts = trimmed.splitn(4, '\t').skip(1);
                let s = parts.next().ok_or_else(|| bad(line, "missing subject"))?;
                let p = parts.next().ok_or_else(|| bad(line, "missing predicate"))?;
                let o = parts.next().ok_or_else(|| bad(line, "missing object"))?;
                let pid = graph.intern_predicate(p);
                match (ids.get(s), ids.get(o)) {
                    (Some(&sid), Some(&oid)) => edges.push((sid, pid, oid)),
                    _ => pending.push(Pending::Edge {
                        line,
                        subject: s.to_string(),
                        predicate: pid,
                        object: o.to_string(),
                    }),
                }
            }
            other => return Err(bad(line, &format!("unknown record tag {other:?}"))),
        }
    }

    // Resolve forward references now that every entity is known.
    for p in pending {
        match p {
            Pending::Alias { line, id, value } => {
                let eid = resolve(&ids, &id, line)?;
                apply_attr(&mut entities, eid, "A", value);
            }
            Pending::Description { line, id, value } => {
                let eid = resolve(&ids, &id, line)?;
                apply_attr(&mut entities, eid, "D", value);
            }
            Pending::Edge {
                line,
                subject,
                predicate,
                object,
            } => {
                let sid = resolve(&ids, &subject, line)?;
                let oid = resolve(&ids, &object, line)?;
                edges.push((sid, predicate, oid));
            }
        }
    }

    for entity in entities {
        graph.add_entity(entity);
    }
    for (s, p, o) in edges {
        graph.add_edge(s, p, o);
    }
    Ok(graph)
}

fn resolve(ids: &HashMap<String, EntityId>, id: &str, line: usize) -> Result<EntityId, KgIoError> {
    ids.get(id).copied().ok_or_else(|| KgIoError::UnknownEntity {
        line,
        id: id.to_string(),
    })
}

fn apply_attr(entities: &mut [Entity], eid: EntityId, tag: &str, value: String) {
    let e = &mut entities[eid.index()];
    if tag == "A" {
        e.aliases.push(value);
    } else {
        e.description = value;
    }
}

fn bad(line: usize, reason: &str) -> KgIoError {
    KgIoError::BadRecord {
        line,
        reason: reason.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KgBuilder;
    use crate::synthetic::{SyntheticWorld, WorldConfig};

    #[test]
    fn round_trip_preserves_everything() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(8));
        let text = export_triples(&world.graph);
        let back = import_triples(&text).unwrap();
        assert_eq!(back.len(), world.graph.len());
        assert_eq!(back.edge_count(), world.graph.edge_count());
        for (id, e) in world.graph.entities() {
            let b = back.entity(id);
            assert_eq!(b.label, e.label);
            assert_eq!(b.schema, e.schema);
            assert_eq!(b.is_type, e.is_type);
            assert_eq!(b.aliases, e.aliases);
        }
        // Structure preserved: one-hop neighborhoods match.
        for (id, _) in world.graph.entities().take(50) {
            assert_eq!(back.one_hop(id), world.graph.one_hop(id));
        }
    }

    #[test]
    fn import_rejects_unknown_tags_and_ids() {
        assert!(matches!(
            import_triples("X\t1\tperson\t0\tAlice\n"),
            Err(KgIoError::BadRecord { line: 1, .. })
        ));
        assert!(matches!(
            import_triples("E\t1\tperson\t0\tAlice\nT\t1\tknows\t99\n"),
            Err(KgIoError::UnknownEntity { line: 2, .. })
        ));
        assert!(matches!(
            import_triples("E\t1\tklingon\t0\tAlice\n"),
            Err(KgIoError::BadRecord { .. })
        ));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let text = "E\ta\tperson\t0\tAlice\nE\ta\tperson\t0\tBob\n";
        assert!(matches!(import_triples(text), Err(KgIoError::BadRecord { .. })));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = import_triples("# hello\n\nE\t1\tconcept\t1\tCity\n").unwrap();
        assert_eq!(g.len(), 1);
        assert!(g.entity(EntityId(0)).is_type);
    }

    #[test]
    fn streaming_import_matches_string_import() {
        let world = SyntheticWorld::generate(&WorldConfig::tiny(9));
        let text = export_triples(&world.graph);
        // A deliberately tiny BufReader capacity forces many refills, so the
        // parser really runs incrementally.
        let reader = std::io::BufReader::with_capacity(16, text.as_bytes());
        let streamed = import_triples_from(reader).unwrap();
        let whole = import_triples(&text).unwrap();
        assert_eq!(streamed.len(), whole.len());
        assert_eq!(streamed.edge_count(), whole.edge_count());
        for (id, e) in whole.entities() {
            assert_eq!(streamed.entity(id).label, e.label);
            assert_eq!(streamed.entity(id).aliases, e.aliases);
            assert_eq!(streamed.one_hop(id), whole.one_hop(id));
        }
    }

    #[test]
    fn forward_references_resolve_at_end_of_stream() {
        // Alias and edge lines before the entities they reference.
        let text = "A\tb\tSpring\nT\ta\tcountry\tb\nE\ta\tplace\t0\tNorland\nE\tb\tplace\t0\tSpringfield\n";
        let g = import_triples(text).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.entity(EntityId(1)).aliases, vec!["Spring"]);
        let pid = g.predicate_id("country").unwrap();
        assert!(g.outgoing(EntityId(0)).iter().any(|e| e.predicate == pid));
    }

    #[test]
    fn reader_failures_surface_as_typed_io_errors() {
        struct FailAfter(usize);
        impl std::io::Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("disk gone"));
                }
                self.0 -= 1;
                let line = b"E\tx1\tperson\t0\tAlice\n";
                // A fresh id per call to avoid duplicate-id errors.
                let rendered = format!("E\tid{}\tperson\t0\tAlice\n", self.0);
                let n = rendered.len().min(buf.len()).min(line.len().max(1));
                buf[..n].copy_from_slice(&rendered.as_bytes()[..n]);
                Ok(n)
            }
        }
        let reader = std::io::BufReader::new(FailAfter(2));
        match import_triples_from(reader) {
            Err(KgIoError::Io { message, .. }) => assert!(message.contains("disk gone")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn predicates_survive_round_trip() {
        let mut b = KgBuilder::new();
        let ty = b.add_type("City", None);
        let a = b.instance("Springfield", NeSchema::Place, ty);
        let c = b.instance("Norland", NeSchema::Place, ty);
        let p = b.predicate("country");
        b.relate(a, p, c);
        let g = b.build();
        let back = import_triples(&export_triples(&g)).unwrap();
        let pid = back.predicate_id("country").expect("predicate preserved");
        assert!(back.outgoing(a).iter().any(|e| e.predicate == pid && e.target == c));
    }
}
