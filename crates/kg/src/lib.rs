//! An in-memory, WikiData-like knowledge graph substrate.
//!
//! The original KGLink system (ICDE 2024) links table cell mentions against
//! the full WikiData knowledge graph served through Elasticsearch. This crate
//! provides the equivalent substrate for the reproduction:
//!
//! * [`KnowledgeGraph`] — an entity store with labels, aliases, descriptions,
//!   a named-entity schema category per entity, and typed directed edges with
//!   forward and inverse adjacency. One-hop neighborhoods (the core KG
//!   primitive consumed by KGLink's Part 1) are first-class queries.
//! * [`ontology`] — `instance of` / `subclass of` reasoning helpers used to
//!   study the paper's *type granularity gap*.
//! * [`synthetic`] — a deterministic generator for a small "world" with the
//!   same structural properties as the WikiData slices behind SemTab and
//!   VizNet: multi-level type hierarchies (`Person ⊃ Athlete ⊃ Basketball
//!   player`), relation-rich instances, aliases, and noise knobs.
//!
//! All identifiers are dense `u32` indices so that downstream code (BM25
//! index, entity filters) can use flat vectors instead of hash maps on the
//! hot path.

#![deny(deprecated)]

pub mod access;
pub mod builder;
pub mod entity;
pub mod graph;
pub mod io;
pub mod ontology;
pub mod stats;
pub mod synthetic;

pub use access::GraphAccess;
pub use builder::KgBuilder;
pub use entity::{Entity, EntityId, NeSchema, PredicateId};
pub use graph::{Edge, KnowledgeGraph};
pub use ontology::TypeHierarchy;
pub use stats::KgStats;
pub use synthetic::{SyntheticWorld, WorldConfig};

/// Well-known predicate names shared between the generator and the pipeline.
pub mod predicates {
    /// WikiData P31.
    pub const INSTANCE_OF: &str = "instance of";
    /// WikiData P279.
    pub const SUBCLASS_OF: &str = "subclass of";
    /// WikiData P54.
    pub const MEMBER_OF_SPORTS_TEAM: &str = "member of sports team";
    /// WikiData P413.
    pub const POSITION_PLAYED: &str = "position played";
    /// WikiData P641.
    pub const SPORT: &str = "sport";
    /// WikiData P175.
    pub const PERFORMER: &str = "performer";
    /// WikiData P86.
    pub const COMPOSER: &str = "composer";
    /// WikiData P57.
    pub const DIRECTOR: &str = "director";
    /// WikiData P161.
    pub const CAST_MEMBER: &str = "cast member";
    /// WikiData P17.
    pub const COUNTRY: &str = "country";
    /// WikiData P36.
    pub const CAPITAL: &str = "capital";
    /// WikiData P131.
    pub const LOCATED_IN: &str = "located in";
    /// WikiData P702.
    pub const ENCODED_BY: &str = "encoded by";
    /// WikiData P527.
    pub const HAS_PART: &str = "has part";
    /// WikiData P463.
    pub const MEMBER_OF: &str = "member of";
    /// WikiData P136.
    pub const GENRE: &str = "genre";
    /// WikiData P69.
    pub const EDUCATED_AT: &str = "educated at";
    /// WikiData P108.
    pub const EMPLOYER: &str = "employer";
    /// WikiData P166.
    pub const AWARD_RECEIVED: &str = "award received";
    /// WikiData P1344.
    pub const PARTICIPANT_IN: &str = "participant in";
    /// WikiData P403 (river → mouth).
    pub const MOUTH_OF_WATERCOURSE: &str = "mouth of watercourse";
    /// WikiData P50.
    pub const AUTHOR: &str = "author";
    /// WikiData P407.
    pub const LANGUAGE_OF_WORK: &str = "language of work";
    /// WikiData P106.
    pub const OCCUPATION: &str = "occupation";
}
