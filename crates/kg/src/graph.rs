//! The knowledge-graph store: entities plus typed, bidirectional adjacency.

use crate::entity::{Entity, EntityId, PredicateId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A directed, labeled edge `(subject) --predicate--> (object)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    pub predicate: PredicateId,
    pub target: EntityId,
}

/// An in-memory knowledge graph.
///
/// Storage is column-oriented: one `Vec<Entity>` plus per-entity outgoing and
/// incoming edge lists. The two KGLink-critical queries are:
///
/// * [`KnowledgeGraph::one_hop`] — the set `N(e)` of entities reachable in
///   one hop, in **either direction**. The paper's Figure 5 treats the album
///   `Rust` and its performer `Peter Steele` as mutual one-hop neighbors,
///   i.e. neighborhoods are undirected.
/// * [`KnowledgeGraph::types_of`] — targets of `instance of` edges.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnowledgeGraph {
    entities: Vec<Entity>,
    predicates: Vec<String>,
    outgoing: Vec<Vec<Edge>>,
    incoming: Vec<Vec<Edge>>,
    /// Predicate id of `instance of`, if registered.
    instance_of: Option<PredicateId>,
    /// Predicate id of `subclass of`, if registered.
    subclass_of: Option<PredicateId>,
}

impl KnowledgeGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entities.
    #[inline]
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the graph has no entities.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.outgoing.iter().map(Vec::len).sum()
    }

    /// Register (or look up) a predicate by name, returning its id.
    pub fn intern_predicate(&mut self, name: &str) -> PredicateId {
        if let Some(pos) = self.predicates.iter().position(|p| p == name) {
            return PredicateId(pos as u16);
        }
        let id = PredicateId(
            // kglink-lint: allow(panic-in-lib) — capacity guard: the KGLink
            // predicate vocabulary is a few dozen relations (Wikidata uses
            // ~11k); a typed error would ripple through every intern call
            // site for a bound no real graph approaches.
            u16::try_from(self.predicates.len()).expect("more than u16::MAX predicates"),
        );
        self.predicates.push(name.to_string());
        if name == crate::predicates::INSTANCE_OF {
            self.instance_of = Some(id);
        } else if name == crate::predicates::SUBCLASS_OF {
            self.subclass_of = Some(id);
        }
        id
    }

    /// Look up a predicate id by name without interning.
    pub fn predicate_id(&self, name: &str) -> Option<PredicateId> {
        self.predicates
            .iter()
            .position(|p| p == name)
            .map(|pos| PredicateId(pos as u16))
    }

    /// Name of a predicate.
    #[inline]
    pub fn predicate_name(&self, p: PredicateId) -> &str {
        &self.predicates[p.index()]
    }

    /// Number of interned predicates. Predicate ids are dense, so
    /// `0..predicate_count()` enumerates them (converters that re-intern a
    /// graph's vocabulary in id order depend on this).
    #[inline]
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Append an entity, returning its id.
    pub fn add_entity(&mut self, entity: Entity) -> EntityId {
        // kglink-lint: allow(panic-in-lib) — capacity guard: EntityId is u32
        // by design (4G entities ≫ the paper's 100M-entity KG); overflow is
        // a build-time sizing decision, not a runtime data condition.
        let id = EntityId(u32::try_from(self.entities.len()).expect("more than u32::MAX entities"));
        self.entities.push(entity);
        self.outgoing.push(Vec::new());
        self.incoming.push(Vec::new());
        id
    }

    /// Add a directed edge. Both adjacency directions are updated.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, subject: EntityId, predicate: PredicateId, object: EntityId) {
        assert!(subject.index() < self.entities.len(), "subject out of range");
        assert!(object.index() < self.entities.len(), "object out of range");
        self.outgoing[subject.index()].push(Edge {
            predicate,
            target: object,
        });
        self.incoming[object.index()].push(Edge {
            predicate,
            target: subject,
        });
    }

    /// The entity record for `id`.
    #[inline]
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// Preferred label of `id`.
    #[inline]
    pub fn label(&self, id: EntityId) -> &str {
        &self.entities[id.index()].label
    }

    /// Iterate over all `(id, entity)` pairs.
    pub fn entities(&self) -> impl Iterator<Item = (EntityId, &Entity)> {
        self.entities
            .iter()
            .enumerate()
            .map(|(i, e)| (EntityId(i as u32), e))
    }

    /// Outgoing edges of `id`.
    #[inline]
    pub fn outgoing(&self, id: EntityId) -> &[Edge] {
        &self.outgoing[id.index()]
    }

    /// Incoming edges of `id` (edge `target` is the *subject* on this side).
    #[inline]
    pub fn incoming(&self, id: EntityId) -> &[Edge] {
        &self.incoming[id.index()]
    }

    /// The one-hop neighborhood `N(e)`: all entities adjacent to `id` in
    /// either direction, deduplicated and sorted.
    pub fn one_hop(&self, id: EntityId) -> Vec<EntityId> {
        let out = &self.outgoing[id.index()];
        let inc = &self.incoming[id.index()];
        let mut set: BTreeSet<EntityId> = BTreeSet::new();
        for e in out.iter().chain(inc.iter()) {
            set.insert(e.target);
        }
        set.remove(&id);
        set.into_iter().collect()
    }

    /// One-hop neighborhood together with the connecting predicate, outgoing
    /// direction first. Used to build KGLink's feature sequence `S(e)`
    /// (Eq. 9): `s || (p || o)` for each neighbor `o` with predicate `p`.
    pub fn one_hop_with_predicates(&self, id: EntityId) -> Vec<(PredicateId, EntityId)> {
        let mut pairs: Vec<(PredicateId, EntityId)> = self.outgoing[id.index()]
            .iter()
            .chain(self.incoming[id.index()].iter())
            .map(|e| (e.predicate, e.target))
            .filter(|&(_, t)| t != id)
            .collect();
        // Order by predicate *name* so the result is stable across graphs
        // with different predicate interning orders (e.g. after an
        // export/import round trip).
        pairs.sort_unstable_by(|a, b| {
            self.predicate_name(a.0)
                .cmp(self.predicate_name(b.0))
                .then(a.1.cmp(&b.1))
        });
        pairs.dedup();
        pairs
    }

    /// Direct types of an entity: targets of its `instance of` edges.
    pub fn types_of(&self, id: EntityId) -> Vec<EntityId> {
        let Some(p31) = self.instance_of else {
            return Vec::new();
        };
        self.outgoing[id.index()]
            .iter()
            .filter(|e| e.predicate == p31)
            .map(|e| e.target)
            .collect()
    }

    /// Direct super-classes of a type entity: targets of `subclass of` edges.
    pub fn superclasses_of(&self, id: EntityId) -> Vec<EntityId> {
        let Some(p279) = self.subclass_of else {
            return Vec::new();
        };
        self.outgoing[id.index()]
            .iter()
            .filter(|e| e.predicate == p279)
            .map(|e| e.target)
            .collect()
    }

    /// The `instance of` predicate id, if any edge vocabulary registered it.
    #[inline]
    pub fn instance_of_predicate(&self) -> Option<PredicateId> {
        self.instance_of
    }

    /// The `subclass of` predicate id, if registered.
    #[inline]
    pub fn subclass_of_predicate(&self) -> Option<PredicateId> {
        self.subclass_of
    }

    /// All type entities (classes) in the graph.
    pub fn type_entities(&self) -> Vec<EntityId> {
        self.entities()
            .filter(|(_, e)| e.is_type)
            .map(|(id, _)| id)
            .collect()
    }

    /// Verbalize the outgoing facts of `id` as short sentences, used for the
    /// MLM pre-training corpus (the stand-in for BERT's web-scale pre-training).
    pub fn verbalize(&self, id: EntityId) -> Vec<String> {
        let subject = self.label(id);
        self.outgoing[id.index()]
            .iter()
            .map(|e| {
                format!(
                    "{} {} {} .",
                    subject,
                    self.predicate_name(e.predicate),
                    self.label(e.target)
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::NeSchema;
    use crate::predicates;

    fn toy() -> (KnowledgeGraph, EntityId, EntityId, EntityId) {
        let mut g = KnowledgeGraph::new();
        let p31 = g.intern_predicate(predicates::INSTANCE_OF);
        let performer = g.intern_predicate(predicates::PERFORMER);
        let musician = g.add_entity(Entity::new_type("Musician"));
        let steele = g.add_entity(Entity::new("Peter Steele", NeSchema::Person));
        let rust_album = g.add_entity(Entity::new("Rust", NeSchema::Work));
        g.add_edge(steele, p31, musician);
        g.add_edge(rust_album, performer, steele);
        (g, musician, steele, rust_album)
    }

    #[test]
    fn one_hop_is_bidirectional() {
        let (g, musician, steele, rust_album) = toy();
        // Peter Steele's neighbors: Musician (out) and Rust (in).
        let n = g.one_hop(steele);
        assert_eq!(n, vec![musician, rust_album]);
        // The album sees its performer.
        assert_eq!(g.one_hop(rust_album), vec![steele]);
    }

    #[test]
    fn types_of_follows_instance_of_only() {
        let (g, musician, steele, rust_album) = toy();
        assert_eq!(g.types_of(steele), vec![musician]);
        assert!(g.types_of(rust_album).is_empty());
    }

    #[test]
    fn predicate_interning_is_idempotent() {
        let mut g = KnowledgeGraph::new();
        let a = g.intern_predicate("performer");
        let b = g.intern_predicate("performer");
        assert_eq!(a, b);
        assert_eq!(g.predicate_name(a), "performer");
        assert_eq!(g.predicate_id("performer"), Some(a));
        assert_eq!(g.predicate_id("missing"), None);
    }

    #[test]
    fn one_hop_with_predicates_dedups_and_sorts() {
        let (g, _, steele, _) = toy();
        let pairs = g.one_hop_with_predicates(steele);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn verbalize_produces_triple_sentences() {
        let (g, _, steele, _) = toy();
        let sents = g.verbalize(steele);
        assert_eq!(sents, vec!["Peter Steele instance of Musician ."]);
    }

    #[test]
    fn edge_count_counts_directed_edges() {
        let (g, ..) = toy();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn self_loops_are_excluded_from_one_hop() {
        let mut g = KnowledgeGraph::new();
        let p = g.intern_predicate("related to");
        let a = g.add_entity(Entity::new("A", NeSchema::Other));
        g.add_edge(a, p, a);
        assert!(g.one_hop(a).is_empty());
        assert!(g.one_hop_with_predicates(a).is_empty());
    }
}
