//! Convenience builder for assembling graphs with string-keyed lookups.

use crate::entity::{Entity, EntityId, NeSchema, PredicateId};
use crate::graph::KnowledgeGraph;
use std::collections::HashMap;

/// Incremental graph builder.
///
/// Keeps a label → id map for *type* entities (type labels are unique by
/// construction) so generator code can wire `instance of` edges by name, and
/// interns predicates. Instance labels are allowed to collide (two people can
/// share a name), mirroring real KGs, so instances are addressed by id only.
#[derive(Debug, Default)]
pub struct KgBuilder {
    graph: KnowledgeGraph,
    type_ids: HashMap<String, EntityId>,
}

impl KgBuilder {
    /// Start an empty builder with the two ontology predicates registered.
    pub fn new() -> Self {
        let mut graph = KnowledgeGraph::new();
        graph.intern_predicate(crate::predicates::INSTANCE_OF);
        graph.intern_predicate(crate::predicates::SUBCLASS_OF);
        KgBuilder {
            graph,
            type_ids: HashMap::new(),
        }
    }

    /// Register a predicate and return its id.
    pub fn predicate(&mut self, name: &str) -> PredicateId {
        self.graph.intern_predicate(name)
    }

    /// Add (or fetch) a type entity by label. Optionally attach a
    /// `subclass of` edge to a parent type.
    pub fn add_type(&mut self, label: &str, parent: Option<EntityId>) -> EntityId {
        if let Some(&id) = self.type_ids.get(label) {
            if let Some(p) = parent {
                let p279 = self.graph.intern_predicate(crate::predicates::SUBCLASS_OF);
                if !self.graph.superclasses_of(id).contains(&p) {
                    self.graph.add_edge(id, p279, p);
                }
            }
            return id;
        }
        let id = self.graph.add_entity(Entity::new_type(label));
        self.type_ids.insert(label.to_string(), id);
        if let Some(p) = parent {
            let p279 = self.graph.intern_predicate(crate::predicates::SUBCLASS_OF);
            self.graph.add_edge(id, p279, p);
        }
        id
    }

    /// Look up a type entity by label.
    pub fn type_id(&self, label: &str) -> Option<EntityId> {
        self.type_ids.get(label).copied()
    }

    /// Add an instance entity with an `instance of` edge to `ty`.
    pub fn add_instance(&mut self, entity: Entity, ty: EntityId) -> EntityId {
        debug_assert!(
            self.graph.entity(ty).is_type,
            "instance must point at a type entity"
        );
        let id = self.graph.add_entity(entity);
        let p31 = self.graph.intern_predicate(crate::predicates::INSTANCE_OF);
        self.graph.add_edge(id, p31, ty);
        id
    }

    /// Add an instance entity without any `instance of` edge (simulates
    /// incomplete KG coverage — the paper's "missing entity linkages").
    pub fn add_untyped_instance(&mut self, entity: Entity) -> EntityId {
        self.graph.add_entity(entity)
    }

    /// Add a relation edge between two existing entities.
    pub fn relate(&mut self, subject: EntityId, predicate: PredicateId, object: EntityId) {
        self.graph.add_edge(subject, predicate, object);
    }

    /// Shorthand to create an instance with label, schema and type in one call.
    pub fn instance(&mut self, label: &str, schema: NeSchema, ty: EntityId) -> EntityId {
        self.add_instance(Entity::new(label, schema), ty)
    }

    /// Finish and return the graph.
    pub fn build(self) -> KnowledgeGraph {
        self.graph
    }

    /// Peek at the graph under construction.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_are_deduplicated_by_label() {
        let mut b = KgBuilder::new();
        let a1 = b.add_type("Athlete", None);
        let a2 = b.add_type("Athlete", None);
        assert_eq!(a1, a2);
        assert_eq!(b.type_id("Athlete"), Some(a1));
    }

    #[test]
    fn hierarchy_builds_subclass_edges() {
        let mut b = KgBuilder::new();
        let person = b.add_type("Person", None);
        let athlete = b.add_type("Athlete", Some(person));
        let bballer = b.add_type("Basketball player", Some(athlete));
        let g = b.build();
        assert_eq!(g.superclasses_of(bballer), vec![athlete]);
        assert_eq!(g.superclasses_of(athlete), vec![person]);
        assert!(g.superclasses_of(person).is_empty());
    }

    #[test]
    fn instances_get_instance_of_edges() {
        let mut b = KgBuilder::new();
        let musician = b.add_type("Musician", None);
        let steele = b.instance("Peter Steele", NeSchema::Person, musician);
        let g = b.build();
        assert_eq!(g.types_of(steele), vec![musician]);
    }

    #[test]
    fn untyped_instances_have_no_types() {
        let mut b = KgBuilder::new();
        let id = b.add_untyped_instance(Entity::new("orphan", NeSchema::Other));
        let g = b.build();
        assert!(g.types_of(id).is_empty());
    }

    #[test]
    fn re_adding_type_with_parent_attaches_edge_once() {
        let mut b = KgBuilder::new();
        let person = b.add_type("Person", None);
        let athlete1 = b.add_type("Athlete", None);
        let athlete2 = b.add_type("Athlete", Some(person));
        let athlete3 = b.add_type("Athlete", Some(person));
        assert_eq!(athlete1, athlete2);
        assert_eq!(athlete2, athlete3);
        let g = b.build();
        assert_eq!(g.superclasses_of(athlete1), vec![person]);
    }
}
