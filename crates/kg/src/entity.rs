//! Entity, predicate and named-entity-schema definitions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of an entity inside one [`crate::KnowledgeGraph`].
///
/// Identifiers are assigned contiguously by the [`crate::KgBuilder`], so they
/// can index flat `Vec`s. They are not stable across differently-configured
/// graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The index of this entity in the graph's entity table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Mirror WikiData's Q-identifiers for readability in logs.
        write!(f, "Q{}", self.0)
    }
}

/// Dense identifier of a predicate (edge label) inside one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PredicateId(pub u16);

impl PredicateId {
    /// The index of this predicate in the graph's predicate table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PredicateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Named-entity schema category of an entity.
///
/// KGLink uses spaCy's named entity schema to (a) decide that numeric/date
/// cell mentions must not be linked to the KG and (b) exclude `PERSON` and
/// `DATE` entities from the candidate *type* pool (paper §III-A, step 3).
/// This enum is the rule-based stand-in for that schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NeSchema {
    /// A human being — excluded from candidate types.
    Person,
    /// A calendar entity — excluded from candidate types.
    Date,
    /// Organizations: teams, bands, companies, universities.
    Organization,
    /// Geographic entities.
    Place,
    /// Creative works: films, albums, books.
    Work,
    /// Biological entities: proteins, genes.
    Biology,
    /// Abstract concepts, including most *type* entities.
    Concept,
    /// Anything else.
    #[default]
    Other,
}

impl NeSchema {
    /// Whether entities of this category may serve as a *candidate type*
    /// for a column. The paper's label-based filter removes `PERSON` and
    /// `DATE` because such entities "are not well-suited to represent column
    /// types within a table".
    #[inline]
    pub fn eligible_as_type(self) -> bool {
        !matches!(self, NeSchema::Person | NeSchema::Date)
    }
}

/// A knowledge-graph entity.
///
/// Mirrors the WikiData item fields KGLink consumes: a preferred label, a
/// set of alternative labels (aliases) that participate in BM25 retrieval,
/// a short description, and a schema category.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Entity {
    /// Preferred human-readable label (e.g. `"Peter Steele"`).
    pub label: String,
    /// Alternative labels, also indexed for retrieval.
    pub aliases: Vec<String>,
    /// Short description (e.g. `"American musician"`).
    pub description: String,
    /// Named-entity schema category.
    pub schema: NeSchema,
    /// Whether this entity is a *class* (a potential column type) rather
    /// than an instance. Type entities are the targets of `instance of`
    /// edges and the pool from which candidate types are drawn.
    pub is_type: bool,
}

impl Entity {
    /// Create an instance entity with the given label.
    pub fn new(label: impl Into<String>, schema: NeSchema) -> Self {
        Entity {
            label: label.into(),
            aliases: Vec::new(),
            description: String::new(),
            schema,
            is_type: false,
        }
    }

    /// Create a class/type entity with the given label.
    pub fn new_type(label: impl Into<String>) -> Self {
        Entity {
            label: label.into(),
            aliases: Vec::new(),
            description: String::new(),
            schema: NeSchema::Concept,
            is_type: true,
        }
    }

    /// Builder-style: attach a description.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Builder-style: attach an alias.
    pub fn with_alias(mut self, alias: impl Into<String>) -> Self {
        self.aliases.push(alias.into());
        self
    }

    /// All searchable strings for this entity: label then aliases.
    pub fn searchable_texts(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.label.as_str()).chain(self.aliases.iter().map(String::as_str))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_id_display_mimics_wikidata() {
        assert_eq!(EntityId(42).to_string(), "Q42");
        assert_eq!(PredicateId(31).to_string(), "P31");
    }

    #[test]
    fn person_and_date_are_ineligible_types() {
        assert!(!NeSchema::Person.eligible_as_type());
        assert!(!NeSchema::Date.eligible_as_type());
        assert!(NeSchema::Concept.eligible_as_type());
        assert!(NeSchema::Organization.eligible_as_type());
    }

    #[test]
    fn searchable_texts_include_aliases() {
        let e = Entity::new("Peter Steele", NeSchema::Person).with_alias("Petrus T. Ratajczyk");
        let texts: Vec<&str> = e.searchable_texts().collect();
        assert_eq!(texts, vec!["Peter Steele", "Petrus T. Ratajczyk"]);
    }

    #[test]
    fn builder_style_helpers() {
        let e = Entity::new_type("Basketball player").with_description("athlete who plays basketball");
        assert!(e.is_type);
        assert_eq!(e.schema, NeSchema::Concept);
        assert_eq!(e.description, "athlete who plays basketball");
    }
}
