//! Deterministic synthetic "world" generator.
//!
//! The reproduction cannot ship WikiData, so this module generates a small
//! world with the same *structural* properties the KGLink pipeline depends
//! on:
//!
//! * multi-level type hierarchies (`Person ⊃ Athlete ⊃ Basketball player`),
//!   so candidate types exist at several granularities;
//! * relation-rich instances, so the one-hop-intersection filter (paper
//!   Eq. 3) has real signal: an athlete and their team are one-hop neighbors,
//!   exactly like `Rust` (album) and `Peter Steele` in the paper's Figure 5;
//! * aliases and label collisions, so BM25 retrieval is ambiguous enough to
//!   need the structure-based filters;
//! * deliberate coverage holes (`missing_type_prob`), producing entities
//!   whose `instance of` edge is absent — the "incorrect or missing entity
//!   linkages" the paper calls out;
//! * numeric facts (birth years, populations, ratings, …) that live outside
//!   the graph, since numbers are not linkable entities.
//!
//! Everything is seeded: the same [`WorldConfig`] yields the same world.

use crate::builder::KgBuilder;
use crate::entity::{Entity, EntityId, NeSchema};
use crate::graph::KnowledgeGraph;
use crate::predicates as P;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

mod names;

/// Configuration of the synthetic world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed; everything else is a pure function of the config.
    pub seed: u64,
    /// Global size multiplier. `1.0` yields roughly 4–5k entities.
    pub scale: f64,
    /// Probability that an instance gets an alias (nickname/abbreviation).
    pub alias_prob: f64,
    /// Probability that an instance is created *without* its `instance of`
    /// edge, simulating KG coverage holes.
    pub missing_type_prob: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 7,
            scale: 1.0,
            alias_prob: 0.25,
            missing_type_prob: 0.04,
        }
    }
}

impl WorldConfig {
    /// A tiny world for unit tests (~300 entities).
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            seed,
            scale: 0.08,
            ..Self::default()
        }
    }

    fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.scale).round() as usize).max(2)
    }
}

/// Ids of the frequently used type entities.
#[derive(Debug, Clone)]
pub struct WorldTypes {
    pub person: EntityId,
    pub athlete: EntityId,
    pub basketball_player: EntityId,
    pub cricketer: EntityId,
    pub footballer: EntityId,
    pub tennis_player: EntityId,
    pub musician: EntityId,
    pub singer: EntityId,
    pub composer: EntityId,
    pub guitarist: EntityId,
    pub actor: EntityId,
    pub politician: EntityId,
    pub scientist: EntityId,
    pub writer: EntityId,
    pub film_director: EntityId,
    pub creative_work: EntityId,
    pub film: EntityId,
    pub album: EntityId,
    pub book: EntityId,
    pub tv_series: EntityId,
    pub scholarly_article: EntityId,
    pub organization: EntityId,
    pub sports_team: EntityId,
    pub musical_group: EntityId,
    pub company: EntityId,
    pub university: EntityId,
    pub political_party: EntityId,
    pub place: EntityId,
    pub city: EntityId,
    pub country: EntityId,
    pub mountain: EntityId,
    pub river: EntityId,
    pub stadium: EntityId,
    pub biomolecule: EntityId,
    pub protein: EntityId,
    pub gene: EntityId,
    pub enzyme: EntityId,
    pub sport: EntityId,
    pub position: EntityId,
    pub award: EntityId,
    pub language: EntityId,
    pub genre: EntityId,
}

/// Numeric facts attached to instances. Numbers are not graph entities —
/// they surface only as numeric table cells in the generated datasets.
#[derive(Debug, Clone, Default)]
pub struct NumericFacts {
    pub birth_year: HashMap<EntityId, i64>,
    pub height_cm: HashMap<EntityId, f64>,
    pub rating: HashMap<EntityId, f64>,
    pub population: HashMap<EntityId, i64>,
    pub founded_year: HashMap<EntityId, i64>,
    pub release_year: HashMap<EntityId, i64>,
    pub elevation_m: HashMap<EntityId, f64>,
    pub length_km: HashMap<EntityId, f64>,
    pub molecular_weight: HashMap<EntityId, f64>,
}

/// A generated world: the knowledge graph plus generator-side indices.
#[derive(Debug, Clone)]
pub struct SyntheticWorld {
    pub graph: KnowledgeGraph,
    pub types: WorldTypes,
    pub numeric: NumericFacts,
    /// Instances grouped by their *fine* type entity (includes instances
    /// whose `instance of` edge was dropped by the noise model — the
    /// generator always knows the truth even when the KG does not).
    instances_by_type: HashMap<EntityId, Vec<EntityId>>,
}

impl SyntheticWorld {
    /// Generate a world from a config.
    pub fn generate(config: &WorldConfig) -> Self {
        Generator::new(config).run()
    }

    /// True (generator-side) instances of a fine type, regardless of KG
    /// coverage holes.
    pub fn instances_of(&self, ty: EntityId) -> &[EntityId] {
        self.instances_by_type
            .get(&ty)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All fine types that have at least `min` instances.
    pub fn populated_types(&self, min: usize) -> Vec<EntityId> {
        let mut v: Vec<EntityId> = self
            // kglink-lint: allow(nondeterminism) — order-insensitive: the
            // filter is per-entry and the result is sorted before returning.
            .instances_by_type
            .iter()
            .filter(|(_, inst)| inst.len() >= min)
            .map(|(&ty, _)| ty)
            .collect();
        v.sort_unstable();
        v
    }
}

struct Generator<'c> {
    cfg: &'c WorldConfig,
    rng: StdRng,
    b: KgBuilder,
    numeric: NumericFacts,
    instances_by_type: HashMap<EntityId, Vec<EntityId>>,
}

impl<'c> Generator<'c> {
    fn new(cfg: &'c WorldConfig) -> Self {
        Generator {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            b: KgBuilder::new(),
            numeric: NumericFacts::default(),
            instances_by_type: HashMap::new(),
        }
    }

    /// Create a person instance. Mirrors WikiData's labeling convention,
    /// which is central to the paper's *type granularity* discussion
    /// (their Figure 5: "in the KG, Peter Steele is labeled as Human, even
    /// though Musician is present as an entity in the one-hop neighbor"):
    /// most people are `instance of` the coarse `Person` type, with the
    /// fine profession attached through an `occupation` edge; only a
    /// minority carry the fine type directly in `instance of`.
    fn person(
        &mut self,
        label: String,
        fine_ty: EntityId,
        person_ty: EntityId,
        occupation: crate::PredicateId,
        desc: String,
    ) -> EntityId {
        let mut e = Entity::new(label, NeSchema::Person).with_description(desc);
        if self.rng.gen_bool(self.cfg.alias_prob) {
            let alias = names::alias_of(&e.label, &mut self.rng);
            if alias != e.label {
                e.aliases.push(alias);
            }
        }
        let id = if self.rng.gen_bool(self.cfg.missing_type_prob) {
            self.b.add_untyped_instance(e)
        } else if self.rng.gen_bool(0.35) {
            self.b.add_instance(e, fine_ty)
        } else {
            let id = self.b.add_instance(e, person_ty);
            self.b.relate(id, occupation, fine_ty);
            id
        };
        // Generator-side truth is always the fine type.
        self.instances_by_type.entry(fine_ty).or_default().push(id);
        id
    }

    /// Create an instance of `ty`, with noise-model alias and coverage hole.
    fn instance(&mut self, label: String, schema: NeSchema, ty: EntityId, desc: String) -> EntityId {
        let mut e = Entity::new(label, schema).with_description(desc);
        if self.rng.gen_bool(self.cfg.alias_prob) {
            let alias = names::alias_of(&e.label, &mut self.rng);
            if alias != e.label {
                e.aliases.push(alias);
            }
        }
        let id = if self.rng.gen_bool(self.cfg.missing_type_prob) {
            self.b.add_untyped_instance(e)
        } else {
            self.b.add_instance(e, ty)
        };
        self.instances_by_type.entry(ty).or_default().push(id);
        id
    }

    fn pick(&mut self, pool: &[EntityId]) -> EntityId {
        // kglink-lint: allow(panic-in-lib) — structural: every caller either
        // guards with is_empty() or draws from a pool this builder filled.
        *pool.choose(&mut self.rng).expect("non-empty pool")
    }

    fn run(mut self) -> SyntheticWorld {
        let types = self.build_type_hierarchy();

        // Predicates.
        let member_of_team = self.b.predicate(P::MEMBER_OF_SPORTS_TEAM);
        let position_played = self.b.predicate(P::POSITION_PLAYED);
        let sport_p = self.b.predicate(P::SPORT);
        let performer = self.b.predicate(P::PERFORMER);
        let composer_p = self.b.predicate(P::COMPOSER);
        let director_p = self.b.predicate(P::DIRECTOR);
        let cast_member = self.b.predicate(P::CAST_MEMBER);
        let country_p = self.b.predicate(P::COUNTRY);
        let capital_p = self.b.predicate(P::CAPITAL);
        let located_in = self.b.predicate(P::LOCATED_IN);
        let encoded_by = self.b.predicate(P::ENCODED_BY);
        let member_of = self.b.predicate(P::MEMBER_OF);
        let genre_p = self.b.predicate(P::GENRE);
        let educated_at = self.b.predicate(P::EDUCATED_AT);
        let employer_p = self.b.predicate(P::EMPLOYER);
        let award_received = self.b.predicate(P::AWARD_RECEIVED);
        let author_p = self.b.predicate(P::AUTHOR);
        let language_of_work = self.b.predicate(P::LANGUAGE_OF_WORK);
        let occupation = self.b.predicate(P::OCCUPATION);

        // ---- Concept instances ----------------------------------------
        let sports: Vec<EntityId> = names::SPORTS
            .iter()
            .map(|s| {
                self.instance(s.to_string(), NeSchema::Concept, types.sport, format!("the sport of {s}"))
            })
            .collect();
        let mut positions_by_sport: Vec<Vec<EntityId>> = Vec::new();
        for (si, plist) in names::POSITIONS.iter().enumerate() {
            let sport_label = names::SPORTS[si];
            let ids = plist
                .iter()
                .map(|&(full, abbr)| {
                    let mut e = Entity::new(full, NeSchema::Concept)
                        .with_description(format!("player position in {sport_label}"));
                    e.aliases.push(abbr.to_string());
                    let id = self.b.add_instance(e, types.position);
                    self.instances_by_type.entry(types.position).or_default().push(id);
                    id
                })
                .collect();
            positions_by_sport.push(ids);
        }
        let genres: Vec<EntityId> = names::GENRES
            .iter()
            .map(|g| self.instance(g.to_string(), NeSchema::Concept, types.genre, format!("{g} genre")))
            .collect();
        let languages: Vec<EntityId> = names::LANGUAGES
            .iter()
            .map(|l| self.instance(format!("{l} language"), NeSchema::Concept, types.language, format!("the {l} language")))
            .collect();
        let awards: Vec<EntityId> = names::AWARDS
            .iter()
            .map(|a| self.instance(a.to_string(), NeSchema::Concept, types.award, "award".into()))
            .collect();

        // ---- Places -----------------------------------------------------
        let n_countries = self.cfg.scaled(18);
        let mut countries = Vec::with_capacity(n_countries);
        for i in 0..n_countries {
            let label = names::country_name(i);
            let id = self.instance(label.clone(), NeSchema::Place, types.country, format!("sovereign state of {label}"));
            self.numeric.population.insert(id, self.rng.gen_range(800_000..90_000_000));
            countries.push(id);
        }
        let n_cities = self.cfg.scaled(70);
        let mut cities = Vec::with_capacity(n_cities);
        for i in 0..n_cities {
            let label = names::city_name(i, &mut self.rng);
            let country = self.pick(&countries);
            let id = self.instance(
                label.clone(),
                NeSchema::Place,
                types.city,
                format!("city in {}", self.b.graph().label(country)),
            );
            self.b.relate(id, country_p, country);
            self.numeric.population.insert(id, self.rng.gen_range(20_000..9_000_000));
            // The first city generated for a country becomes its capital.
            if self.b.graph().outgoing(country).iter().all(|e| e.predicate != capital_p) {
                self.b.relate(country, capital_p, id);
            }
            cities.push(id);
        }
        let n_mountains = self.cfg.scaled(25);
        for i in 0..n_mountains {
            let label = names::mountain_name(i, &mut self.rng);
            let country = self.pick(&countries);
            let id = self.instance(label, NeSchema::Place, types.mountain, "mountain".into());
            self.b.relate(id, country_p, country);
            self.numeric.elevation_m.insert(id, self.rng.gen_range(900.0..8800.0));
        }
        let n_rivers = self.cfg.scaled(20);
        for i in 0..n_rivers {
            let label = names::river_name(i, &mut self.rng);
            let country = self.pick(&countries);
            let id = self.instance(label, NeSchema::Place, types.river, "river".into());
            self.b.relate(id, country_p, country);
            self.numeric.length_km.insert(id, self.rng.gen_range(40.0..6400.0));
        }
        let n_stadiums = self.cfg.scaled(30);
        let mut stadiums = Vec::with_capacity(n_stadiums);
        for i in 0..n_stadiums {
            let city = self.pick(&cities);
            let label = format!("{} {}", names::surname(i * 13 + 5), names::STADIUM_SUFFIXES[i % names::STADIUM_SUFFIXES.len()]);
            let id = self.instance(label, NeSchema::Place, types.stadium, format!("stadium in {}", self.b.graph().label(city)));
            self.b.relate(id, located_in, city);
            stadiums.push(id);
        }

        // ---- Organizations ----------------------------------------------
        let n_unis = self.cfg.scaled(20);
        let mut universities = Vec::with_capacity(n_unis);
        for _ in 0..n_unis {
            let city = self.pick(&cities);
            let city_label = self.b.graph().label(city).to_string();
            let label = format!("University of {city_label}");
            let id = self.instance(label, NeSchema::Organization, types.university, format!("university in {city_label}"));
            self.b.relate(id, located_in, city);
            self.numeric.founded_year.insert(id, self.rng.gen_range(1200..1990));
            universities.push(id);
        }
        let n_companies = self.cfg.scaled(25);
        let mut companies = Vec::with_capacity(n_companies);
        for i in 0..n_companies {
            let label = names::company_name(i, &mut self.rng);
            let country = self.pick(&countries);
            let id = self.instance(label, NeSchema::Organization, types.company, "company".into());
            self.b.relate(id, country_p, country);
            self.numeric.founded_year.insert(id, self.rng.gen_range(1890..2020));
            companies.push(id);
        }
        let n_parties = self.cfg.scaled(12);
        let mut parties = Vec::with_capacity(n_parties);
        for i in 0..n_parties {
            let country = self.pick(&countries);
            let label = format!("{} Party", names::PARTY_ADJECTIVES[i % names::PARTY_ADJECTIVES.len()]);
            let id = self.instance(label, NeSchema::Organization, types.political_party, "political party".into());
            self.b.relate(id, country_p, country);
            parties.push(id);
        }
        let n_teams = self.cfg.scaled(40);
        let mut teams_by_sport: Vec<Vec<EntityId>> = vec![Vec::new(); sports.len()];
        for i in 0..n_teams {
            let si = i % sports.len();
            let city = self.pick(&cities);
            let city_label = self.b.graph().label(city).to_string();
            let label = format!("{city_label} {}", names::TEAM_SUFFIXES[(i / sports.len()) % names::TEAM_SUFFIXES.len()]);
            let id = self.instance(label, NeSchema::Organization, types.sports_team, format!("{} team", names::SPORTS[si]));
            self.b.relate(id, sport_p, sports[si]);
            self.b.relate(id, located_in, city);
            let stadium = self.pick(&stadiums);
            self.b.relate(id, located_in, stadium);
            self.numeric.founded_year.insert(id, self.rng.gen_range(1880..2015));
            teams_by_sport[si].push(id);
        }
        let n_bands = self.cfg.scaled(35);
        let mut bands = Vec::with_capacity(n_bands);
        for i in 0..n_bands {
            let label = names::band_name(i, &mut self.rng);
            let country = self.pick(&countries);
            let genre = self.pick(&genres);
            let id = self.instance(label, NeSchema::Organization, types.musical_group, "musical group".into());
            self.b.relate(id, country_p, country);
            self.b.relate(id, genre_p, genre);
            self.numeric.founded_year.insert(id, self.rng.gen_range(1960..2020));
            bands.push(id);
        }

        // ---- People ------------------------------------------------------
        let athlete_types = [
            (types.basketball_player, 0usize, "basketball player"),
            (types.cricketer, 1, "cricketer"),
            (types.footballer, 2, "footballer"),
            (types.tennis_player, 3, "tennis player"),
        ];
        let per_prof = self.cfg.scaled(55);
        let mut name_counter = 0usize;
        let mut athletes = Vec::new();
        for &(fine_ty, sport_idx, desc) in &athlete_types {
            for _ in 0..per_prof {
                let label = names::person_name(name_counter, &mut self.rng);
                name_counter += 1;
                let country = self.pick(&countries);
                let nat = self.b.graph().label(country).to_string();
                let id = self.person(label, fine_ty, types.person, occupation, format!("{nat} {desc}"));
                self.b.relate(id, country_p, country);
                self.b.relate(id, sport_p, sports[sport_idx]);
                if !teams_by_sport[sport_idx].is_empty() {
                    let team = self.pick(&teams_by_sport[sport_idx]);
                    self.b.relate(id, member_of_team, team);
                }
                if !positions_by_sport[sport_idx].is_empty() {
                    let pos = self.pick(&positions_by_sport[sport_idx]);
                    self.b.relate(id, position_played, pos);
                }
                if self.rng.gen_bool(0.25) {
                    let uni = self.pick(&universities);
                    self.b.relate(id, educated_at, uni);
                }
                if self.rng.gen_bool(0.12) {
                    let aw = self.pick(&awards);
                    self.b.relate(id, award_received, aw);
                }
                self.numeric.birth_year.insert(id, self.rng.gen_range(1955..2005));
                self.numeric.height_cm.insert(id, self.rng.gen_range(158.0..222.0));
                athletes.push(id);
            }
        }
        let musician_types = [
            (types.singer, "singer"),
            (types.composer, "composer"),
            (types.guitarist, "guitarist"),
        ];
        let mut musicians = Vec::new();
        for &(fine_ty, desc) in &musician_types {
            for _ in 0..per_prof {
                let label = names::person_name(name_counter, &mut self.rng);
                name_counter += 1;
                let country = self.pick(&countries);
                let nat = self.b.graph().label(country).to_string();
                let id = self.person(label, fine_ty, types.person, occupation, format!("{nat} {desc}"));
                self.b.relate(id, country_p, country);
                if self.rng.gen_bool(0.7) {
                    let band = self.pick(&bands);
                    self.b.relate(id, member_of, band);
                }
                if self.rng.gen_bool(0.1) {
                    let aw = self.pick(&awards);
                    self.b.relate(id, award_received, aw);
                }
                self.numeric.birth_year.insert(id, self.rng.gen_range(1940..2002));
                musicians.push(id);
            }
        }
        let mut actors = Vec::new();
        let mut directors = Vec::new();
        let mut writers = Vec::new();
        let mut scientists = Vec::new();
        let simple_professions = [
            (types.actor, "actor"),
            (types.film_director, "film director"),
            (types.writer, "writer"),
            (types.scientist, "scientist"),
            (types.politician, "politician"),
        ];
        for &(fine_ty, desc) in &simple_professions {
            for _ in 0..per_prof {
                let label = names::person_name(name_counter, &mut self.rng);
                name_counter += 1;
                let country = self.pick(&countries);
                let nat = self.b.graph().label(country).to_string();
                let id = self.person(label, fine_ty, types.person, occupation, format!("{nat} {desc}"));
                self.b.relate(id, country_p, country);
                self.numeric.birth_year.insert(id, self.rng.gen_range(1930..2000));
                match desc {
                    "actor" => actors.push(id),
                    "film director" => directors.push(id),
                    "writer" => writers.push(id),
                    "scientist" => {
                        let uni = self.pick(&universities);
                        self.b.relate(id, employer_p, uni);
                        if self.rng.gen_bool(0.2) {
                            let aw = self.pick(&awards);
                            self.b.relate(id, award_received, aw);
                        }
                        scientists.push(id);
                    }
                    "politician" => {
                        if !parties.is_empty() {
                            let party = self.pick(&parties);
                            self.b.relate(id, member_of, party);
                        }
                    }
                    // kglink-lint: allow(panic-in-lib) — the match arms mirror
                    // the closed profession list literal a few lines above; a
                    // new profession must extend both, and this is the fuse.
                    _ => unreachable!(),
                }
            }
        }

        // ---- Creative works ----------------------------------------------
        let n_albums = self.cfg.scaled(60);
        for i in 0..n_albums {
            let label = names::work_name(i, "album", &mut self.rng);
            let id = self.instance(label, NeSchema::Work, types.album, "studio album".into());
            // Performed by a band or a musician; composed by a musician.
            if self.rng.gen_bool(0.5) && !bands.is_empty() {
                let band = self.pick(&bands);
                self.b.relate(id, performer, band);
            } else if !musicians.is_empty() {
                let m = self.pick(&musicians);
                self.b.relate(id, performer, m);
            }
            if !musicians.is_empty() && self.rng.gen_bool(0.6) {
                let c = self.pick(&musicians);
                self.b.relate(id, composer_p, c);
            }
            let g = self.pick(&genres);
            self.b.relate(id, genre_p, g);
            self.numeric.release_year.insert(id, self.rng.gen_range(1965..2024));
            self.numeric.rating.insert(id, self.rng.gen_range(3.0..10.0));
        }
        let n_films = self.cfg.scaled(55);
        for i in 0..n_films {
            let label = names::work_name(i + 1000, "film", &mut self.rng);
            let id = self.instance(label, NeSchema::Work, types.film, "feature film".into());
            if !directors.is_empty() {
                let d = self.pick(&directors);
                self.b.relate(id, director_p, d);
            }
            for _ in 0..self.rng.gen_range(1..4usize) {
                if !actors.is_empty() {
                    let a = self.pick(&actors);
                    self.b.relate(id, cast_member, a);
                }
            }
            let g = self.pick(&genres);
            self.b.relate(id, genre_p, g);
            let c = self.pick(&countries);
            self.b.relate(id, country_p, c);
            self.numeric.release_year.insert(id, self.rng.gen_range(1950..2024));
            self.numeric.rating.insert(id, self.rng.gen_range(2.0..9.5));
        }
        let n_series = self.cfg.scaled(25);
        for i in 0..n_series {
            let label = names::work_name(i + 2000, "series", &mut self.rng);
            let id = self.instance(label, NeSchema::Work, types.tv_series, "television series".into());
            if !directors.is_empty() {
                let d = self.pick(&directors);
                self.b.relate(id, director_p, d);
            }
            if !actors.is_empty() {
                let a = self.pick(&actors);
                self.b.relate(id, cast_member, a);
            }
            self.numeric.release_year.insert(id, self.rng.gen_range(1970..2024));
        }
        let n_books = self.cfg.scaled(35);
        for i in 0..n_books {
            let label = names::work_name(i + 3000, "book", &mut self.rng);
            let id = self.instance(label, NeSchema::Work, types.book, "book".into());
            if !writers.is_empty() {
                let w = self.pick(&writers);
                self.b.relate(id, author_p, w);
            }
            let l = self.pick(&languages);
            self.b.relate(id, language_of_work, l);
            self.numeric.release_year.insert(id, self.rng.gen_range(1850..2024));
        }
        let n_articles = self.cfg.scaled(20);
        for i in 0..n_articles {
            let label = names::article_title(i, &mut self.rng);
            let id = self.instance(label, NeSchema::Work, types.scholarly_article, "scholarly article".into());
            if !scientists.is_empty() {
                let s = self.pick(&scientists);
                self.b.relate(id, author_p, s);
            }
            self.numeric.release_year.insert(id, self.rng.gen_range(1990..2024));
        }

        // ---- Biology -------------------------------------------------------
        let n_genes = self.cfg.scaled(30);
        let mut genes = Vec::with_capacity(n_genes);
        for i in 0..n_genes {
            let label = names::gene_symbol(i);
            let id = self.instance(label.clone(), NeSchema::Biology, types.gene, format!("human gene {label}"));
            genes.push(id);
        }
        let n_proteins = self.cfg.scaled(30);
        for i in 0..n_proteins {
            let fine = if i % 3 == 0 { types.enzyme } else { types.protein };
            let label = names::protein_name(i, &mut self.rng);
            let id = self.instance(label, NeSchema::Biology, fine, "protein".into());
            if !genes.is_empty() {
                let g = genes[i % genes.len()];
                self.b.relate(id, encoded_by, g);
            }
            self.numeric.molecular_weight.insert(id, self.rng.gen_range(8.0..350.0));
        }

        SyntheticWorld {
            graph: self.b.build(),
            types,
            numeric: self.numeric,
            instances_by_type: self.instances_by_type,
        }
    }

    fn build_type_hierarchy(&mut self) -> WorldTypes {
        let b = &mut self.b;
        let person = b.add_type("Person", None);
        let athlete = b.add_type("Athlete", Some(person));
        let basketball_player = b.add_type("Basketball player", Some(athlete));
        let cricketer = b.add_type("Cricketer", Some(athlete));
        let footballer = b.add_type("Footballer", Some(athlete));
        let tennis_player = b.add_type("Tennis player", Some(athlete));
        let musician = b.add_type("Musician", Some(person));
        let singer = b.add_type("Singer", Some(musician));
        let composer = b.add_type("Composer", Some(musician));
        let guitarist = b.add_type("Guitarist", Some(musician));
        let actor = b.add_type("Actor", Some(person));
        let politician = b.add_type("Politician", Some(person));
        let scientist = b.add_type("Scientist", Some(person));
        let writer = b.add_type("Writer", Some(person));
        let film_director = b.add_type("Film director", Some(person));
        let creative_work = b.add_type("Creative work", None);
        let film = b.add_type("Film", Some(creative_work));
        let album = b.add_type("Album", Some(creative_work));
        let book = b.add_type("Book", Some(creative_work));
        let tv_series = b.add_type("Television series", Some(creative_work));
        let scholarly_article = b.add_type("Scholarly article", Some(creative_work));
        let organization = b.add_type("Organization", None);
        let sports_team = b.add_type("Sports team", Some(organization));
        let musical_group = b.add_type("Musical group", Some(organization));
        let company = b.add_type("Company", Some(organization));
        let university = b.add_type("University", Some(organization));
        let political_party = b.add_type("Political party", Some(organization));
        let place = b.add_type("Place", None);
        let city = b.add_type("City", Some(place));
        let country = b.add_type("Country", Some(place));
        let mountain = b.add_type("Mountain", Some(place));
        let river = b.add_type("River", Some(place));
        let stadium = b.add_type("Stadium", Some(place));
        let biomolecule = b.add_type("Biomolecule", None);
        let protein = b.add_type("Protein", Some(biomolecule));
        let gene = b.add_type("Gene", Some(biomolecule));
        let enzyme = b.add_type("Enzyme", Some(protein));
        let sport = b.add_type("Sport", None);
        let position = b.add_type("Position", None);
        let award = b.add_type("Award", None);
        let language = b.add_type("Language", None);
        let genre = b.add_type("Genre", None);
        WorldTypes {
            person,
            athlete,
            basketball_player,
            cricketer,
            footballer,
            tennis_player,
            musician,
            singer,
            composer,
            guitarist,
            actor,
            politician,
            scientist,
            writer,
            film_director,
            creative_work,
            film,
            album,
            book,
            tv_series,
            scholarly_article,
            organization,
            sports_team,
            musical_group,
            company,
            university,
            political_party,
            place,
            city,
            country,
            mountain,
            river,
            stadium,
            biomolecule,
            protein,
            gene,
            enzyme,
            sport,
            position,
            award,
            language,
            genre,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::TypeHierarchy;
    use crate::stats::KgStats;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorldConfig::tiny(11);
        let w1 = SyntheticWorld::generate(&cfg);
        let w2 = SyntheticWorld::generate(&cfg);
        assert_eq!(w1.graph.len(), w2.graph.len());
        assert_eq!(w1.graph.edge_count(), w2.graph.edge_count());
        for (id, e) in w1.graph.entities() {
            assert_eq!(e.label, w2.graph.entity(id).label);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = SyntheticWorld::generate(&WorldConfig::tiny(1));
        let w2 = SyntheticWorld::generate(&WorldConfig::tiny(2));
        let labels1: Vec<_> = w1.graph.entities().map(|(_, e)| e.label.clone()).collect();
        let labels2: Vec<_> = w2.graph.entities().map(|(_, e)| e.label.clone()).collect();
        assert_ne!(labels1, labels2);
    }

    #[test]
    fn world_has_expected_structure() {
        let w = SyntheticWorld::generate(&WorldConfig::tiny(3));
        let h = TypeHierarchy::new(&w.graph);
        // Three-level hierarchy: Basketball player < Athlete < Person.
        assert!(h.is_subtype_of(w.types.basketball_player, w.types.person));
        assert_eq!(h.depth(w.types.basketball_player), 2);
        // Every populated fine type has instances.
        assert!(!w.instances_of(w.types.basketball_player).is_empty());
        assert!(!w.instances_of(w.types.city).is_empty());
        assert!(!w.instances_of(w.types.album).is_empty());
    }

    #[test]
    fn athletes_link_to_teams_like_figure_5() {
        let w = SyntheticWorld::generate(&WorldConfig::tiny(5));
        // At least one athlete has a sports-team one-hop neighbor.
        let team_pred = w.graph.predicate_id(crate::predicates::MEMBER_OF_SPORTS_TEAM).unwrap();
        let linked = w
            .instances_of(w.types.basketball_player)
            .iter()
            .any(|&a| w.graph.outgoing(a).iter().any(|e| e.predicate == team_pred));
        assert!(linked, "expected athletes wired to teams");
    }

    #[test]
    fn coverage_holes_exist_at_default_noise() {
        let cfg = WorldConfig {
            seed: 9,
            scale: 0.3,
            missing_type_prob: 0.2,
            ..WorldConfig::default()
        };
        let w = SyntheticWorld::generate(&cfg);
        let stats = KgStats::compute(&w.graph);
        assert!(stats.untyped_instances > 0, "noise model should drop some instance-of edges");
    }

    #[test]
    fn numeric_facts_are_populated() {
        let w = SyntheticWorld::generate(&WorldConfig::tiny(4));
        assert!(!w.numeric.birth_year.is_empty());
        assert!(!w.numeric.population.is_empty());
        assert!(!w.numeric.release_year.is_empty());
        for (_, &y) in w.numeric.birth_year.iter() {
            assert!((1900..2010).contains(&y));
        }
    }

    #[test]
    fn populated_types_respects_threshold() {
        let w = SyntheticWorld::generate(&WorldConfig::tiny(6));
        let all = w.populated_types(1);
        let big = w.populated_types(10);
        assert!(big.len() <= all.len());
        for ty in &big {
            assert!(w.instances_of(*ty).len() >= 10);
        }
    }
}
