//! Backend-agnostic read access to a knowledge graph.
//!
//! The KGLink pipeline needs a handful of queries against the KG — labels,
//! one-hop neighborhoods, `instance of` targets — and nothing else. This
//! trait captures exactly that surface so the pipeline can run against the
//! in-memory [`KnowledgeGraph`] *or* a disk-backed store (`kglink-store`'s
//! `DiskGraph`) without knowing which one it has. It is the graph-side
//! sibling of `kglink_search::KgBackend`: the retrieval trait abstracts
//! *candidate search*, this one abstracts *entity/edge lookup*.
//!
//! Methods return owned values: a disk-backed implementation decodes
//! records out of block-cached segment bytes and has no stable `&Entity`
//! to hand out. The in-memory graph pays a clone per call, which the
//! pipeline only makes for the few entities that survive candidate
//! pruning — not per cell.
//!
//! Implementations must be infallible: identifiers flow in from retrieval
//! over the same store, so an unknown id is a bug upstream, not a data
//! condition. Disk-backed implementations degrade I/O or corruption errors
//! to empty results (mirroring the paper's no-linkage fallback, exactly
//! like `KgBackend::link_mention`) and surface them through their own
//! typed-error API and error counters.

use crate::entity::{Entity, EntityId, NeSchema, PredicateId};
use crate::graph::KnowledgeGraph;

/// Read-only query surface the KGLink pipeline needs from a knowledge
/// graph. Object-safe; `Send + Sync` so serving workers can share one
/// store behind an `Arc`.
pub trait GraphAccess: Send + Sync {
    /// Number of entities in the store.
    fn entity_count(&self) -> usize;

    /// Full record of an entity (label, aliases, description, schema,
    /// type flag). Unknown ids yield a default placeholder on disk-backed
    /// stores; the in-memory graph panics like slice indexing does.
    fn entity(&self, id: EntityId) -> Entity;

    /// Preferred label of `id`.
    fn label(&self, id: EntityId) -> String;

    /// Named-entity schema of `id` without materializing the whole record
    /// (the candidate-type filter calls this in a loop).
    fn schema_of(&self, id: EntityId) -> NeSchema;

    /// Name of a predicate.
    fn predicate_name(&self, p: PredicateId) -> String;

    /// The one-hop neighborhood `N(e)`: entities adjacent in either
    /// direction, deduplicated, sorted, self-loops removed.
    fn one_hop(&self, id: EntityId) -> Vec<EntityId>;

    /// One-hop neighborhood with connecting predicates, ordered by
    /// predicate *name* then target id (stable across interning orders).
    fn one_hop_with_predicates(&self, id: EntityId) -> Vec<(PredicateId, EntityId)>;

    /// Direct types of an entity: targets of its `instance of` edges, in
    /// edge insertion order.
    fn types_of(&self, id: EntityId) -> Vec<EntityId>;

    /// Direct super-classes of a type entity: targets of its `subclass of`
    /// edges, in edge insertion order. [`crate::TypeHierarchy`] builds its
    /// transitive queries on this.
    fn superclasses_of(&self, id: EntityId) -> Vec<EntityId>;
}

impl GraphAccess for KnowledgeGraph {
    fn entity_count(&self) -> usize {
        self.len()
    }

    fn entity(&self, id: EntityId) -> Entity {
        KnowledgeGraph::entity(self, id).clone()
    }

    fn label(&self, id: EntityId) -> String {
        KnowledgeGraph::label(self, id).to_string()
    }

    fn schema_of(&self, id: EntityId) -> NeSchema {
        KnowledgeGraph::entity(self, id).schema
    }

    fn predicate_name(&self, p: PredicateId) -> String {
        KnowledgeGraph::predicate_name(self, p).to_string()
    }

    fn one_hop(&self, id: EntityId) -> Vec<EntityId> {
        KnowledgeGraph::one_hop(self, id)
    }

    fn one_hop_with_predicates(&self, id: EntityId) -> Vec<(PredicateId, EntityId)> {
        KnowledgeGraph::one_hop_with_predicates(self, id)
    }

    fn types_of(&self, id: EntityId) -> Vec<EntityId> {
        KnowledgeGraph::types_of(self, id)
    }

    fn superclasses_of(&self, id: EntityId) -> Vec<EntityId> {
        KnowledgeGraph::superclasses_of(self, id)
    }
}

/// Blanket impls so decorated/shared graphs thread through the pipeline
/// the same way `KgBackend` stacks do.
impl<G: GraphAccess + ?Sized> GraphAccess for &G {
    fn entity_count(&self) -> usize {
        (**self).entity_count()
    }
    fn entity(&self, id: EntityId) -> Entity {
        (**self).entity(id)
    }
    fn label(&self, id: EntityId) -> String {
        (**self).label(id)
    }
    fn schema_of(&self, id: EntityId) -> NeSchema {
        (**self).schema_of(id)
    }
    fn predicate_name(&self, p: PredicateId) -> String {
        (**self).predicate_name(p)
    }
    fn one_hop(&self, id: EntityId) -> Vec<EntityId> {
        (**self).one_hop(id)
    }
    fn one_hop_with_predicates(&self, id: EntityId) -> Vec<(PredicateId, EntityId)> {
        (**self).one_hop_with_predicates(id)
    }
    fn types_of(&self, id: EntityId) -> Vec<EntityId> {
        (**self).types_of(id)
    }
    fn superclasses_of(&self, id: EntityId) -> Vec<EntityId> {
        (**self).superclasses_of(id)
    }
}

impl<G: GraphAccess + ?Sized> GraphAccess for std::sync::Arc<G> {
    fn entity_count(&self) -> usize {
        (**self).entity_count()
    }
    fn entity(&self, id: EntityId) -> Entity {
        (**self).entity(id)
    }
    fn label(&self, id: EntityId) -> String {
        (**self).label(id)
    }
    fn schema_of(&self, id: EntityId) -> NeSchema {
        (**self).schema_of(id)
    }
    fn predicate_name(&self, p: PredicateId) -> String {
        (**self).predicate_name(p)
    }
    fn one_hop(&self, id: EntityId) -> Vec<EntityId> {
        (**self).one_hop(id)
    }
    fn one_hop_with_predicates(&self, id: EntityId) -> Vec<(PredicateId, EntityId)> {
        (**self).one_hop_with_predicates(id)
    }
    fn types_of(&self, id: EntityId) -> Vec<EntityId> {
        (**self).types_of(id)
    }
    fn superclasses_of(&self, id: EntityId) -> Vec<EntityId> {
        (**self).superclasses_of(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KgBuilder;
    use crate::predicates;

    fn toy() -> (KnowledgeGraph, EntityId, EntityId) {
        let mut b = KgBuilder::new();
        let musician = b.add_type("Musician", None);
        let steele = b.add_instance(
            Entity::new("Peter Steele", NeSchema::Person).with_alias("P. Steele"),
            musician,
        );
        (b.build(), musician, steele)
    }

    fn via_trait<G: GraphAccess>(g: &G, id: EntityId) -> (String, Vec<EntityId>) {
        (g.label(id), g.types_of(id))
    }

    #[test]
    fn in_memory_graph_round_trips_through_the_trait() {
        let (g, musician, steele) = toy();
        let dynamic: &dyn GraphAccess = &g;
        assert_eq!(dynamic.entity_count(), g.len());
        assert_eq!(dynamic.label(steele), "Peter Steele");
        assert_eq!(dynamic.schema_of(steele), NeSchema::Person);
        assert_eq!(dynamic.entity(steele).aliases, vec!["P. Steele"]);
        assert_eq!(dynamic.types_of(steele), vec![musician]);
        assert_eq!(dynamic.one_hop(steele), g.one_hop(steele));
        assert_eq!(
            dynamic.one_hop_with_predicates(steele),
            g.one_hop_with_predicates(steele)
        );
        let p31 = g.predicate_id(predicates::INSTANCE_OF).unwrap();
        assert_eq!(dynamic.predicate_name(p31), predicates::INSTANCE_OF);
    }

    #[test]
    fn references_and_arcs_delegate() {
        let (g, _, steele) = toy();
        assert_eq!(via_trait(&&g, steele), via_trait(&g, steele));
        let shared = std::sync::Arc::new(g);
        let via_arc = via_trait(&shared, steele);
        let via_dyn_arc: std::sync::Arc<dyn GraphAccess> = shared.clone();
        assert_eq!(via_trait(&via_dyn_arc, steele), via_arc);
    }
}
