//! Summary statistics over a knowledge graph, used in reports and sanity tests.

use crate::graph::KnowledgeGraph;
use serde::{Deserialize, Serialize};

/// Aggregate counts describing a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KgStats {
    /// Total entities (instances + types).
    pub entities: usize,
    /// Entities flagged as types/classes.
    pub type_entities: usize,
    /// Distinct predicates.
    pub predicates: usize,
    /// Directed edges.
    pub edges: usize,
    /// Instances with at least one `instance of` edge.
    pub typed_instances: usize,
    /// Instances with no `instance of` edge (coverage holes).
    pub untyped_instances: usize,
    /// Mean out-degree over all entities.
    pub mean_out_degree: f64,
    /// Total aliases across entities.
    pub aliases: usize,
}

impl KgStats {
    /// Compute statistics for `graph`.
    pub fn compute(graph: &KnowledgeGraph) -> Self {
        let mut type_entities = 0usize;
        let mut typed_instances = 0usize;
        let mut untyped_instances = 0usize;
        let mut aliases = 0usize;
        let mut predicates = 0usize;
        for (id, e) in graph.entities() {
            aliases += e.aliases.len();
            if e.is_type {
                type_entities += 1;
            } else if graph.types_of(id).is_empty() {
                untyped_instances += 1;
            } else {
                typed_instances += 1;
            }
            for edge in graph.outgoing(id) {
                predicates = predicates.max(edge.predicate.index() + 1);
            }
        }
        let edges = graph.edge_count();
        KgStats {
            entities: graph.len(),
            type_entities,
            predicates,
            edges,
            typed_instances,
            untyped_instances,
            mean_out_degree: if graph.is_empty() {
                0.0
            } else {
                edges as f64 / graph.len() as f64
            },
            aliases,
        }
    }
}

impl std::fmt::Display for KgStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "entities:          {}", self.entities)?;
        writeln!(f, "  type entities:   {}", self.type_entities)?;
        writeln!(f, "  typed instances: {}", self.typed_instances)?;
        writeln!(f, "  untyped:         {}", self.untyped_instances)?;
        writeln!(f, "predicates:        {}", self.predicates)?;
        writeln!(f, "edges:             {}", self.edges)?;
        writeln!(f, "aliases:           {}", self.aliases)?;
        write!(f, "mean out-degree:   {:.2}", self.mean_out_degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KgBuilder;
    use crate::entity::{Entity, NeSchema};

    #[test]
    fn stats_count_types_and_instances() {
        let mut b = KgBuilder::new();
        let musician = b.add_type("Musician", None);
        b.instance("Peter Steele", NeSchema::Person, musician);
        b.add_untyped_instance(Entity::new("mystery", NeSchema::Other).with_alias("unknown"));
        let g = b.build();
        let s = KgStats::compute(&g);
        assert_eq!(s.entities, 3);
        assert_eq!(s.type_entities, 1);
        assert_eq!(s.typed_instances, 1);
        assert_eq!(s.untyped_instances, 1);
        assert_eq!(s.aliases, 1);
        assert_eq!(s.edges, 1);
        assert!(s.mean_out_degree > 0.0);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = KnowledgeGraph::new();
        let s = KgStats::compute(&g);
        assert_eq!(s.entities, 0);
        assert_eq!(s.mean_out_degree, 0.0);
    }

    #[test]
    fn display_is_human_readable() {
        let g = KnowledgeGraph::new();
        let s = KgStats::compute(&g);
        let text = s.to_string();
        assert!(text.contains("entities"));
        assert!(text.contains("mean out-degree"));
    }
}
