//! Deterministic name fabrication for the synthetic world.
//!
//! Labels are built from fixed word lists combined by index arithmetic plus a
//! seeded RNG for tie-breaking, so the same configuration always produces the
//! same labels while still giving BM25 a realistically diverse vocabulary.

use rand::rngs::StdRng;
use rand::Rng;

pub const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David",
    "Elena", "William", "Sofia", "Richard", "Amara", "Joseph", "Yuki", "Thomas", "Priya",
    "Carlos", "Ingrid", "Mateo", "Aisha", "Henrik", "Chen", "Dmitri", "Fatima", "Kwame",
    "Saoirse", "Rafael", "Mei", "Omar", "Astrid", "Luca", "Zara", "Viktor", "Noor", "Diego",
    "Hana", "Emil", "Leila", "Marco", "Freya", "Ivan", "Carmen", "Tariq", "Signe", "Pavel",
    "Rosa", "Andre", "Kiran",
];

pub const SURNAMES: &[&str] = &[
    "Smith", "Johnson", "Garcia", "Miller", "Davis", "Rodriguez", "Martinez", "Hernandez",
    "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson",
    "Petrov", "Nakamura", "Okafor", "Lindqvist", "Haddad", "Kovacs", "Novak", "Silva",
    "Costa", "Fischer", "Weber", "Rossi", "Ferrari", "Tanaka", "Suzuki", "Kimura", "Patel",
    "Singh", "Kumar", "Ahmed", "Hassan", "Dubois", "Moreau", "Larsen", "Nielsen", "Berg",
    "Holm", "Virtanen", "Korhonen", "Papadopoulos", "Dimitriou", "Yilmaz", "Kaya", "Steele",
];

pub const SPORTS: &[&str] = &["basketball", "cricket", "association football", "tennis"];

/// (full name, abbreviation) per sport, aligned with [`SPORTS`].
pub const POSITIONS: &[&[(&str, &str)]] = &[
    &[
        ("Point guard", "PG"),
        ("Shooting guard", "SG"),
        ("Small forward", "SF"),
        ("Power forward", "PF"),
        ("Center", "C"),
    ],
    &[
        ("Batsman", "BAT"),
        ("Bowler", "BWL"),
        ("Wicket-keeper", "WK"),
        ("All-rounder", "AR"),
    ],
    &[
        ("Goalkeeper", "GK"),
        ("Defender", "DF"),
        ("Midfielder", "MF"),
        ("Striker", "ST"),
    ],
    &[("Singles player", "SGL"), ("Doubles player", "DBL")],
];

pub const GENRES: &[&str] = &[
    "rock", "jazz", "gothic metal", "pop", "folk", "electronic", "hip hop", "classical",
    "blues", "drama", "comedy", "thriller", "documentary", "science fiction",
];

pub const LANGUAGES: &[&str] = &[
    "English", "Spanish", "Mandarin", "Hindi", "Arabic", "Portuguese", "Russian", "Japanese",
    "German", "French",
];

pub const AWARDS: &[&str] = &[
    "Golden Lion Award",
    "Silver Harp Prize",
    "National Medal of Science",
    "Continental Player Trophy",
    "Crystal Quill Prize",
    "Platinum Record Award",
];

pub const TEAM_SUFFIXES: &[&str] = &[
    "Hawks", "Tigers", "Rovers", "United", "Wanderers", "Giants", "Royals", "Comets",
    "Pioneers", "Mariners",
];

pub const STADIUM_SUFFIXES: &[&str] = &["Arena", "Stadium", "Park", "Field", "Dome"];

pub const PARTY_ADJECTIVES: &[&str] = &[
    "Progressive", "Conservative", "Liberal", "National", "Democratic", "Republican", "Green",
    "Labour", "Unity", "Reform",
];

const COUNTRY_PREFIX: &[&str] = &[
    "Nor", "Vel", "Ash", "Kor", "Bel", "Dor", "Mar", "Tal", "Zan", "Est", "Gal", "Hal",
    "Ild", "Jor", "Kal", "Lor", "Mon", "Ond",
];
const COUNTRY_SUFFIX: &[&str] = &["dovia", "land", "mark", "stan", "onia", "avia"];

const CITY_PARTS_A: &[&str] = &[
    "Spring", "River", "Oak", "Lake", "Stone", "Bright", "Fair", "Green", "Silver", "North",
    "East", "West", "Harbor", "Mill", "Cedar", "Maple",
];
const CITY_PARTS_B: &[&str] = &[
    "field", "ton", "ville", "burg", "haven", "port", "ford", "dale", "wood", "bridge",
];

const WORK_ADJ: &[&str] = &[
    "Silent", "Crimson", "Endless", "Broken", "Golden", "Midnight", "Distant", "Hollow",
    "Burning", "Frozen", "Electric", "Velvet", "Shattered", "Hidden", "Rust", "Iron",
];
const WORK_NOUN: &[&str] = &[
    "Horizon", "Echo", "Garden", "Winter", "Mirror", "Empire", "Voyage", "Harvest", "Signal",
    "Monument", "Tides", "Lantern", "Orchard", "Parallel", "Reverie", "Cascade",
];

const BAND_NOUN: &[&str] = &[
    "Serpents", "Owls", "Prophets", "Machines", "Shadows", "Architects", "Wolves", "Saints",
    "Harbingers", "Corsairs",
];

const MOUNTAIN_NAMES: &[&str] = &[
    "Kestrel", "Aurora", "Basalt", "Cinder", "Drake", "Ember", "Frost", "Granite", "Hollow",
    "Ivory",
];

const RIVER_NAMES: &[&str] = &[
    "Aldan", "Brine", "Corven", "Dusk", "Ebon", "Fenwick", "Glen", "Hazel", "Isen", "Juniper",
];

const GENE_PREFIX: &[&str] = &["BRC", "TP", "MYC", "KRA", "EGF", "CDK", "SOX", "FOX", "HOX", "RAS"];

const PROTEIN_GREEK: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "kappa", "sigma", "omega", "theta",
];

/// Surname for an index (cycles the surname list).
pub fn surname(i: usize) -> &'static str {
    SURNAMES[i % SURNAMES.len()]
}

/// Deterministic person name for an index, with RNG-driven middle initials
/// to diversify collisions. A small fraction of names intentionally collide
/// (same first/last combination) to exercise disambiguation.
pub fn person_name(i: usize, rng: &mut StdRng) -> String {
    let first = FIRST_NAMES[i % FIRST_NAMES.len()];
    let last = SURNAMES[(i / FIRST_NAMES.len() + i) % SURNAMES.len()];
    if rng.gen_bool(0.15) {
        let middle = (b'A' + (i % 26) as u8) as char;
        format!("{first} {middle}. {last}")
    } else {
        format!("{first} {last}")
    }
}

/// Country name for an index.
pub fn country_name(i: usize) -> String {
    let p = COUNTRY_PREFIX[i % COUNTRY_PREFIX.len()];
    let s = COUNTRY_SUFFIX[(i / COUNTRY_PREFIX.len()) % COUNTRY_SUFFIX.len()];
    format!("{p}{s}")
}

/// City name for an index.
pub fn city_name(i: usize, rng: &mut StdRng) -> String {
    let a = CITY_PARTS_A[i % CITY_PARTS_A.len()];
    let b = CITY_PARTS_B[(i / CITY_PARTS_A.len()) % CITY_PARTS_B.len()];
    if rng.gen_bool(0.1) {
        format!("New {a}{b}")
    } else {
        format!("{a}{b}")
    }
}

/// Roman numeral for small disambiguation indices. Entity labels must not
/// contain bare digit tokens: digit tokens would collide with numeric cell
/// content (apartment numbers, code suffixes) in BM25 and create spurious
/// linkage for otherwise-unlinkable columns.
fn roman(n: usize) -> &'static str {
    const NUMERALS: [&str; 12] = [
        "I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI", "XII",
    ];
    NUMERALS[(n - 1).min(NUMERALS.len() - 1)]
}

/// Mountain name.
pub fn mountain_name(i: usize, rng: &mut StdRng) -> String {
    let base = MOUNTAIN_NAMES[i % MOUNTAIN_NAMES.len()];
    if rng.gen_bool(0.5) {
        format!("Mount {base}")
    } else {
        format!("{base} Peak {}", roman(i / MOUNTAIN_NAMES.len() + 1))
    }
}

/// River name.
pub fn river_name(i: usize, _rng: &mut StdRng) -> String {
    let base = RIVER_NAMES[i % RIVER_NAMES.len()];
    if i < RIVER_NAMES.len() {
        format!("{base} River")
    } else {
        format!("{base} River {}", roman(i / RIVER_NAMES.len() + 1))
    }
}

/// Company name.
pub fn company_name(i: usize, rng: &mut StdRng) -> String {
    let a = WORK_ADJ[i % WORK_ADJ.len()];
    let b = BAND_NOUN[(i / WORK_ADJ.len()) % BAND_NOUN.len()];
    let suffix = if rng.gen_bool(0.5) { "Industries" } else { "Group" };
    format!("{a} {b} {suffix}")
}

/// Band name ("The Velvet Owls" style).
pub fn band_name(i: usize, rng: &mut StdRng) -> String {
    let a = WORK_ADJ[(i * 7 + 3) % WORK_ADJ.len()];
    let b = BAND_NOUN[i % BAND_NOUN.len()];
    if rng.gen_bool(0.6) {
        format!("The {a} {b}")
    } else {
        format!("{a} {b}")
    }
}

/// Creative-work title; `kind` seeds the pattern choice so albums, films and
/// books draw from the same vocabulary without always colliding.
pub fn work_name(i: usize, kind: &str, rng: &mut StdRng) -> String {
    let a = WORK_ADJ[(i + kind.len()) % WORK_ADJ.len()];
    let b = WORK_NOUN[(i / WORK_ADJ.len() + kind.len() * 3) % WORK_NOUN.len()];
    match i % 4 {
        0 => a.to_string(),
        1 => format!("{a} {b}"),
        2 => format!("The {b}"),
        _ => {
            if rng.gen_bool(0.5) {
                format!("{b} of {a}")
            } else {
                format!("{a} {b} II")
            }
        }
    }
}

/// Scholarly article title.
pub fn article_title(i: usize, _rng: &mut StdRng) -> String {
    let a = WORK_ADJ[(i * 3) % WORK_ADJ.len()];
    let b = WORK_NOUN[(i * 5 + 2) % WORK_NOUN.len()];
    format!("On the {a} {b}: a survey")
}

/// Gene symbol ("BRC1A"-style).
pub fn gene_symbol(i: usize) -> String {
    let p = GENE_PREFIX[i % GENE_PREFIX.len()];
    format!("{p}{}", i / GENE_PREFIX.len() + 1)
}

/// Protein name.
pub fn protein_name(i: usize, rng: &mut StdRng) -> String {
    let greek = PROTEIN_GREEK[i % PROTEIN_GREEK.len()];
    let noun = WORK_NOUN[(i * 11) % WORK_NOUN.len()];
    if rng.gen_bool(0.5) {
        format!("{greek}-{} synthase", noun.to_lowercase())
    } else {
        format!("{} {greek} subunit", noun.to_lowercase())
    }
}

/// Derive an alias for a label: initials, truncation, or an uppercase code.
pub fn alias_of(label: &str, rng: &mut StdRng) -> String {
    let words: Vec<&str> = label.split_whitespace().collect();
    match rng.gen_range(0..3u8) {
        0 if words.len() >= 2 => {
            // "P. Steele" style.
            let mut out = String::new();
            for w in &words[..words.len() - 1] {
                out.push(w.chars().next().unwrap_or('X'));
                out.push_str(". ");
            }
            out.push_str(words[words.len() - 1]);
            out
        }
        1 => {
            // Uppercase initialism: "University of Oakton" -> "UOO".
            words
                .iter()
                .filter_map(|w| w.chars().next())
                .map(|c| c.to_ascii_uppercase())
                .collect()
        }
        _ => {
            // First word only.
            words.first().copied().unwrap_or(label).to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn person_names_cycle_through_lists() {
        let mut r = rng();
        let n0 = person_name(0, &mut r);
        let n1 = person_name(1, &mut r);
        assert_ne!(n0, n1);
        assert!(n0.contains(' '));
    }

    #[test]
    fn country_names_are_unique_for_small_indices() {
        let names: Vec<String> = (0..18).map(country_name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn gene_symbols_look_like_genes() {
        assert_eq!(gene_symbol(0), "BRC1");
        assert_eq!(gene_symbol(10), "BRC2");
    }

    #[test]
    fn alias_is_derived_from_label() {
        let mut r = rng();
        for _ in 0..20 {
            let alias = alias_of("Peter Steele", &mut r);
            assert!(!alias.is_empty());
        }
    }

    #[test]
    fn positions_align_with_sports() {
        assert_eq!(SPORTS.len(), POSITIONS.len());
        // The paper's own example: "PF" stands for Power Forward.
        assert!(POSITIONS[0].iter().any(|&(f, a)| f == "Power forward" && a == "PF"));
    }

    #[test]
    fn work_names_vary_by_pattern() {
        let mut r = rng();
        let titles: Vec<String> = (0..8).map(|i| work_name(i, "album", &mut r)).collect();
        let mut dedup = titles.clone();
        dedup.sort();
        dedup.dedup();
        assert!(dedup.len() >= 6, "titles should be mostly distinct: {titles:?}");
    }
}
