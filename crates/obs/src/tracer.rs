//! Hierarchical spans, counters, stage timers, and the event log.
//!
//! A [`Tracer`] is a cheap cloneable handle (an `Option<Arc<_>>`): clones
//! share one event log, counter table, and stage-histogram table, so the
//! same tracer can be threaded through `Resources`, a retrieval decorator
//! stack, and a worker pool and still produce one coherent, causally
//! ordered record. [`Tracer::disabled`] (also `Default`) carries `None`:
//! every operation short-circuits on that single check — no clock read,
//! no lock, no allocation — which is what lets the pipeline keep tracer
//! calls unconditionally on its hot paths.
//!
//! Spans are RAII guards: [`Tracer::span`] opens a span and returns a
//! [`Span`] that closes it (and feeds the elapsed time into the stage
//! histogram of the same name) on drop. Parentage is tracked per thread,
//! so nested spans form a tree per worker without any coordination.
//!
//! Lock poisoning is recovered with `PoisonError::into_inner` throughout:
//! every guarded structure (event vec, counter map, stage histograms) is
//! append/accumulate-only, so the worst a panicked sibling leaves behind is
//! a missing record — never a broken invariant. Telemetry must not take a
//! serving worker down with it.

use crate::hist::Histogram;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// What one [`Event`] records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed; `elapsed_us` is its measured wall time.
    SpanEnd { elapsed_us: u64 },
    /// A point-in-time occurrence (retry, breaker transition, degrade…).
    Instant,
    /// A counter increment; `value` is the counter's new total.
    Counter { value: u64 },
}

/// One entry of the append-only event log. `seq` is assigned under the
/// log lock, so sequence order **is** causal order across threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number, unique per tracer.
    pub seq: u64,
    /// Microseconds since the tracer was created.
    pub t_us: u64,
    /// Enclosing span id (0 = none).
    pub span: u64,
    /// Parent span id of `span` (0 = root).
    pub parent: u64,
    /// Dotted event/span name (`retrieval.retry`, `breaker.transition`…).
    pub name: &'static str,
    pub kind: EventKind,
    /// Free-form key/value payload.
    pub fields: Vec<(&'static str, String)>,
}

struct Inner {
    epoch: Instant,
    next_span: AtomicU64,
    events: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    stages: Mutex<BTreeMap<&'static str, Histogram>>,
}

thread_local! {
    /// Per-thread stack of open span ids (parentage for nested spans).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A shared, cloneable tracing handle. See the module docs.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tracer({})",
            if self.inner.is_some() { "enabled" } else { "disabled" }
        )
    }
}

impl Tracer {
    /// A recording tracer.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                events: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                stages: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// The no-op tracer: every call is one `Option` check. This is the
    /// default everywhere a tracer is threaded through the pipeline.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this tracer was created (0 when disabled).
    pub fn elapsed_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.epoch.elapsed().as_micros() as u64)
    }

    fn push_event(
        inner: &Inner,
        span: u64,
        parent: u64,
        name: &'static str,
        kind: EventKind,
        fields: Vec<(&'static str, String)>,
    ) {
        let t_us = inner.epoch.elapsed().as_micros() as u64;
        let mut events = inner.events.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = events.len() as u64;
        events.push(Event {
            seq,
            t_us,
            span,
            parent,
            name,
            kind,
            fields,
        });
    }

    fn current_parent() -> u64 {
        SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
    }

    /// Open a span; the returned guard closes it on drop and records the
    /// elapsed time in the stage histogram named `name`.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        match &self.inner {
            None => Span { data: None },
            Some(inner) => {
                let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
                let parent = Self::current_parent();
                SPAN_STACK.with(|s| s.borrow_mut().push(id));
                Self::push_event(inner, id, parent, name, EventKind::SpanStart, Vec::new());
                Span {
                    data: Some(SpanData {
                        tracer: self,
                        id,
                        parent,
                        name,
                        start: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Record a point-in-time event with no payload.
    #[inline]
    pub fn event(&self, name: &'static str) {
        self.event_with(name, Vec::new());
    }

    /// Record a point-in-time event with a key/value payload.
    #[inline]
    pub fn event_with(&self, name: &'static str, fields: Vec<(&'static str, String)>) {
        if let Some(inner) = &self.inner {
            let parent = Self::current_parent();
            Self::push_event(inner, parent, 0, name, EventKind::Instant, fields);
        }
    }

    /// Increment counter `name` by `delta` and log a counter event
    /// carrying the new total.
    #[inline]
    pub fn incr(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            let value = {
                let mut counters = inner.counters.lock().unwrap_or_else(PoisonError::into_inner);
                let slot = counters.entry(name).or_insert(0);
                *slot += delta;
                *slot
            };
            let parent = Self::current_parent();
            Self::push_event(
                inner,
                parent,
                0,
                name,
                EventKind::Counter { value },
                Vec::new(),
            );
        }
    }

    /// Feed a microsecond value into the stage histogram named `name`
    /// without opening a span (for externally measured durations, e.g.
    /// queue wait read off a request's enqueue timestamp).
    #[inline]
    pub fn record_us(&self, name: &'static str, us: u64) {
        if let Some(inner) = &self.inner {
            inner
                .stages
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(name)
                .or_default()
                .record(us);
        }
    }

    /// Snapshot of one stage histogram, if that stage ever recorded.
    pub fn stage(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|i| i.stages.lock().unwrap_or_else(PoisonError::into_inner).get(name).cloned())
    }

    /// Snapshot of every stage histogram.
    pub fn stages(&self) -> BTreeMap<&'static str, Histogram> {
        self.inner.as_ref().map_or_else(BTreeMap::new, |i| {
            i.stages.lock().unwrap_or_else(PoisonError::into_inner).clone()
        })
    }

    /// Snapshot of every counter.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        self.inner.as_ref().map_or_else(BTreeMap::new, |i| {
            i.counters.lock().unwrap_or_else(PoisonError::into_inner).clone()
        })
    }

    /// One counter's current total (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.counters
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get(name)
                .copied()
                .unwrap_or(0)
        })
    }

    /// Snapshot of the event log, in causal (sequence) order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.events.lock().unwrap_or_else(PoisonError::into_inner).clone()
        })
    }

    /// Events whose name matches `name`, in causal order.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        self.events().into_iter().filter(|e| e.name == name).collect()
    }

    fn close_span(&self, data: &SpanData<'_>) {
        // kglink-lint: allow(panic-in-lib) — structural: SpanData is only
        // ever constructed by span(), which requires inner to be Some.
        let inner = self.inner.as_ref().expect("span data implies enabled");
        let elapsed_us = data.start.elapsed().as_micros() as u64;
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Spans close in LIFO order per thread; a guard moved across
            // threads simply won't find itself and leaves the stack alone.
            if stack.last() == Some(&data.id) {
                stack.pop();
            }
        });
        inner
            .stages
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(data.name)
            .or_default()
            .record(elapsed_us);
        Self::push_event(
            inner,
            data.id,
            data.parent,
            data.name,
            EventKind::SpanEnd { elapsed_us },
            Vec::new(),
        );
    }
}

struct SpanData<'t> {
    tracer: &'t Tracer,
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
}

/// RAII span guard: closes (and times) the span on drop.
pub struct Span<'t> {
    data: Option<SpanData<'t>>,
}

impl Span<'_> {
    /// This span's id (0 for a disabled tracer's no-op span).
    pub fn id(&self) -> u64 {
        self.data.as_ref().map_or(0, |d| d.id)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            data.tracer.close_span(&data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let _s = t.span("outer");
            t.event("hello");
            t.incr("count", 3);
            t.record_us("stage", 42);
        }
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        assert!(t.counters().is_empty());
        assert!(t.stages().is_empty());
        assert_eq!(t.counter("count"), 0);
    }

    #[test]
    fn spans_nest_and_time() {
        let t = Tracer::enabled();
        {
            let outer = t.span("outer");
            assert!(outer.id() > 0);
            {
                let _inner = t.span("inner");
                t.event("tick");
            }
        }
        let events = t.events();
        // outer start, inner start, tick, inner end, outer end.
        assert_eq!(events.len(), 5);
        let outer_start = &events[0];
        let inner_start = &events[1];
        let tick = &events[2];
        assert_eq!(outer_start.name, "outer");
        assert_eq!(outer_start.parent, 0);
        assert_eq!(inner_start.name, "inner");
        assert_eq!(
            inner_start.parent, outer_start.span,
            "nested span must record its parent"
        );
        assert_eq!(tick.span, inner_start.span, "events attach to the open span");
        assert!(matches!(events[3].kind, EventKind::SpanEnd { .. }));
        assert_eq!(events[4].name, "outer");
        // Sequence numbers are the causal order.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        // Both stages recorded exactly one duration.
        assert_eq!(t.stage("outer").unwrap().count(), 1);
        assert_eq!(t.stage("inner").unwrap().count(), 1);
    }

    #[test]
    fn counters_accumulate_and_log() {
        let t = Tracer::enabled();
        t.incr("cache.hit", 1);
        t.incr("cache.hit", 2);
        t.incr("cache.miss", 1);
        assert_eq!(t.counter("cache.hit"), 3);
        assert_eq!(t.counter("cache.miss"), 1);
        let hits = t.events_named("cache.hit");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[1].kind, EventKind::Counter { value: 3 });
    }

    #[test]
    fn clones_share_state() {
        let t = Tracer::enabled();
        let u = t.clone();
        u.incr("shared", 1);
        {
            let _s = u.span("from_clone");
        }
        assert_eq!(t.counter("shared"), 1);
        assert_eq!(t.stage("from_clone").unwrap().count(), 1);
    }

    #[test]
    fn record_us_feeds_stage_histograms() {
        let t = Tracer::enabled();
        for v in [10, 20, 30] {
            t.record_us("serve.queue_wait", v);
        }
        let h = t.stage("serve.queue_wait").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.5), 20);
    }
}
