//! JSONL export of a tracer's record, for the experiment scripts.
//!
//! One JSON object per line. Three record shapes, discriminated by
//! `"rec"`:
//!
//! * `{"rec":"event", "seq":…, "t_us":…, "span":…, "parent":…,
//!    "name":…, "kind":"span_start"|"span_end"|"instant"|"counter",
//!    "elapsed_us"?:…, "value"?:…, "fields"?:{…}}`
//! * `{"rec":"counter", "name":…, "value":…}` — final totals.
//! * `{"rec":"stage", "name":…, "count":…, "sum_us":…, "min_us":…,
//!    "max_us":…, "p50_us":…, "p99_us":…}` — stage histogram summary.
//!
//! The writer is hand-rolled (std-only workspace); [`escape_json_into`]
//! covers the string-escaping corner cases and is unit-tested below.

use crate::tracer::{EventKind, Tracer};
use std::fmt::Write as _;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Append `s` to `out` as a JSON string literal (including quotes).
pub fn escape_json_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a [`Tracer`]'s events, counters, and stage summaries as JSON
/// lines to any `Write` target (`results/*.jsonl` by convention).
pub struct JsonlSink<W: Write> {
    out: W,
    lines: usize,
}

impl JsonlSink<BufWriter<std::fs::File>> {
    /// Create (truncate) a JSONL file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink::new(BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        JsonlSink { out, lines: 0 }
    }

    /// Lines written so far.
    pub fn lines(&self) -> usize {
        self.lines
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.lines += 1;
        Ok(())
    }

    /// Export the full record of `tracer`: every event in causal order,
    /// then counter totals, then stage summaries. Returns the number of
    /// lines written by this call.
    pub fn export(&mut self, tracer: &Tracer) -> io::Result<usize> {
        let before = self.lines;
        let mut line = String::new();
        for e in tracer.events() {
            line.clear();
            let _ = write!(
                line,
                "{{\"rec\":\"event\",\"seq\":{},\"t_us\":{},\"span\":{},\"parent\":{},\"name\":",
                e.seq, e.t_us, e.span, e.parent
            );
            escape_json_into(e.name, &mut line);
            match &e.kind {
                EventKind::SpanStart => line.push_str(",\"kind\":\"span_start\""),
                EventKind::SpanEnd { elapsed_us } => {
                    let _ = write!(line, ",\"kind\":\"span_end\",\"elapsed_us\":{elapsed_us}");
                }
                EventKind::Instant => line.push_str(",\"kind\":\"instant\""),
                EventKind::Counter { value } => {
                    let _ = write!(line, ",\"kind\":\"counter\",\"value\":{value}");
                }
            }
            if !e.fields.is_empty() {
                line.push_str(",\"fields\":{");
                for (i, (k, v)) in e.fields.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    escape_json_into(k, &mut line);
                    line.push(':');
                    escape_json_into(v, &mut line);
                }
                line.push('}');
            }
            line.push('}');
            self.write_line(&line)?;
        }
        for (name, value) in tracer.counters() {
            line.clear();
            line.push_str("{\"rec\":\"counter\",\"name\":");
            escape_json_into(name, &mut line);
            let _ = write!(line, ",\"value\":{value}}}");
            self.write_line(&line)?;
        }
        for (name, h) in tracer.stages() {
            line.clear();
            line.push_str("{\"rec\":\"stage\",\"name\":");
            escape_json_into(name, &mut line);
            let _ = write!(
                line,
                ",\"count\":{},\"sum_us\":{},\"min_us\":{},\"max_us\":{},\"p50_us\":{},\"p99_us\":{}}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.p50(),
                h.p99()
            );
            self.write_line(&line)?;
        }
        self.out.flush()?;
        Ok(self.lines - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        let mut out = String::new();
        escape_json_into(s, &mut out);
        out
    }

    #[test]
    fn escaping_covers_the_corners() {
        assert_eq!(escaped("plain"), "\"plain\"");
        assert_eq!(escaped("a\"b"), "\"a\\\"b\"");
        assert_eq!(escaped("a\\b"), "\"a\\\\b\"");
        assert_eq!(escaped("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(escaped("\u{1}"), "\"\\u0001\"");
        assert_eq!(escaped("naïve 表"), "\"naïve 表\"");
    }

    #[test]
    fn export_writes_one_json_object_per_line() {
        let t = Tracer::enabled();
        {
            let _s = t.span("annotate");
            t.incr("cache.hit", 2);
            t.event_with("retrieval.retry", vec![("attempt", "1".to_string())]);
        }
        t.record_us("serve.queue_wait", 55);
        let mut sink = JsonlSink::new(Vec::new());
        let n = sink.export(&t).expect("in-memory export");
        let text = String::from_utf8(sink.out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), n);
        // events: span start/end + counter + instant = 4; counters: 1;
        // stages: annotate + serve.queue_wait = 2.
        assert_eq!(n, 7);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "not an object: {l}");
            // Balanced braces (flat objects, escaped strings only).
            assert_eq!(
                l.matches('{').count(),
                l.matches('}').count(),
                "unbalanced: {l}"
            );
        }
        assert!(text.contains("\"rec\":\"event\""));
        assert!(text.contains("\"name\":\"retrieval.retry\""));
        assert!(text.contains("\"fields\":{\"attempt\":\"1\"}"));
        assert!(text.contains("\"rec\":\"counter\",\"name\":\"cache.hit\",\"value\":2"));
        assert!(text.contains("\"rec\":\"stage\",\"name\":\"serve.queue_wait\""));
    }

    #[test]
    fn export_of_disabled_tracer_is_empty() {
        let mut sink = JsonlSink::new(Vec::new());
        let n = sink.export(&Tracer::disabled()).unwrap();
        assert_eq!(n, 0);
        assert!(sink.out.is_empty());
    }
}
