//! Log-linear-bucket histograms over `u64` microsecond values.
//!
//! The bucket layout is HDR-style: values below [`SUB`] land in exact
//! unit-width buckets; above that, each power-of-two octave is split into
//! [`SUB`] equal sub-buckets, so the relative width of any bucket is at
//! most `1/SUB` (≈3.1% with `SUB = 32`). Quantiles therefore carry a
//! bounded relative error — tight enough for latency reporting, while
//! keeping `record` branch-free arithmetic on a fixed-size array.
//!
//! [`Histogram::merge`] is commutative and associative with
//! [`Histogram::new`] as identity (bucket counts simply add), which is
//! what lets per-worker shards fold into one aggregate in any order —
//! the property tests in `tests/histogram.rs` pin this down against a
//! sorted-vec reference model.

/// Sub-bucket resolution bits: 32 sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave; also the width of the exact linear range.
pub const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
const N_BUCKETS: usize = (SUB as usize) + (64 - SUB_BITS as usize) * SUB as usize;

/// Bucket index for a value. Exact below [`SUB`]; log-linear above.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BITS) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
        SUB as usize + octave * SUB as usize + sub
    }
}

/// Inclusive `[lo, hi]` value range of bucket `idx`.
fn bounds_of(idx: usize) -> (u64, u64) {
    if idx < SUB as usize {
        (idx as u64, idx as u64)
    } else {
        let octave = (idx - SUB as usize) / SUB as usize;
        let sub = ((idx - SUB as usize) % SUB as usize) as u64;
        let lo = (SUB + sub) << octave;
        let width = 1u64 << octave;
        (lo, lo + (width - 1))
    }
}

/// A mergeable log-linear latency histogram (microsecond values).
///
/// This is the workspace's single source of percentile math: retrieval
/// metrics, service metrics, and the experiment binaries all report
/// quantiles through it. See the module docs for the error bound.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (the identity of [`merge`](Self::merge)).
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[index_of(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Saturating sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`.
    ///
    /// The returned value is the representative (midpoint) of the bucket
    /// holding the nearest-rank sample, clamped to the observed
    /// `[min, max]`; values in the exact linear range come back exactly.
    /// Relative error is bounded by the bucket width, ≤ `1/SUB` ≈ 3.1%.
    // kglink-lint: allow(single-percentile) — this is the one canonical
    // percentile implementation the rule protects; everything else merges
    // into or queries this Histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Same nearest-rank convention the workspace's hand-rolled
        // percentile implementations used: idx = round((n - 1) * q).
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        // The extremes are tracked exactly; report them exactly.
        if rank == 0 {
            return self.min;
        }
        if rank == self.count - 1 {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > rank {
                let (lo, hi) = bounds_of(idx);
                let rep = lo + (hi - lo) / 2;
                return rep.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// p50 convenience, in the unit recorded (microseconds by convention).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// p99 convenience.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold `other` into `self`. Bucket counts add, so `merge_from` is
    /// commutative and associative, with [`Histogram::new`] as identity.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Owned merge: `a.merge(&b)` leaves both operands intact.
    pub fn merge(&self, other: &Histogram) -> Histogram {
        let mut out = self.clone();
        out.merge_from(other);
        out
    }

    /// `(bucket_lo, bucket_hi, count)` for every non-empty bucket, in
    /// ascending value order — the JSONL export and breakdown tables
    /// iterate this instead of the raw array.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bounds_of(i);
                (lo, hi, c)
            })
            .collect()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 5, 7, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        // Every bucket's hi + 1 is the next bucket's lo.
        let mut prev_hi: Option<u64> = None;
        for idx in 0..2_000usize.min(N_BUCKETS) {
            let (lo, hi) = bounds_of(idx);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap before bucket {idx}");
            }
            assert_eq!(index_of(lo), idx);
            assert_eq!(index_of(hi), idx);
            prev_hi = Some(hi);
        }
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::new();
        for v in (0..10_000u64).map(|i| i * 37 + 11) {
            h.record(v);
        }
        let mut sorted: Vec<u64> = (0..10_000u64).map(|i| i * 37 + 11).collect();
        sorted.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let exact = sorted[(((sorted.len() - 1) as f64) * q).round() as usize];
            let approx = h.quantile(q);
            let err = (approx as f64 - exact as f64).abs() / (exact.max(1) as f64);
            assert!(err <= 1.0 / SUB as f64 + 1e-9, "q={q}: {approx} vs {exact}");
        }
    }
}
