//! kglink-obs: pipeline-wide observability for the KGLink workspace.
//!
//! Production serving (the ROADMAP's north star) is only debuggable when
//! every stage of the pipeline — entity retrieval, row filtering, feature
//! generation, serialization/encoding, classification — can be attributed
//! its share of latency and its share of degradations. This crate is the
//! one place that machinery lives; it is std-only, matching the workspace
//! style, and designed so the *disabled* path costs nothing measurable on
//! hot loops.
//!
//! Three pieces:
//!
//! * [`Histogram`] — a mergeable log-linear-bucket latency histogram.
//!   It is the **single** percentile implementation in the workspace:
//!   the retrieval metrics (`kglink-search`) and the service metrics
//!   (`kglink-serve`) both report p50/p99 through it, so two snapshots
//!   can never disagree on small-sample percentile math again.
//! * [`Tracer`] — cheap hierarchical spans ([`Tracer::span`] returns an
//!   RAII guard), monotonic stage timers, counters, and an append-only
//!   event log with per-event sequence numbers (causal order is the
//!   sequence order). [`Tracer::disabled`] is a no-op handle: every call
//!   is a single `Option` check, no clock reads, no allocation, no locks.
//! * [`JsonlSink`] — exports the event log plus counter/stage summaries
//!   as JSON lines (`results/*.jsonl`), the format the experiment
//!   scripts consume.
//!
//! Span taxonomy used across the workspace (see DESIGN.md §9):
//!
//! | span / stage        | emitted by                                   |
//! |---------------------|----------------------------------------------|
//! | `annotate`          | `kglink_core::KgLink::annotate_request` root |
//! | `retrieval`         | Part-1 cell→KG linking                       |
//! | `filter`            | row pruning / entity filters                 |
//! | `feature`           | candidate types + feature sequences          |
//! | `encode`            | serialization + tokenization                 |
//! | `classify`          | PLM forward pass / prediction                |
//! | `fit`, `fit.*`      | training entry points                        |
//! | `serve.queue_wait`  | serve worker: real queue wait per ticket     |
//! | `serve.request`     | serve worker: service time per ticket        |
//!
//! Event names follow the same dotted style: `retrieval.retry`,
//! `breaker.transition`, `breaker.reject`, `cache.hit`, `cache.miss`,
//! `degrade.column`.

#![deny(deprecated)]

pub mod hist;
pub mod jsonl;
pub mod tracer;

pub use hist::Histogram;
pub use jsonl::{escape_json_into, JsonlSink};
pub use tracer::{Event, EventKind, Span, Tracer};
