//! Property tests for the workspace's single histogram implementation:
//! merge laws (commutative, associative, identity) and quantile error
//! bounds against a sorted-vec reference model.

use kglink_obs::hist::SUB;
use kglink_obs::Histogram;
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Nearest-rank reference quantile (the convention the repo's hand-rolled
/// percentile implementations used before they were unified here).
// kglink-lint: allow(single-percentile) — the exact nearest-rank reference
// the canonical Histogram is property-tested against; it exists to catch
// drift, not to serve metrics.
fn reference_quantile(values: &[u64], q: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..5_000_000, 0..60),
        b in proptest::collection::vec(0u64..5_000_000, 0..60),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        prop_assert_eq!(ha.merge(&hb), hb.merge(&ha));
    }

    #[test]
    fn merge_is_associative_with_identity(
        a in proptest::collection::vec(0u64..5_000_000, 0..40),
        b in proptest::collection::vec(0u64..5_000_000, 0..40),
        c in proptest::collection::vec(0u64..5_000_000, 0..40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        prop_assert_eq!(ha.merge(&hb).merge(&hc), ha.merge(&hb.merge(&hc)));
        prop_assert_eq!(ha.merge(&Histogram::new()), ha.clone());
        prop_assert_eq!(Histogram::new().merge(&ha), ha);
    }

    #[test]
    fn merge_equals_recording_the_concatenation(
        a in proptest::collection::vec(0u64..5_000_000, 0..60),
        b in proptest::collection::vec(0u64..5_000_000, 0..60),
    ) {
        let merged = hist_of(&a).merge(&hist_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&all));
    }

    #[test]
    fn quantiles_stay_within_one_bucket_of_the_reference(
        values in proptest::collection::vec(0u64..50_000_000, 1..120),
        q in 0.0f64..1.0,
    ) {
        let h = hist_of(&values);
        let approx = h.quantile(q);
        let exact = reference_quantile(&values, q);
        // Log-linear buckets bound the relative error by 1/SUB; exact
        // values below SUB carry no error at all.
        let err = (approx as f64 - exact as f64).abs();
        prop_assert!(
            err <= exact as f64 / SUB as f64 + 1e-9,
            "q={}: approx {} vs exact {} (err {})", q, approx, exact, err
        );
        // And quantiles never escape the observed range.
        prop_assert!(approx >= h.min() && approx <= h.max());
    }

    #[test]
    fn count_sum_min_max_match_the_reference(
        values in proptest::collection::vec(0u64..10_000_000, 1..100),
    ) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        prop_assert_eq!(h.quantile(0.0), h.min());
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        values in proptest::collection::vec(0u64..1_000_000, 1..80),
    ) {
        let h = hist_of(&values);
        let mut last = 0u64;
        for i in 0..=20u32 {
            let q = f64::from(i) / 20.0;
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantile not monotone at q={}", q);
            last = v;
        }
    }
}
