//! Crash-safe training checkpoints.
//!
//! [`serialize`](crate::serialize) round-trips bare parameter *values* for
//! sharing pre-trained weights in memory. This module is the on-disk,
//! integrity-checked sibling that a long `fit` run survives crashes with:
//! a [`TrainCheckpoint`] captures everything the training loop mutates —
//! parameter values, AdamW moment buffers, the optimizer step counter, the
//! RNG stream position, and the epoch/step cursor (plus an opaque `extra`
//! section for caller loop state) — so kill-at-any-step followed by resume
//! replays to a **bit-identical** final model.
//!
//! ## Format (`KGCK`, little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "KGCK"
//! 4       4     u32 version (currently 1)
//! 8       4     u32 CRC32 (IEEE) over the payload
//! 12      8     u64 payload length
//! 20      …     payload
//! ```
//!
//! Payload:
//!
//! ```text
//! u64 opt_step | u64 rng_state | u64 epoch | u64 step
//! u32 extra_len    | extra bytes   (caller-opaque loop state)
//! u32 state_len    | train-state blob (below)
//! ```
//!
//! Train-state blob (`KGLT`): `magic | u32 n_params`, then per parameter
//! (in deterministic [`HasParams::visit_params`] order) `u32 rows |
//! u32 cols | u8 decay | rows·cols f32 value | rows·cols f32 m |
//! rows·cols f32 v`.
//!
//! ## Corruption model
//!
//! Every distinct way a file can be damaged yields a distinct typed
//! [`CheckpointError`]: a clobbered magic → [`BadMagic`], a version from a
//! different build → [`WrongVersion`] (checked *before* the CRC, because a
//! different version implies a different layout), a short file →
//! [`Truncated`], a flipped bit anywhere in the payload → [`CrcMismatch`],
//! and a structurally valid checkpoint from a different model →
//! [`WrongArchitecture`] when applied.
//!
//! ## Atomic writes
//!
//! [`Checkpointer::save`] never exposes a torn file: bytes go to a
//! temporary sibling (`<path>.tmp`), are fsync'd, and only then renamed
//! over the destination — on POSIX a rename within one directory is
//! atomic, so a crash mid-save leaves either the previous complete
//! checkpoint or the new complete checkpoint, never a hybrid. This type is
//! the **only** sanctioned writer of checkpoint files (CI greps for
//! ad-hoc `fs::write` of checkpoint data).
//!
//! [`BadMagic`]: CheckpointError::BadMagic
//! [`WrongVersion`]: CheckpointError::WrongVersion
//! [`Truncated`]: CheckpointError::Truncated
//! [`CrcMismatch`]: CheckpointError::CrcMismatch
//! [`WrongArchitecture`]: CheckpointError::WrongArchitecture

use crate::layers::param::HasParams;
use crate::serialize::LoadError;
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC: &[u8; 4] = b"KGCK";
const STATE_MAGIC: &[u8; 4] = b"KGLT";

/// Current checkpoint format version.
pub const VERSION: u32 = 1;

/// Why a checkpoint could not be decoded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with the `KGCK` magic.
    BadMagic,
    /// The format version does not match this build's [`VERSION`].
    WrongVersion { found: u32, expected: u32 },
    /// The blob ends before its declared payload does (short read,
    /// truncated download, crash while a non-atomic writer ran).
    Truncated,
    /// The payload's CRC32 does not match the header (bit rot, torn
    /// write, in-flight corruption).
    CrcMismatch { expected: u32, found: u32 },
    /// The checkpoint is internally valid but was written by a model with
    /// a different parameter count or shapes.
    WrongArchitecture(LoadError),
    /// The checkpoint file could not be read or written.
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a KGCK checkpoint"),
            CheckpointError::WrongVersion { found, expected } => {
                write!(f, "checkpoint version {found}, this build reads {expected}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
            CheckpointError::CrcMismatch { expected, found } => write!(
                f,
                "checkpoint CRC mismatch: header says {expected:#010x}, payload hashes to {found:#010x}"
            ),
            CheckpointError::WrongArchitecture(e) => {
                write!(f, "checkpoint is from a different architecture: {e}")
            }
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

/// CRC32 (IEEE 802.3, reflected) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Serialize parameter values **and** AdamW moment buffers (the full
/// mutable training state of a model) into a `KGLT` blob.
///
/// Gradients are not captured: checkpoints are taken at optimizer-step
/// boundaries, where every gradient accumulator is zero by construction.
pub fn save_train_state(model: &mut dyn HasParams) -> Bytes {
    let mut tensors: Vec<(Tensor, Tensor, Tensor, bool)> = Vec::new();
    model.visit_params(&mut |p| {
        tensors.push((p.value.clone(), p.m.clone(), p.v.clone(), p.decay))
    });
    let mut buf = BytesMut::new();
    buf.put_slice(STATE_MAGIC);
    buf.put_u32_le(tensors.len() as u32);
    for (value, m, v, decay) in &tensors {
        buf.put_u32_le(value.rows() as u32);
        buf.put_u32_le(value.cols() as u32);
        buf.put_u8(u8::from(*decay));
        for t in [value, m, v] {
            for &x in t.data() {
                buf.put_f32_le(x);
            }
        }
    }
    buf.freeze()
}

/// Load a `KGLT` blob produced by [`save_train_state`] into `model`
/// (values and moments; the architecture must match exactly).
pub fn load_train_state(model: &mut dyn HasParams, blob: &[u8]) -> Result<(), LoadError> {
    let mut buf = blob;
    if buf.remaining() < 8 || &buf[..4] != STATE_MAGIC {
        return Err(LoadError::BadMagic);
    }
    buf.advance(4);
    let count = buf.get_u32_le() as usize;
    let mut tensors: Vec<(Tensor, Tensor, Tensor)> = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 9 {
            return Err(LoadError::Truncated);
        }
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        let _decay = buf.get_u8();
        let numel = rows * cols;
        if buf.remaining() < numel * 4 * 3 {
            return Err(LoadError::Truncated);
        }
        let read_tensor = |buf: &mut &[u8]| {
            let mut data = Vec::with_capacity(numel);
            for _ in 0..numel {
                data.push(buf.get_f32_le());
            }
            Tensor::from_vec(rows, cols, data)
        };
        let value = read_tensor(&mut buf);
        let m = read_tensor(&mut buf);
        let v = read_tensor(&mut buf);
        tensors.push((value, m, v));
    }
    let mut expected = 0usize;
    model.visit_params(&mut |_| expected += 1);
    if expected != tensors.len() {
        return Err(LoadError::CountMismatch {
            expected,
            found: tensors.len(),
        });
    }
    let mut idx = 0usize;
    let mut shape_err = None;
    model.visit_params(&mut |p| {
        if shape_err.is_none() {
            if p.value.shape() != tensors[idx].0.shape() {
                shape_err = Some(idx);
            } else {
                p.value = tensors[idx].0.clone();
                p.m = tensors[idx].1.clone();
                p.v = tensors[idx].2.clone();
                p.grad.fill_zero();
            }
        }
        idx += 1;
    });
    match shape_err {
        Some(index) => Err(LoadError::ShapeMismatch { index }),
        None => Ok(()),
    }
}

/// Everything a training loop needs to resume bit-identically: model
/// values + moments, the optimizer step counter, the RNG stream position,
/// the epoch/step cursor, and an opaque caller section for loop state
/// (shuffle order, early-stopping bookkeeping, loss accumulators…).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Optimizer steps taken so far ([`AdamW::steps`](crate::AdamW::steps)).
    pub opt_step: u64,
    /// Raw RNG state captured with `StdRng::state`.
    pub rng_state: u64,
    /// Epoch the cursor points into.
    pub epoch: u64,
    /// Global optimizer-step cursor (monotone across epochs).
    pub step: u64,
    /// Caller-opaque loop state, round-tripped verbatim.
    pub extra: Vec<u8>,
    /// `KGLT` train-state blob ([`save_train_state`]).
    pub train_state: Bytes,
}

impl TrainCheckpoint {
    /// Capture `model`'s full training state alongside the loop cursor.
    pub fn capture(
        model: &mut dyn HasParams,
        opt_step: u64,
        rng_state: u64,
        epoch: u64,
        step: u64,
        extra: Vec<u8>,
    ) -> Self {
        TrainCheckpoint {
            opt_step,
            rng_state,
            epoch,
            step,
            extra,
            train_state: save_train_state(model),
        }
    }

    /// Apply the captured values + moments to `model`.
    pub fn restore(&self, model: &mut dyn HasParams) -> Result<(), CheckpointError> {
        load_train_state(model, &self.train_state).map_err(CheckpointError::WrongArchitecture)
    }

    /// Encode into the `KGCK` wire format (header + CRC'd payload).
    pub fn encode(&self) -> Bytes {
        let mut payload = BytesMut::new();
        payload.put_u64_le(self.opt_step);
        payload.put_u64_le(self.rng_state);
        payload.put_u64_le(self.epoch);
        payload.put_u64_le(self.step);
        payload.put_u32_le(self.extra.len() as u32);
        payload.put_slice(&self.extra);
        payload.put_u32_le(self.train_state.len() as u32);
        payload.put_slice(&self.train_state);
        let payload = payload.freeze();
        let mut buf = BytesMut::with_capacity(20 + payload.len());
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(crc32(&payload));
        buf.put_u64_le(payload.len() as u64);
        buf.put_slice(&payload);
        buf.freeze()
    }

    /// Decode a `KGCK` blob, verifying magic, version, and CRC.
    pub fn decode(blob: &[u8]) -> Result<Self, CheckpointError> {
        let mut buf = blob;
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        if &buf[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        buf.advance(4);
        if buf.remaining() < 16 {
            return Err(CheckpointError::Truncated);
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(CheckpointError::WrongVersion {
                found: version,
                expected: VERSION,
            });
        }
        let expected_crc = buf.get_u32_le();
        let payload_len = buf.get_u64_le() as usize;
        if buf.remaining() < payload_len {
            return Err(CheckpointError::Truncated);
        }
        let payload = &buf[..payload_len];
        let found_crc = crc32(payload);
        if found_crc != expected_crc {
            return Err(CheckpointError::CrcMismatch {
                expected: expected_crc,
                found: found_crc,
            });
        }
        let mut p = payload;
        // 4 u64 cursors + 2 u32 section lengths are guaranteed by the CRC
        // only if the writer was well-formed; keep the checks anyway so a
        // hand-built payload fails typed instead of panicking.
        if p.remaining() < 8 * 4 + 4 {
            return Err(CheckpointError::Truncated);
        }
        let opt_step = p.get_u64_le();
        let rng_state = p.get_u64_le();
        let epoch = p.get_u64_le();
        let step = p.get_u64_le();
        let extra_len = p.get_u32_le() as usize;
        if p.remaining() < extra_len + 4 {
            return Err(CheckpointError::Truncated);
        }
        let extra = p[..extra_len].to_vec();
        p.advance(extra_len);
        let state_len = p.get_u32_le() as usize;
        if p.remaining() < state_len {
            return Err(CheckpointError::Truncated);
        }
        let train_state = Bytes::copy_from_slice(&p[..state_len]);
        Ok(TrainCheckpoint {
            opt_step,
            rng_state,
            epoch,
            step,
            extra,
            train_state,
        })
    }
}

/// Periodic atomic checkpoint writer. See the module docs for the
/// temp-file → fsync → rename protocol.
#[derive(Debug)]
pub struct Checkpointer {
    path: PathBuf,
    every: u64,
    saves: AtomicU64,
}

impl Checkpointer {
    /// Write checkpoints to `path`, due every `every_n_steps` optimizer
    /// steps (`0` means "never due" — save only on explicit calls).
    pub fn new(path: impl Into<PathBuf>, every_n_steps: u64) -> Self {
        Checkpointer {
            path: path.into(),
            every: every_n_steps,
            saves: AtomicU64::new(0),
        }
    }

    /// Destination path of the (complete) checkpoint file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Configured cadence in optimizer steps.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Whether global step `step` is a checkpoint boundary.
    pub fn is_due(&self, step: u64) -> bool {
        self.every > 0 && step > 0 && step.is_multiple_of(self.every)
    }

    /// Checkpoints written so far by this instance.
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    /// Atomically persist `ckpt`: write `<path>.tmp`, fsync, rename over
    /// `path`. A crash at any point leaves either the old complete file or
    /// the new complete file.
    pub fn save(&self, ckpt: &TrainCheckpoint) -> Result<(), CheckpointError> {
        use std::io::Write;
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = self.path.with_extension("kgck.tmp");
        let blob = ckpt.encode();
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&blob)?;
            // Data must be durable *before* the rename publishes it.
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.saves.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Read and decode a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> Result<TrainCheckpoint, CheckpointError> {
        let blob = std::fs::read(path)?;
        TrainCheckpoint::decode(&blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig};

    fn cfg() -> EncoderConfig {
        EncoderConfig {
            vocab_size: 16,
            d_model: 8,
            n_heads: 2,
            d_ff: 16,
            n_layers: 1,
            max_len: 8,
            seed: 3,
        }
    }

    fn dirty_encoder(seed: u64) -> Encoder {
        let mut e = Encoder::new(EncoderConfig { seed, ..cfg() });
        // Give the moment buffers non-trivial content so the round trip
        // actually checks them.
        let mut k = 0.0f32;
        e.visit_params(&mut |p| {
            for x in p.m.data_mut() {
                k += 0.25;
                *x = k;
            }
            for x in p.v.data_mut() {
                *x = k * 0.5;
            }
        });
        e
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn train_state_round_trips_values_and_moments() {
        let mut a = dirty_encoder(1);
        let blob = save_train_state(&mut a);
        let mut b = Encoder::new(EncoderConfig { seed: 99, ..cfg() });
        load_train_state(&mut b, &blob).unwrap();
        let collect = |e: &mut Encoder| {
            let mut out: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = Vec::new();
            e.visit_params(&mut |p| {
                out.push((
                    p.value.data().to_vec(),
                    p.m.data().to_vec(),
                    p.v.data().to_vec(),
                ))
            });
            out
        };
        assert_eq!(collect(&mut a), collect(&mut b));
    }

    #[test]
    fn checkpoint_encode_decode_round_trip() {
        let mut e = dirty_encoder(2);
        let ckpt = TrainCheckpoint::capture(&mut e, 41, 0xdead_beef, 3, 17, vec![9, 8, 7]);
        let decoded = TrainCheckpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn corruption_yields_distinct_typed_errors() {
        let mut e = dirty_encoder(4);
        let blob = TrainCheckpoint::capture(&mut e, 1, 2, 0, 1, Vec::new()).encode();

        // Wrong magic.
        let mut bad = blob.to_vec();
        bad[0] = b'X';
        assert_eq!(TrainCheckpoint::decode(&bad), Err(CheckpointError::BadMagic));

        // Wrong version (checked before the CRC).
        let mut bad = blob.to_vec();
        bad[4] = 42;
        assert!(matches!(
            TrainCheckpoint::decode(&bad),
            Err(CheckpointError::WrongVersion { found: 42, expected: VERSION })
        ));

        // Truncation, at several cut points.
        for cut in [0, 3, 10, blob.len() / 2, blob.len() - 1] {
            assert_eq!(
                TrainCheckpoint::decode(&blob[..cut]),
                Err(CheckpointError::Truncated),
                "cut at {cut}"
            );
        }

        // A flipped payload bit fails the CRC.
        let mut bad = blob.to_vec();
        *bad.last_mut().unwrap() ^= 0x10;
        assert!(matches!(
            TrainCheckpoint::decode(&bad),
            Err(CheckpointError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn wrong_architecture_is_typed_on_restore() {
        let mut a = dirty_encoder(5);
        let ckpt = TrainCheckpoint::capture(&mut a, 1, 2, 0, 1, Vec::new());
        let mut bigger = Encoder::new(EncoderConfig { n_layers: 2, ..cfg() });
        assert!(matches!(
            ckpt.restore(&mut bigger),
            Err(CheckpointError::WrongArchitecture(LoadError::CountMismatch { .. }))
        ));
    }

    #[test]
    fn checkpointer_writes_atomically_and_loads_back() {
        let dir = std::env::temp_dir().join(format!("kgck-test-{}", std::process::id()));
        let path = dir.join("model.kgck");
        let cp = Checkpointer::new(&path, 2);
        assert!(!cp.is_due(0) && !cp.is_due(1) && cp.is_due(2) && cp.is_due(4));
        let mut e = dirty_encoder(6);
        let ckpt = TrainCheckpoint::capture(&mut e, 7, 8, 1, 4, vec![1]);
        cp.save(&ckpt).unwrap();
        // Overwrite with a newer checkpoint; the old one must be replaced.
        let newer = TrainCheckpoint::capture(&mut e, 9, 10, 2, 6, vec![2]);
        cp.save(&newer).unwrap();
        assert_eq!(cp.saves(), 2);
        let loaded = Checkpointer::load(&path).unwrap();
        assert_eq!(loaded, newer);
        assert!(
            !path.with_extension("kgck.tmp").exists(),
            "temp file must not survive a successful save"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_a_missing_file_is_io_not_panic() {
        assert!(matches!(
            Checkpointer::load("/nonexistent/dir/nope.kgck"),
            Err(CheckpointError::Io(_))
        ));
    }
}
