//! Weight serialization.
//!
//! A tiny self-describing binary format (`bytes`-based) so one pre-trained
//! encoder can be reused across the experiment grid instead of re-running
//! MLM pre-training for every table/figure binary:
//!
//! ```text
//! magic "KGLW" | u32 n_params | for each: u32 rows | u32 cols | f32 data…
//! ```
//!
//! Parameters are identified positionally via the deterministic
//! [`HasParams::visit_params`] order, so the loading model must have the
//! exact same architecture.

use crate::layers::param::HasParams;
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"KGLW";

/// Serialization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    BadMagic,
    Truncated,
    CountMismatch { expected: usize, found: usize },
    ShapeMismatch { index: usize },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadMagic => write!(f, "not a KGLW weight blob"),
            LoadError::Truncated => write!(f, "weight blob is truncated"),
            LoadError::CountMismatch { expected, found } => {
                write!(f, "parameter count mismatch: model has {expected}, blob has {found}")
            }
            LoadError::ShapeMismatch { index } => {
                write!(f, "shape mismatch at parameter {index}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Serialize every parameter value of `model` into a byte blob.
pub fn save_params(model: &mut dyn HasParams) -> Bytes {
    let mut tensors: Vec<Tensor> = Vec::new();
    model.visit_params(&mut |p| tensors.push(p.value.clone()));
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(tensors.len() as u32);
    for t in &tensors {
        buf.put_u32_le(t.rows() as u32);
        buf.put_u32_le(t.cols() as u32);
        for &v in t.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Load a blob produced by [`save_params`] into `model` (same architecture).
pub fn load_params(model: &mut dyn HasParams, blob: &[u8]) -> Result<(), LoadError> {
    let mut buf = blob;
    if buf.remaining() < 8 || &buf[..4] != MAGIC {
        return Err(LoadError::BadMagic);
    }
    buf.advance(4);
    let count = buf.get_u32_le() as usize;
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 8 {
            return Err(LoadError::Truncated);
        }
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        if buf.remaining() < rows * cols * 4 {
            return Err(LoadError::Truncated);
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(buf.get_f32_le());
        }
        tensors.push(Tensor::from_vec(rows, cols, data));
    }
    let mut expected = 0usize;
    model.visit_params(&mut |_| expected += 1);
    if expected != tensors.len() {
        return Err(LoadError::CountMismatch {
            expected,
            found: tensors.len(),
        });
    }
    let mut idx = 0usize;
    let mut shape_err = None;
    model.visit_params(&mut |p| {
        if shape_err.is_none() {
            if p.value.shape() != tensors[idx].shape() {
                shape_err = Some(idx);
            } else {
                p.value = tensors[idx].clone();
            }
        }
        idx += 1;
    });
    match shape_err {
        Some(index) => Err(LoadError::ShapeMismatch { index }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig};

    fn cfg() -> EncoderConfig {
        EncoderConfig {
            vocab_size: 16,
            d_model: 8,
            n_heads: 2,
            d_ff: 16,
            n_layers: 1,
            max_len: 8,
            seed: 1,
        }
    }

    #[test]
    fn save_load_round_trip() {
        let mut a = Encoder::new(cfg());
        let blob = save_params(&mut a);
        let mut b = Encoder::new(EncoderConfig { seed: 999, ..cfg() });
        assert_ne!(a.infer(&[2, 5, 3]), b.infer(&[2, 5, 3]), "different seeds differ");
        load_params(&mut b, &blob).unwrap();
        assert_eq!(a.infer(&[2, 5, 3]), b.infer(&[2, 5, 3]));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut e = Encoder::new(cfg());
        assert_eq!(load_params(&mut e, b"NOPE1234"), Err(LoadError::BadMagic));
        assert_eq!(load_params(&mut e, b""), Err(LoadError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let mut e = Encoder::new(cfg());
        let blob = save_params(&mut e);
        let cut = &blob[..blob.len() / 2];
        assert_eq!(load_params(&mut e, cut), Err(LoadError::Truncated));
    }

    #[test]
    fn architecture_mismatch_rejected() {
        let mut a = Encoder::new(cfg());
        let blob = save_params(&mut a);
        let mut bigger = Encoder::new(EncoderConfig {
            n_layers: 2,
            ..cfg()
        });
        assert!(matches!(
            load_params(&mut bigger, &blob),
            Err(LoadError::CountMismatch { .. })
        ));
        let mut wider = Encoder::new(EncoderConfig {
            d_model: 16,
            d_ff: 32,
            ..cfg()
        });
        assert!(matches!(
            load_params(&mut wider, &blob),
            Err(LoadError::ShapeMismatch { .. }) | Err(LoadError::Truncated)
        ));
    }
}
