//! AdamW with linear learning-rate decay.
//!
//! Matches the paper's optimizer settings: "AdamW … with ε = 1e-6 and an
//! initial learning rate of 3e-5. The learning rate was linearly decayed
//! without warm-up."

use crate::layers::param::{HasParams, Param};
use serde::{Deserialize, Serialize};

/// AdamW hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamWConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    /// Global-norm gradient clipping threshold (0 disables).
    pub clip_norm: f32,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig {
            lr: 3e-5,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-6,
            weight_decay: 0.01,
            clip_norm: 1.0,
        }
    }
}

/// Linear decay schedule from the initial LR to zero over `total_steps`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearDecay {
    pub total_steps: usize,
}

impl LinearDecay {
    /// LR multiplier at `step` (clamped to a small floor so late steps still
    /// move).
    pub fn factor(&self, step: usize) -> f32 {
        if self.total_steps == 0 {
            return 1.0;
        }
        let remaining = 1.0 - (step as f32 / self.total_steps as f32);
        remaining.max(0.05)
    }
}

/// The AdamW optimizer. Moment buffers live inside each [`Param`]; the
/// optimizer only tracks the step counter and schedule.
#[derive(Debug, Clone)]
pub struct AdamW {
    pub config: AdamWConfig,
    pub schedule: Option<LinearDecay>,
    step: usize,
}

impl AdamW {
    pub fn new(config: AdamWConfig, schedule: Option<LinearDecay>) -> Self {
        AdamW {
            config,
            schedule,
            step: 0,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Restore the step counter from a checkpoint so the bias correction
    /// and LR schedule continue exactly where the interrupted run stopped.
    pub fn set_steps(&mut self, steps: usize) {
        self.step = steps;
    }

    /// Current effective learning rate.
    pub fn current_lr(&self) -> f32 {
        let base = self.config.lr;
        match self.schedule {
            Some(s) => base * s.factor(self.step),
            None => base,
        }
    }

    /// Apply one update to everything `model` owns, then zero gradients.
    pub fn step(&mut self, model: &mut dyn HasParams) {
        // Gradient clipping by global norm.
        if self.config.clip_norm > 0.0 {
            let norm = model.grad_norm();
            if norm > self.config.clip_norm {
                model.scale_grads(self.config.clip_norm / norm);
            }
        }
        self.step += 1;
        let lr = self.current_lr();
        let c = self.config;
        let t = self.step as f32;
        let bias1 = 1.0 - c.beta1.powf(t);
        let bias2 = 1.0 - c.beta2.powf(t);
        model.visit_params(&mut |p: &mut Param| {
            let decay = if p.decay { c.weight_decay } else { 0.0 };
            let g = p.grad.data();
            let m = p.m.data_mut();
            let v = p.v.data_mut();
            let w = p.value.data_mut();
            for i in 0..g.len() {
                m[i] = c.beta1 * m[i] + (1.0 - c.beta1) * g[i];
                v[i] = c.beta2 * v[i] + (1.0 - c.beta2) * g[i] * g[i];
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                w[i] -= lr * (m_hat / (v_hat.sqrt() + c.eps) + decay * w[i]);
            }
            p.grad.fill_zero();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// A 1-D quadratic bowl: loss = Σ (w - target)².
    struct Bowl {
        w: Param,
    }

    impl HasParams for Bowl {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.w);
        }
    }

    impl Bowl {
        fn loss_and_grad(&mut self, target: &[f32]) -> f32 {
            let mut loss = 0.0;
            for (i, &t) in target.iter().enumerate() {
                let diff = self.w.value.data()[i] - t;
                loss += diff * diff;
                self.w.grad.data_mut()[i] += 2.0 * diff;
            }
            loss
        }
    }

    #[test]
    fn adamw_minimizes_a_quadratic() {
        let mut bowl = Bowl {
            w: Param::new(Tensor::from_vec(1, 3, vec![5.0, -3.0, 1.0])),
        };
        let target = [1.0f32, 2.0, 0.0];
        let mut opt = AdamW::new(
            AdamWConfig {
                lr: 0.1,
                weight_decay: 0.0,
                clip_norm: 0.0,
                ..Default::default()
            },
            None,
        );
        let initial = bowl.loss_and_grad(&target);
        bowl.zero_grads();
        for _ in 0..500 {
            bowl.loss_and_grad(&target);
            opt.step(&mut bowl);
        }
        let after = {
            bowl.zero_grads();
            bowl.loss_and_grad(&target)
        };
        assert!(after < initial * 0.01, "loss {initial} -> {after}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut bowl = Bowl {
            w: Param::new(Tensor::from_vec(1, 2, vec![1.0, 1.0])),
        };
        bowl.loss_and_grad(&[0.0, 0.0]);
        let mut opt = AdamW::new(AdamWConfig::default(), None);
        opt.step(&mut bowl);
        assert!(bowl.w.grad.data().iter().all(|&g| g == 0.0));
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn linear_decay_schedule() {
        let s = LinearDecay { total_steps: 100 };
        assert_eq!(s.factor(0), 1.0);
        assert!((s.factor(50) - 0.5).abs() < 1e-6);
        assert!((s.factor(99) - 0.01).abs() < 0.05);
        assert_eq!(s.factor(1000), 0.05, "floored");
        let zero = LinearDecay { total_steps: 0 };
        assert_eq!(zero.factor(10), 1.0);
    }

    #[test]
    fn lr_decays_across_steps() {
        let mut bowl = Bowl {
            w: Param::new(Tensor::from_vec(1, 1, vec![1.0])),
        };
        let mut opt = AdamW::new(
            AdamWConfig::default(),
            Some(LinearDecay { total_steps: 10 }),
        );
        let lr0 = opt.current_lr();
        for _ in 0..5 {
            bowl.loss_and_grad(&[0.0]);
            opt.step(&mut bowl);
        }
        assert!(opt.current_lr() < lr0);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut bowl = Bowl {
            w: Param::new(Tensor::from_vec(1, 2, vec![0.0, 0.0])),
        };
        // Huge gradient.
        bowl.w.grad = Tensor::from_vec(1, 2, vec![1e6, 1e6]);
        let mut opt = AdamW::new(
            AdamWConfig {
                clip_norm: 1.0,
                ..Default::default()
            },
            None,
        );
        opt.step(&mut bowl);
        // After clipping, first-step |update| <= lr * ~1 per coord.
        for &w in bowl.w.value.data() {
            assert!(w.abs() <= opt.config.lr * 2.0, "w = {w}");
        }
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut bowl = Bowl {
            w: Param::new(Tensor::from_vec(1, 1, vec![10.0])),
        };
        let mut opt = AdamW::new(
            AdamWConfig {
                lr: 0.1,
                weight_decay: 0.1,
                clip_norm: 0.0,
                ..Default::default()
            },
            None,
        );
        // Zero gradient: only decay acts.
        opt.step(&mut bowl);
        assert!(bowl.w.value.data()[0] < 10.0);
    }
}
