//! The transformer encoder: embeddings + stacked blocks.

use crate::layers::block::{BlockCache, TransformerBlock};
use crate::layers::embedding::{Embedding, EmbeddingCache};
use crate::layers::layernorm::{LayerNorm, LayerNormCache};
use crate::layers::param::{HasParams, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    pub vocab_size: usize,
    pub d_model: usize,
    pub n_heads: usize,
    pub d_ff: usize,
    pub n_layers: usize,
    pub max_len: usize,
    pub seed: u64,
}

impl EncoderConfig {
    /// The reproduction's default "MiniLM" — the stand-in for BERT-base.
    /// Every model in the main results table shares this encoder size, so
    /// comparisons measure method differences, not capacity.
    pub fn mini(vocab_size: usize) -> Self {
        EncoderConfig {
            vocab_size,
            d_model: 48,
            n_heads: 4,
            d_ff: 96,
            n_layers: 2,
            max_len: 192,
            seed: 42,
        }
    }

    /// A larger encoder playing DeBERTa's role in the ablation (Table II's
    /// "KGLink DeBERTa" row): same interface, more capacity.
    pub fn large(vocab_size: usize) -> Self {
        EncoderConfig {
            vocab_size,
            d_model: 64,
            n_heads: 4,
            d_ff: 128,
            n_layers: 3,
            max_len: 192,
            seed: 42,
        }
    }
}

/// BERT-style encoder: token + position embeddings, embedding LayerNorm,
/// then `n_layers` post-LN transformer blocks.
#[derive(Debug, Clone)]
pub struct Encoder {
    pub config: EncoderConfig,
    pub token_emb: Embedding,
    pub pos_emb: Param,
    pub emb_ln: LayerNorm,
    pub blocks: Vec<TransformerBlock>,
}

/// Forward cache.
#[derive(Debug)]
pub struct EncoderCache {
    emb: EmbeddingCache,
    emb_ln: LayerNormCache,
    blocks: Vec<BlockCache>,
}

impl Encoder {
    /// Build an encoder from a config (deterministic under `config.seed`).
    pub fn new(config: EncoderConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let token_emb = Embedding::new(config.vocab_size, config.d_model, &mut rng);
        let pos_emb = Param::new(Tensor::normal(config.max_len, config.d_model, 0.02, &mut rng));
        let emb_ln = LayerNorm::new(config.d_model);
        let blocks = (0..config.n_layers)
            .map(|_| TransformerBlock::new(config.d_model, config.n_heads, config.d_ff, &mut rng))
            .collect();
        Encoder {
            config,
            token_emb,
            pos_emb,
            emb_ln,
            blocks,
        }
    }

    /// Truncate token ids to the maximum supported length.
    fn clip<'a>(&self, ids: &'a [u32]) -> &'a [u32] {
        &ids[..ids.len().min(self.config.max_len)]
    }

    /// Embed tokens + positions.
    fn embed(&self, ids: &[u32]) -> (Tensor, EmbeddingCache) {
        let (mut x, cache) = self.token_emb.forward(ids);
        for r in 0..x.rows() {
            let pos = self.pos_emb.value.row(r);
            let row = x.row_mut(r);
            for (a, &b) in row.iter_mut().zip(pos) {
                *a += b;
            }
        }
        (x, cache)
    }

    /// Encode a token sequence into `(len × d_model)` hidden states, with a
    /// cache for backprop. Sequences longer than `max_len` are truncated.
    pub fn forward(&self, ids: &[u32]) -> (Tensor, EncoderCache) {
        let ids = self.clip(ids);
        let (x, emb_cache) = self.embed(ids);
        let (mut h, emb_ln_cache) = self.emb_ln.forward(&x);
        let mut block_caches = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (next, cache) = block.forward(&h);
            h = next;
            block_caches.push(cache);
        }
        (
            h,
            EncoderCache {
                emb: emb_cache,
                emb_ln: emb_ln_cache,
                blocks: block_caches,
            },
        )
    }

    /// Encode without caching (inference / detached teacher branches).
    pub fn infer(&self, ids: &[u32]) -> Tensor {
        let ids = self.clip(ids);
        let (x, _) = self.embed(ids);
        let mut h = self.emb_ln.infer(&x);
        for block in &self.blocks {
            h = block.infer(&h);
        }
        h
    }

    /// Backward from `dh` (gradient w.r.t. the final hidden states).
    /// Accumulates into every parameter's gradient buffer.
    pub fn backward(&mut self, cache: &EncoderCache, dh: &Tensor) {
        let mut grad = dh.clone();
        for (block, bcache) in self.blocks.iter_mut().zip(&cache.blocks).rev() {
            grad = block.backward(bcache, &grad);
        }
        let dx = self.emb_ln.backward(&cache.emb_ln, &grad);
        // Position embeddings receive the same gradient rows.
        for r in 0..dx.rows() {
            let d = dx.cols();
            let dst = &mut self.pos_emb.grad.data_mut()[r * d..(r + 1) * d];
            for (g, &v) in dst.iter_mut().zip(dx.row(r)) {
                *g += v;
            }
        }
        self.token_emb.backward(&cache.emb, &dx);
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.config.d_model
    }
}

impl HasParams for Encoder {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.token_emb.visit_params(f);
        f(&mut self.pos_emb);
        self.emb_ln.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EncoderConfig {
        EncoderConfig {
            vocab_size: 20,
            d_model: 8,
            n_heads: 2,
            d_ff: 16,
            n_layers: 2,
            max_len: 16,
            seed: 3,
        }
    }

    #[test]
    fn forward_shapes() {
        let enc = Encoder::new(tiny_config());
        let (h, cache) = enc.forward(&[2, 5, 6, 3]);
        assert_eq!(h.shape(), (4, 8));
        assert_eq!(cache.blocks.len(), 2);
    }

    #[test]
    fn truncates_to_max_len() {
        let enc = Encoder::new(tiny_config());
        let ids: Vec<u32> = (0..40).map(|i| i % 20).collect();
        let h = enc.infer(&ids);
        assert_eq!(h.rows(), 16);
    }

    #[test]
    fn infer_matches_forward() {
        let enc = Encoder::new(tiny_config());
        let ids = [2u32, 7, 9, 11, 3];
        let (h, _) = enc.forward(&ids);
        let h2 = enc.infer(&ids);
        for (a, b) in h.data().iter().zip(h2.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let e1 = Encoder::new(tiny_config());
        let e2 = Encoder::new(tiny_config());
        let h1 = e1.infer(&[2, 5, 3]);
        let h2 = e2.infer(&[2, 5, 3]);
        assert_eq!(h1, h2);
    }

    #[test]
    fn backward_populates_all_gradients() {
        let mut enc = Encoder::new(tiny_config());
        let ids = [2u32, 5, 6, 3];
        let (h, cache) = enc.forward(&ids);
        let mut dh = Tensor::zeros(h.rows(), h.cols());
        dh.data_mut().fill(0.1);
        enc.backward(&cache, &dh);
        let norm = enc.grad_norm();
        assert!(norm > 0.0, "gradients must flow to parameters");
        // Token embedding rows for used ids are non-zero.
        assert!(enc.token_emb.table.grad.row(5).iter().any(|&g| g != 0.0));
        // Unused ids stay zero.
        assert!(enc.token_emb.table.grad.row(19).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn encoder_gradient_check_end_to_end() {
        let mut enc = Encoder::new(EncoderConfig {
            vocab_size: 10,
            d_model: 4,
            n_heads: 2,
            d_ff: 8,
            n_layers: 1,
            max_len: 8,
            seed: 4,
        });
        let ids = [2u32, 5, 3];
        let upstream = Tensor::from_vec(3, 4, (0..12).map(|i| (i as f32 - 6.0) / 10.0).collect());
        let (_, cache) = enc.forward(&ids);
        enc.backward(&cache, &upstream);
        // Finite difference on one token-embedding entry.
        let eps = 1e-2f32;
        let idx = 5 * 4 + 1; // row of token 5, col 1
        let ana = enc.token_emb.table.grad.data()[idx];
        let orig = enc.token_emb.table.value.data()[idx];
        enc.token_emb.table.value.data_mut()[idx] = orig + eps;
        let lp = enc.infer(&ids).dot(&upstream);
        enc.token_emb.table.value.data_mut()[idx] = orig - eps;
        let lm = enc.infer(&ids).dot(&upstream);
        enc.token_emb.table.value.data_mut()[idx] = orig;
        let num = (lp - lm) / (2.0 * eps);
        assert!(
            (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
            "numeric {num} vs analytic {ana}"
        );
    }

    #[test]
    fn param_count_grows_with_layers() {
        let mut small = Encoder::new(tiny_config());
        let mut cfg = tiny_config();
        cfg.n_layers = 3;
        let mut big = Encoder::new(cfg);
        assert!(big.param_count() > small.param_count());
    }
}
