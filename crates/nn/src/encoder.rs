//! The transformer encoder: embeddings + stacked blocks.
//!
//! Inference has two shapes. [`Encoder::infer`] encodes one sequence.
//! [`Encoder::infer_batch`] packs any number of sequences into one
//! `(Σ lengths × d_model)` activation matrix and runs **one GEMM per
//! projection per layer** for the whole batch; only the attention score
//! products remain per-segment (they must not attend across sequence
//! boundaries). Both paths produce bit-identical hidden states because
//! every row's arithmetic is independent of which batch it rides in.
//! All intermediate buffers come from an [`EncoderScratch`], so the
//! steady-state batched path performs zero heap allocations.

use crate::kernels::{self, Mat, MatMut, Trans};
use crate::layers::block::{BlockCache, TransformerBlock};
use crate::layers::embedding::{Embedding, EmbeddingCache};
use crate::layers::layernorm::{LayerNorm, LayerNormCache};
use crate::layers::param::{HasParams, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Architecture hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    pub vocab_size: usize,
    pub d_model: usize,
    pub n_heads: usize,
    pub d_ff: usize,
    pub n_layers: usize,
    pub max_len: usize,
    pub seed: u64,
}

impl EncoderConfig {
    /// The reproduction's default "MiniLM" — the stand-in for BERT-base.
    /// Every model in the main results table shares this encoder size, so
    /// comparisons measure method differences, not capacity.
    pub fn mini(vocab_size: usize) -> Self {
        EncoderConfig {
            vocab_size,
            d_model: 48,
            n_heads: 4,
            d_ff: 96,
            n_layers: 2,
            max_len: 192,
            seed: 42,
        }
    }

    /// A larger encoder playing DeBERTa's role in the ablation (Table II's
    /// "KGLink DeBERTa" row): same interface, more capacity.
    pub fn large(vocab_size: usize) -> Self {
        EncoderConfig {
            vocab_size,
            d_model: 64,
            n_heads: 4,
            d_ff: 128,
            n_layers: 3,
            max_len: 192,
            seed: 42,
        }
    }
}

/// BERT-style encoder: token + position embeddings, embedding LayerNorm,
/// then `n_layers` post-LN transformer blocks.
#[derive(Debug, Clone)]
pub struct Encoder {
    pub config: EncoderConfig,
    pub token_emb: Embedding,
    pub pos_emb: Param,
    pub emb_ln: LayerNorm,
    pub blocks: Vec<TransformerBlock>,
}

/// Forward cache.
#[derive(Debug)]
pub struct EncoderCache {
    emb: EmbeddingCache,
    emb_ln: LayerNormCache,
    blocks: Vec<BlockCache>,
}

/// Reusable buffers for [`Encoder::infer_batch`]: the packed hidden-state
/// matrix, the segment offset table, and a kernel [`Scratch`] pool for
/// every intermediate. Warm after one call with the workload's largest
/// shapes, after which batched inference allocates nothing.
///
/// [`Scratch`]: kernels::Scratch
#[derive(Debug, Default)]
pub struct EncoderScratch {
    ks: kernels::Scratch,
    hidden: Tensor,
    offsets: Vec<usize>,
}

impl EncoderScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Times the kernel scratch pool had to grow (see
    /// [`Scratch::fresh_allocs`](kernels::Scratch::fresh_allocs)).
    pub fn fresh_allocs(&self) -> u64 {
        self.ks.fresh_allocs()
    }
}

/// The result of a batched forward: hidden states for all segments packed
/// row-wise into one matrix, with an offset table delimiting segments.
/// Borrows the [`EncoderScratch`] it was computed into.
#[derive(Debug)]
pub struct BatchHidden<'s> {
    hidden: &'s Tensor,
    offsets: &'s [usize],
}

impl BatchHidden<'_> {
    /// Number of encoded segments.
    pub fn segments(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Encoded length of segment `seg` (its input length clipped to
    /// `max_len`).
    pub fn len(&self, seg: usize) -> usize {
        self.offsets[seg + 1] - self.offsets[seg]
    }

    /// Hidden-state row `r` of segment `seg`.
    pub fn row(&self, seg: usize, r: usize) -> &[f32] {
        debug_assert!(r < self.len(seg));
        self.hidden.row(self.offsets[seg] + r)
    }

    /// The packed `(Σ lengths × d_model)` hidden matrix.
    pub fn packed(&self) -> &Tensor {
        self.hidden
    }

    /// Cumulative row offsets, one entry per segment plus a final total.
    pub fn offsets(&self) -> &[usize] {
        self.offsets
    }
}

thread_local! {
    static ENC_SCRATCH: RefCell<EncoderScratch> = RefCell::new(EncoderScratch::default());
}

/// Run `f` with this thread's shared [`EncoderScratch`]. Re-entrant: a
/// nested call sees a fresh scratch (its buffers are dropped afterwards).
pub fn with_encoder_scratch<R>(f: impl FnOnce(&mut EncoderScratch) -> R) -> R {
    ENC_SCRATCH.with(|cell| {
        let mut s = cell.take();
        let r = f(&mut s);
        cell.replace(s);
        r
    })
}

impl Encoder {
    /// Build an encoder from a config (deterministic under `config.seed`).
    pub fn new(config: EncoderConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let token_emb = Embedding::new(config.vocab_size, config.d_model, &mut rng);
        let pos_emb = Param::new(Tensor::normal(config.max_len, config.d_model, 0.02, &mut rng));
        let emb_ln = LayerNorm::new(config.d_model);
        let blocks = (0..config.n_layers)
            .map(|_| TransformerBlock::new(config.d_model, config.n_heads, config.d_ff, &mut rng))
            .collect();
        Encoder {
            config,
            token_emb,
            pos_emb,
            emb_ln,
            blocks,
        }
    }

    /// Truncate token ids to the maximum supported length.
    fn clip<'a>(&self, ids: &'a [u32]) -> &'a [u32] {
        &ids[..ids.len().min(self.config.max_len)]
    }

    /// Embed tokens + positions.
    fn embed(&self, ids: &[u32]) -> (Tensor, EmbeddingCache) {
        let (mut x, cache) = self.token_emb.forward(ids);
        for r in 0..x.rows() {
            let pos = self.pos_emb.value.row(r);
            let row = x.row_mut(r);
            for (a, &b) in row.iter_mut().zip(pos) {
                *a += b;
            }
        }
        (x, cache)
    }

    /// Encode a token sequence into `(len × d_model)` hidden states, with a
    /// cache for backprop. Sequences longer than `max_len` are truncated.
    pub fn forward(&self, ids: &[u32]) -> (Tensor, EncoderCache) {
        let ids = self.clip(ids);
        let (x, emb_cache) = self.embed(ids);
        let (mut h, emb_ln_cache) = self.emb_ln.forward(&x);
        let mut block_caches = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (next, cache) = block.forward(&h);
            h = next;
            block_caches.push(cache);
        }
        (
            h,
            EncoderCache {
                emb: emb_cache,
                emb_ln: emb_ln_cache,
                blocks: block_caches,
            },
        )
    }

    /// Encode without caching (inference / detached teacher branches).
    /// A batch-of-one wrapper around [`Encoder::infer_batch`].
    pub fn infer(&self, ids: &[u32]) -> Tensor {
        with_encoder_scratch(|es| self.infer_batch(&[ids], es).packed().clone())
    }

    /// Encode a batch of token sequences in one packed forward pass.
    ///
    /// Bit-identical to calling [`Encoder::infer`] once per sequence (each
    /// row's arithmetic is independent of its batch), but runs one GEMM
    /// per projection per layer over all `Σ lengths` rows at once; only
    /// the attention score products stay per-segment per-head so no
    /// sequence attends across its boundary. All intermediates come from
    /// `scratch` — in steady state this path performs zero heap
    /// allocations.
    pub fn infer_batch<'s>(
        &self,
        seqs: &[&[u32]],
        scratch: &'s mut EncoderScratch,
    ) -> BatchHidden<'s> {
        self.forward_packed(seqs, None, scratch)
    }

    /// [`Encoder::infer_batch`] for callers that will only read a known
    /// subset of output rows (classification reads one CLS row per
    /// column, not the whole sequence).
    ///
    /// `needed` lists the `(segment, row)` pairs the caller will read,
    /// grouped by ascending segment with strictly ascending rows within a
    /// segment, every row in bounds after `max_len` clipping. The final
    /// transformer block computes its row-local work (Q projection,
    /// attention output, FFN, layer norms) **only for those rows**; the
    /// K/V context every attention row needs still covers the full batch.
    /// Each listed row is bit-identical to the same row from
    /// [`Encoder::infer_batch`]; *unlisted* rows of the result hold
    /// stale intermediate state and must not be read.
    pub fn infer_batch_rows<'s>(
        &self,
        seqs: &[&[u32]],
        needed: &[(usize, usize)],
        scratch: &'s mut EncoderScratch,
    ) -> BatchHidden<'s> {
        self.forward_packed(seqs, Some(needed), scratch)
    }

    fn forward_packed<'s>(
        &self,
        seqs: &[&[u32]],
        needed: Option<&[(usize, usize)]>,
        scratch: &'s mut EncoderScratch,
    ) -> BatchHidden<'s> {
        let d = self.config.d_model;
        let d_ff = self.config.d_ff;
        let EncoderScratch { ks: s, hidden, offsets } = scratch;
        offsets.clear();
        offsets.push(0);
        let mut total = 0usize;
        for seq in seqs {
            total += seq.len().min(self.config.max_len);
            offsets.push(total);
        }
        hidden.resize(total, d);

        // Embedding: token row + position row, then the embedding LayerNorm.
        for (si, seq) in seqs.iter().enumerate() {
            let ids = self.clip(seq);
            let base = offsets[si];
            for (r, &id) in ids.iter().enumerate() {
                let tok = self.token_emb.table.value.row(id as usize);
                let pos = self.pos_emb.value.row(r);
                let dst = hidden.row_mut(base + r);
                for c in 0..d {
                    dst[c] = tok[c] + pos[c];
                }
            }
        }
        kernels::layer_norm_rows(
            hidden.data_mut(),
            self.emb_ln.gamma.value.data(),
            self.emb_ln.beta.value.data(),
        );

        // Activation buffers for the block loop; q and k double as the
        // attention-output and FFN-output buffers once dead.
        let mut q = s.take(total * d);
        let mut k = s.take(total * d);
        let mut v = s.take(total * d);
        let mut ctx = s.take(total * d);
        let mut ff = s.take(total * d_ff);
        let last = self.blocks.len().wrapping_sub(1);
        for (bi, block) in self.blocks.iter().enumerate() {
            if bi == last {
                if let Some(needed) = needed {
                    self.last_block_rows(block, needed, hidden, offsets, &mut k, &mut v, s);
                    break;
                }
            }
            let attn = &block.attn;
            let (n_heads, dh) = (attn.n_heads(), attn.d_head());
            let scale = 1.0 / (dh as f32).sqrt();
            // Q/K/V projections: one GEMM each over the whole batch.
            for (dst, lin) in [(&mut q, &attn.wq), (&mut k, &attn.wk), (&mut v, &attn.wv)] {
                kernels::gemm(
                    hidden.as_mat(),
                    lin.w.value.as_mat(),
                    Trans::No,
                    Trans::No,
                    &mut MatMut::new(dst, total, d),
                    s,
                );
                kernels::add_bias_rows(dst, lin.b.value.data());
            }
            // Attention scores per segment per head over strided views.
            for seg in 0..seqs.len() {
                let o = offsets[seg];
                let l = offsets[seg + 1] - o;
                if l == 0 {
                    continue;
                }
                let mut scores = s.take(l * l);
                for h in 0..n_heads {
                    let off = o * d + h * dh;
                    kernels::gemm(
                        Mat::with_stride(&q[off..], l, dh, d),
                        Mat::with_stride(&k[off..], l, dh, d),
                        Trans::No,
                        Trans::Yes,
                        &mut MatMut::new(&mut scores, l, l),
                        s,
                    );
                    kernels::scaled_softmax_rows(&mut scores, l, scale);
                    kernels::gemm(
                        Mat::new(&scores, l, l),
                        Mat::with_stride(&v[off..], l, dh, d),
                        Trans::No,
                        Trans::No,
                        &mut MatMut::with_stride(&mut ctx[off..], l, dh, d),
                        s,
                    );
                }
                s.give(scores);
            }
            // Output projection (into q, now dead) + residual + LN1.
            kernels::gemm(
                Mat::new(&ctx, total, d),
                attn.wo.w.value.as_mat(),
                Trans::No,
                Trans::No,
                &mut MatMut::new(&mut q, total, d),
                s,
            );
            kernels::add_bias_rows(&mut q, attn.wo.b.value.data());
            // h1 = x + attn_out (addition commutes bitwise on floats,
            // so this matches the legacy `x.add(&a)` exactly).
            for (a, &x_v) in q.iter_mut().zip(hidden.data().iter()) {
                *a += x_v;
            }
            kernels::layer_norm_rows(
                &mut q,
                block.ln1.gamma.value.data(),
                block.ln1.beta.value.data(),
            );
            // q now holds h. FFN: fused bias+GELU, second projection into
            // k (dead), then the second residual + LN2 back into `hidden`.
            kernels::gemm(
                Mat::new(&q, total, d),
                block.ffn.fc1.w.value.as_mat(),
                Trans::No,
                Trans::No,
                &mut MatMut::new(&mut ff, total, d_ff),
                s,
            );
            kernels::bias_gelu_rows(&mut ff, block.ffn.fc1.b.value.data());
            kernels::gemm(
                Mat::new(&ff, total, d_ff),
                block.ffn.fc2.w.value.as_mat(),
                Trans::No,
                Trans::No,
                &mut MatMut::new(&mut k, total, d),
                s,
            );
            kernels::add_bias_rows(&mut k, block.ffn.fc2.b.value.data());
            for ((out, &h_v), &f_v) in hidden.data_mut().iter_mut().zip(q.iter()).zip(k.iter()) {
                *out = h_v + f_v;
            }
            kernels::layer_norm_rows(
                hidden.data_mut(),
                block.ln2.gamma.value.data(),
                block.ln2.beta.value.data(),
            );
        }
        s.give(q);
        s.give(k);
        s.give(v);
        s.give(ctx);
        s.give(ff);
        BatchHidden {
            hidden: &*hidden,
            offsets: offsets.as_slice(),
        }
    }

    /// The final transformer block, computed only for the `needed`
    /// output rows (see [`Encoder::infer_batch_rows`]). Attention K/V
    /// still spans every row of the batch; everything else — Q, scores,
    /// context, output projection, residuals, layer norms, FFN — runs on
    /// a gathered `(needed × d)` matrix and is scattered back into
    /// `hidden` at the end. Row arithmetic is untouched, so each written
    /// row is bit-identical to the unpruned forward.
    #[allow(clippy::too_many_arguments)]
    fn last_block_rows(
        &self,
        block: &TransformerBlock,
        needed: &[(usize, usize)],
        hidden: &mut Tensor,
        offsets: &[usize],
        k: &mut [f32],
        v: &mut [f32],
        s: &mut kernels::Scratch,
    ) {
        let d = self.config.d_model;
        let d_ff = self.config.d_ff;
        let total = hidden.rows();
        let nr = needed.len();
        debug_assert!(
            needed
                .windows(2)
                .all(|w| w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1)),
            "needed rows must be grouped by ascending segment, ascending row"
        );
        if nr == 0 {
            return;
        }
        let attn = &block.attn;
        let (n_heads, dh) = (attn.n_heads(), attn.d_head());
        let scale = 1.0 / (dh as f32).sqrt();
        // K/V must cover every row any needed row attends over.
        for (dst, lin) in [(&mut *k, &attn.wk), (&mut *v, &attn.wv)] {
            kernels::gemm(
                hidden.as_mat(),
                lin.w.value.as_mat(),
                Trans::No,
                Trans::No,
                &mut MatMut::new(dst, total, d),
                s,
            );
            kernels::add_bias_rows(dst, lin.b.value.data());
        }
        // Gather the needed block-input rows, then project Q for them only.
        let mut hc = s.take(nr * d);
        for (ci, &(seg, r)) in needed.iter().enumerate() {
            debug_assert!(seg < offsets.len() - 1 && r < offsets[seg + 1] - offsets[seg]);
            hc[ci * d..(ci + 1) * d].copy_from_slice(hidden.row(offsets[seg] + r));
        }
        let mut qc = s.take(nr * d);
        kernels::gemm(
            Mat::new(&hc, nr, d),
            attn.wq.w.value.as_mat(),
            Trans::No,
            Trans::No,
            &mut MatMut::new(&mut qc, nr, d),
            s,
        );
        kernels::add_bias_rows(&mut qc, attn.wq.b.value.data());
        // Attention per segment-run of needed rows, per head.
        let mut ctxc = s.take(nr * d);
        let mut ci = 0;
        while ci < nr {
            let seg = needed[ci].0;
            let mut cj = ci;
            while cj < nr && needed[cj].0 == seg {
                cj += 1;
            }
            let nseg = cj - ci;
            let o = offsets[seg];
            let l = offsets[seg + 1] - o;
            let mut scores = s.take(nseg * l);
            for h in 0..n_heads {
                let off_kv = o * d + h * dh;
                kernels::gemm(
                    Mat::with_stride(&qc[ci * d + h * dh..], nseg, dh, d),
                    Mat::with_stride(&k[off_kv..], l, dh, d),
                    Trans::No,
                    Trans::Yes,
                    &mut MatMut::new(&mut scores, nseg, l),
                    s,
                );
                kernels::scaled_softmax_rows(&mut scores, l, scale);
                kernels::gemm(
                    Mat::new(&scores, nseg, l),
                    Mat::with_stride(&v[off_kv..], l, dh, d),
                    Trans::No,
                    Trans::No,
                    &mut MatMut::with_stride(&mut ctxc[ci * d + h * dh..], nseg, dh, d),
                    s,
                );
            }
            s.give(scores);
            ci = cj;
        }
        // Output projection + residual + LN1, all on the gathered rows.
        let mut ac = s.take(nr * d);
        kernels::gemm(
            Mat::new(&ctxc, nr, d),
            attn.wo.w.value.as_mat(),
            Trans::No,
            Trans::No,
            &mut MatMut::new(&mut ac, nr, d),
            s,
        );
        kernels::add_bias_rows(&mut ac, attn.wo.b.value.data());
        for (a, &x_v) in ac.iter_mut().zip(hc.iter()) {
            *a += x_v;
        }
        kernels::layer_norm_rows(&mut ac, block.ln1.gamma.value.data(), block.ln1.beta.value.data());
        // FFN into qc (dead), then the second residual + LN2, scattered
        // back into `hidden` at the needed rows.
        let mut ffc = s.take(nr * d_ff);
        kernels::gemm(
            Mat::new(&ac, nr, d),
            block.ffn.fc1.w.value.as_mat(),
            Trans::No,
            Trans::No,
            &mut MatMut::new(&mut ffc, nr, d_ff),
            s,
        );
        kernels::bias_gelu_rows(&mut ffc, block.ffn.fc1.b.value.data());
        kernels::gemm(
            Mat::new(&ffc, nr, d_ff),
            block.ffn.fc2.w.value.as_mat(),
            Trans::No,
            Trans::No,
            &mut MatMut::new(&mut qc, nr, d),
            s,
        );
        kernels::add_bias_rows(&mut qc, block.ffn.fc2.b.value.data());
        // h2 = h + ffn_out, bit-parity with the unpruned loop.
        for (out, &h_v) in qc.iter_mut().zip(ac.iter()) {
            *out += h_v;
        }
        kernels::layer_norm_rows(&mut qc, block.ln2.gamma.value.data(), block.ln2.beta.value.data());
        for (ci, &(seg, r)) in needed.iter().enumerate() {
            hidden
                .row_mut(offsets[seg] + r)
                .copy_from_slice(&qc[ci * d..(ci + 1) * d]);
        }
        s.give(hc);
        s.give(qc);
        s.give(ctxc);
        s.give(ac);
        s.give(ffc);
    }

    /// Backward from `dh` (gradient w.r.t. the final hidden states).
    /// Accumulates into every parameter's gradient buffer.
    pub fn backward(&mut self, cache: &EncoderCache, dh: &Tensor) {
        let mut grad = dh.clone();
        for (block, bcache) in self.blocks.iter_mut().zip(&cache.blocks).rev() {
            grad = block.backward(bcache, &grad);
        }
        let dx = self.emb_ln.backward(&cache.emb_ln, &grad);
        // Position embeddings receive the same gradient rows.
        for r in 0..dx.rows() {
            let d = dx.cols();
            let dst = &mut self.pos_emb.grad.data_mut()[r * d..(r + 1) * d];
            for (g, &v) in dst.iter_mut().zip(dx.row(r)) {
                *g += v;
            }
        }
        self.token_emb.backward(&cache.emb, &dx);
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.config.d_model
    }
}

impl HasParams for Encoder {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.token_emb.visit_params(f);
        f(&mut self.pos_emb);
        self.emb_ln.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EncoderConfig {
        EncoderConfig {
            vocab_size: 20,
            d_model: 8,
            n_heads: 2,
            d_ff: 16,
            n_layers: 2,
            max_len: 16,
            seed: 3,
        }
    }

    #[test]
    fn forward_shapes() {
        let enc = Encoder::new(tiny_config());
        let (h, cache) = enc.forward(&[2, 5, 6, 3]);
        assert_eq!(h.shape(), (4, 8));
        assert_eq!(cache.blocks.len(), 2);
    }

    #[test]
    fn truncates_to_max_len() {
        let enc = Encoder::new(tiny_config());
        let ids: Vec<u32> = (0..40).map(|i| i % 20).collect();
        let h = enc.infer(&ids);
        assert_eq!(h.rows(), 16);
    }

    #[test]
    fn infer_matches_forward() {
        let enc = Encoder::new(tiny_config());
        let ids = [2u32, 7, 9, 11, 3];
        let (h, _) = enc.forward(&ids);
        let h2 = enc.infer(&ids);
        for (a, b) in h.data().iter().zip(h2.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn pruned_batch_rows_match_full_batch_bitwise() {
        let enc = Encoder::new(tiny_config());
        let seqs_owned: Vec<Vec<u32>> = vec![
            (0..11).map(|i| (i * 3) % 20).collect(),
            (0..5).map(|i| (i * 7) % 20).collect(),
            (0..9).map(|i| (i * 5 + 1) % 20).collect(),
        ];
        let seqs: Vec<&[u32]> = seqs_owned.iter().map(Vec::as_slice).collect();
        // Several rows in one segment, a lone CLS row in the others.
        let needed = [(0usize, 2usize), (0, 7), (0, 10), (1, 0), (2, 0)];
        let mut full_s = EncoderScratch::new();
        let full: Vec<Vec<f32>> = {
            let b = enc.infer_batch(&seqs, &mut full_s);
            needed.iter().map(|&(seg, r)| b.row(seg, r).to_vec()).collect()
        };
        let mut pruned_s = EncoderScratch::new();
        let b = enc.infer_batch_rows(&seqs, &needed, &mut pruned_s);
        for (&(seg, r), want) in needed.iter().zip(&full) {
            let got = b.row(seg, r);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.to_bits(), w.to_bits(), "row ({seg},{r}) diverged");
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let e1 = Encoder::new(tiny_config());
        let e2 = Encoder::new(tiny_config());
        let h1 = e1.infer(&[2, 5, 3]);
        let h2 = e2.infer(&[2, 5, 3]);
        assert_eq!(h1, h2);
    }

    #[test]
    fn backward_populates_all_gradients() {
        let mut enc = Encoder::new(tiny_config());
        let ids = [2u32, 5, 6, 3];
        let (h, cache) = enc.forward(&ids);
        let mut dh = Tensor::zeros(h.rows(), h.cols());
        dh.data_mut().fill(0.1);
        enc.backward(&cache, &dh);
        let norm = enc.grad_norm();
        assert!(norm > 0.0, "gradients must flow to parameters");
        // Token embedding rows for used ids are non-zero.
        assert!(enc.token_emb.table.grad.row(5).iter().any(|&g| g != 0.0));
        // Unused ids stay zero.
        assert!(enc.token_emb.table.grad.row(19).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn encoder_gradient_check_end_to_end() {
        let mut enc = Encoder::new(EncoderConfig {
            vocab_size: 10,
            d_model: 4,
            n_heads: 2,
            d_ff: 8,
            n_layers: 1,
            max_len: 8,
            seed: 4,
        });
        let ids = [2u32, 5, 3];
        let upstream = Tensor::from_vec(3, 4, (0..12).map(|i| (i as f32 - 6.0) / 10.0).collect());
        let (_, cache) = enc.forward(&ids);
        enc.backward(&cache, &upstream);
        // Finite difference on one token-embedding entry.
        let eps = 1e-2f32;
        let idx = 5 * 4 + 1; // row of token 5, col 1
        let ana = enc.token_emb.table.grad.data()[idx];
        let orig = enc.token_emb.table.value.data()[idx];
        enc.token_emb.table.value.data_mut()[idx] = orig + eps;
        let lp = enc.infer(&ids).dot(&upstream);
        enc.token_emb.table.value.data_mut()[idx] = orig - eps;
        let lm = enc.infer(&ids).dot(&upstream);
        enc.token_emb.table.value.data_mut()[idx] = orig;
        let num = (lp - lm) / (2.0 * eps);
        assert!(
            (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
            "numeric {num} vs analytic {ana}"
        );
    }

    #[test]
    fn batched_forward_is_bit_identical_to_sequential() {
        let enc = Encoder::new(tiny_config());
        let seqs: Vec<Vec<u32>> = vec![
            vec![2, 5, 6, 3],
            vec![2, 7, 3],
            vec![2, 1, 4, 9, 11, 3],
            vec![2, 3],
        ];
        let refs: Vec<&[u32]> = seqs.iter().map(|s| s.as_slice()).collect();
        let mut scratch = EncoderScratch::new();
        let batch = enc.infer_batch(&refs, &mut scratch);
        assert_eq!(batch.segments(), 4);
        for (si, seq) in seqs.iter().enumerate() {
            let single = enc.infer(seq);
            assert_eq!(batch.len(si), single.rows());
            for r in 0..single.rows() {
                assert_eq!(batch.row(si, r), single.row(r), "segment {si} row {r}");
            }
        }
    }

    #[test]
    fn batched_forward_handles_empty_and_overlong_segments() {
        let enc = Encoder::new(tiny_config());
        let long: Vec<u32> = (0..40).map(|i| i % 20).collect();
        let refs: Vec<&[u32]> = vec![&[], &long, &[2, 3]];
        let mut scratch = EncoderScratch::new();
        let batch = enc.infer_batch(&refs, &mut scratch);
        assert_eq!(batch.len(0), 0);
        assert_eq!(batch.len(1), 16, "clipped to max_len");
        assert_eq!(batch.len(2), 2);
        assert_eq!(batch.packed().rows(), 18);
    }

    #[test]
    fn batched_forward_is_allocation_free_in_steady_state() {
        let enc = Encoder::new(tiny_config());
        let seqs: Vec<&[u32]> = vec![&[2, 5, 6, 3], &[2, 7, 9, 11, 3]];
        let mut scratch = EncoderScratch::new();
        // Warm-up call sizes every pool buffer.
        enc.infer_batch(&seqs, &mut scratch);
        let warm = scratch.fresh_allocs();
        for _ in 0..5 {
            enc.infer_batch(&seqs, &mut scratch);
        }
        assert_eq!(
            scratch.fresh_allocs(),
            warm,
            "steady-state batched inference must not grow the scratch pool"
        );
    }

    #[test]
    fn param_count_grows_with_layers() {
        let mut small = Encoder::new(tiny_config());
        let mut cfg = tiny_config();
        cfg.n_layers = 3;
        let mut big = Encoder::new(cfg);
        assert!(big.param_count() > small.param_count());
    }
}
