//! The one public home for numeric kernels.
//!
//! Re-exports the curated surface of the `kglink-kernels` crate: the
//! single [`gemm`]/[`gemm_acc`] matrix-multiply entry point over strided
//! [`Mat`]/[`MatMut`] views, the fused row-wise kernels (softmax with the
//! attention scale folded in, layer norm, bias+GELU), the scalar
//! activation helpers, and the [`Scratch`] arena machinery that keeps the
//! steady-state inference path allocation-free.
//!
//! This module replaces the former `kglink_nn::ops` free functions and
//! the `Tensor::matmul_tn`/`matmul_nt` method variants; downstream crates
//! import from here rather than depending on `kglink-kernels` directly.

pub use kglink_kernels::{
    add_bias_rows, bias_gelu_rows, gelu, gelu_grad, gemm, gemm_acc, layer_norm_rows,
    layer_norm_rows_cached, log_softmax, mean, reference_mode, scaled_softmax_rows,
    set_reference_mode, softmax, softmax_backward_rows, softmax_rows, with_thread_scratch,
    Mat, MatMut, Scratch, Trans, LAYER_NORM_EPS,
};
