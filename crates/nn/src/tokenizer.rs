//! Word-level tokenizer with BERT-style special tokens.
//!
//! A full WordPiece implementation is unnecessary at this scale: the
//! synthetic corpus has a closed vocabulary, so a word-level tokenizer with
//! an `[UNK]` fallback plus numeric bucketing tokens reproduces everything
//! the pipeline needs. Special token ids are fixed constants so serialized
//! sequences are interpretable without the vocabulary at hand.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fixed ids of the special tokens.
pub mod special {
    /// Padding (unused in practice — sequences are unpadded — but reserved).
    pub const PAD: u32 = 0;
    /// Unknown word.
    pub const UNK: u32 = 1;
    /// Sequence / column start marker whose encoding represents the column.
    pub const CLS: u32 = 2;
    /// End of sequence.
    pub const SEP: u32 = 3;
    /// Mask token for the column-type representation generation task.
    pub const MASK: u32 = 4;
    /// Numeric cell bucket tokens: `NUM_SMALL..=NUM_HUGE` cover magnitudes.
    pub const NUM_NEG: u32 = 5;
    pub const NUM_SMALL: u32 = 6;
    pub const NUM_MID: u32 = 7;
    pub const NUM_LARGE: u32 = 8;
    pub const NUM_HUGE: u32 = 9;
    /// Year-like token.
    pub const YEAR: u32 = 10;
    /// First id available for real words.
    pub const FIRST_WORD: u32 = 11;

    /// Human-readable names, indexed by id.
    pub const NAMES: [&str; 11] = [
        "[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]", "[NUM-]", "[NUM<100]", "[NUM<10K]",
        "[NUM<1M]", "[NUM>=1M]", "[YEAR]",
    ];
}

/// An immutable vocabulary mapping words to ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    words: Vec<String>,
    by_word: HashMap<String, u32>,
}

impl Vocab {
    /// Build from an iterator of texts, keeping words with at least
    /// `min_count` occurrences (and capping at `max_size` total entries,
    /// keeping the most frequent).
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(
        texts: I,
        min_count: usize,
        max_size: usize,
    ) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for text in texts {
            for w in split_words(text) {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        // kglink-lint: allow(nondeterminism) — order-insensitive: the filter
        // is per-entry and the sort below totally orders by (count, word).
        let mut items: Vec<(String, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= min_count)
            .collect();
        // Most frequent first; ties alphabetical for determinism.
        items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        items.truncate(max_size.saturating_sub(special::FIRST_WORD as usize));

        let mut words: Vec<String> = special::NAMES.iter().map(|s| s.to_string()).collect();
        let mut by_word = HashMap::with_capacity(items.len());
        for (w, _) in items {
            by_word.insert(w.clone(), words.len() as u32);
            words.push(w);
        }
        Vocab { words, by_word }
    }

    /// Total vocabulary size including special tokens.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        false // always contains the special tokens
    }

    /// Id of a (lowercased) word, or `UNK`.
    pub fn id(&self, word: &str) -> u32 {
        self.by_word
            .get(word)
            .copied()
            .unwrap_or(special::UNK)
    }

    /// Word for an id.
    pub fn word(&self, id: u32) -> &str {
        &self.words[id as usize]
    }
}

/// Lowercased alphanumeric word split (same analyzer as the search crate).
fn split_words(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lower in ch.to_lowercase() {
                current.push(lower);
            }
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Tokenizer over a fixed vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tokenizer {
    pub vocab: Vocab,
}

impl Tokenizer {
    pub fn new(vocab: Vocab) -> Self {
        Tokenizer { vocab }
    }

    /// Tokenize free text into word ids (no special tokens added).
    pub fn encode_text(&self, text: &str) -> Vec<u32> {
        split_words(text).iter().map(|w| self.vocab.id(w)).collect()
    }

    /// Token for a numeric value: sign/magnitude bucket.
    pub fn encode_number(&self, value: f64) -> u32 {
        if value < 0.0 {
            special::NUM_NEG
        } else if (1000.0..2400.0).contains(&value) && value.fract() == 0.0 {
            special::YEAR
        } else if value < 100.0 {
            special::NUM_SMALL
        } else if value < 10_000.0 {
            special::NUM_MID
        } else if value < 1_000_000.0 {
            special::NUM_LARGE
        } else {
            special::NUM_HUGE
        }
    }

    /// Decode ids to a readable string (diagnostics only).
    pub fn decode(&self, ids: &[u32]) -> String {
        ids.iter()
            .map(|&i| self.vocab.word(i))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocab {
        Vocab::build(
            ["peter steele musician", "peter plays bass", "rust album"],
            1,
            1000,
        )
    }

    #[test]
    fn special_ids_are_stable() {
        let v = vocab();
        assert_eq!(v.word(special::CLS), "[CLS]");
        assert_eq!(v.word(special::MASK), "[MASK]");
        assert_eq!(v.word(special::UNK), "[UNK]");
        assert!(v.len() > special::FIRST_WORD as usize);
    }

    #[test]
    fn known_words_round_trip() {
        let t = Tokenizer::new(vocab());
        let ids = t.encode_text("Peter Steele");
        assert!(ids.iter().all(|&i| i >= special::FIRST_WORD));
        assert_eq!(t.decode(&ids), "peter steele");
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let t = Tokenizer::new(vocab());
        let ids = t.encode_text("zyzzyva");
        assert_eq!(ids, vec![special::UNK]);
    }

    #[test]
    fn min_count_filters_rare_words() {
        let v = Vocab::build(["a a a b"], 2, 1000);
        assert_ne!(v.id("a"), special::UNK);
        assert_eq!(v.id("b"), special::UNK);
    }

    #[test]
    fn max_size_caps_vocabulary() {
        let v = Vocab::build(["a a a b b c"], 1, special::FIRST_WORD as usize + 2);
        assert_eq!(v.len(), special::FIRST_WORD as usize + 2);
        // Most frequent words survive.
        assert_ne!(v.id("a"), special::UNK);
        assert_ne!(v.id("b"), special::UNK);
        assert_eq!(v.id("c"), special::UNK);
    }

    #[test]
    fn numeric_buckets() {
        let t = Tokenizer::new(vocab());
        assert_eq!(t.encode_number(-5.0), special::NUM_NEG);
        assert_eq!(t.encode_number(42.0), special::NUM_SMALL);
        assert_eq!(t.encode_number(1990.0), special::YEAR);
        assert_eq!(t.encode_number(1990.5), special::NUM_MID);
        assert_eq!(t.encode_number(500_000.0), special::NUM_LARGE);
        assert_eq!(t.encode_number(5e9), special::NUM_HUGE);
    }

    #[test]
    fn build_is_deterministic() {
        let v1 = vocab();
        let v2 = vocab();
        assert_eq!(v1.words, v2.words);
    }
}
