//! Layer normalization over the feature dimension.

use crate::kernels;
use crate::layers::param::{HasParams, Param};
use crate::tensor::Tensor;

/// LayerNorm with learned gain `γ` and bias `β`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    pub gamma: Param,
    pub beta: Param,
}

/// Forward cache: normalized activations and per-row inverse std.
#[derive(Debug)]
pub struct LayerNormCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Identity-initialized LayerNorm of width `d`.
    pub fn new(d: usize) -> Self {
        LayerNorm {
            gamma: Param::new_no_decay(Tensor::from_vec(1, d, vec![1.0; d])),
            beta: Param::new_no_decay(Tensor::zeros(1, d)),
        }
    }

    /// Forward with cache.
    pub fn forward(&self, x: &Tensor) -> (Tensor, LayerNormCache) {
        let d = x.cols();
        let mut x_hat = Tensor::zeros(x.rows(), d);
        let mut inv_std = Vec::with_capacity(x.rows());
        let mut y = Tensor::zeros(x.rows(), d);
        kernels::layer_norm_rows_cached(
            x.data(),
            self.gamma.value.data(),
            self.beta.value.data(),
            y.data_mut(),
            x_hat.data_mut(),
            &mut inv_std,
        );
        (y, LayerNormCache { x_hat, inv_std })
    }

    /// Forward without caching.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        kernels::layer_norm_rows(
            y.data_mut(),
            self.gamma.value.data(),
            self.beta.value.data(),
        );
        y
    }

    /// Backward: accumulates `dγ`, `dβ`, returns `dx`.
    pub fn backward(&mut self, cache: &LayerNormCache, dy: &Tensor) -> Tensor {
        let d = dy.cols();
        let mut dx = Tensor::zeros(dy.rows(), d);
        let gamma = self.gamma.value.data();
        // One scratch row hoisted out of the per-row loop.
        let mut dxhat = kernels::with_thread_scratch(|s| s.take(d));
        for r in 0..dy.rows() {
            let g = dy.row(r);
            let xh = cache.x_hat.row(r);
            // Parameter grads.
            {
                let dgamma = self.gamma.grad.data_mut();
                let dbeta = self.beta.grad.data_mut();
                for c in 0..d {
                    dgamma[c] += g[c] * xh[c];
                    dbeta[c] += g[c];
                }
            }
            // dx = (istd/d) * (d*dxhat - Σdxhat - xhat * Σ(dxhat ⊙ xhat))
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for c in 0..d {
                dxhat[c] = g[c] * gamma[c];
                sum_dxhat += dxhat[c];
                sum_dxhat_xhat += dxhat[c] * xh[c];
            }
            let istd = cache.inv_std[r];
            let out = dx.row_mut(r);
            let n = d as f32;
            for c in 0..d {
                out[c] = istd / n * (n * dxhat[c] - sum_dxhat - xh[c] * sum_dxhat_xhat);
            }
        }
        kernels::with_thread_scratch(|s| s.give(dxhat));
        dx
    }
}

impl HasParams for LayerNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_normalized_with_identity_params() {
        let ln = LayerNorm::new(4);
        let x = Tensor::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0]);
        let (y, _) = ln.forward(&x);
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = y.row(r).iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut ln = LayerNorm::new(5);
        // Non-trivial params.
        ln.gamma.value = Tensor::xavier(1, 5, &mut rng);
        ln.beta.value = Tensor::xavier(1, 5, &mut rng);
        let x = Tensor::xavier(3, 5, &mut rng);
        let upstream = Tensor::xavier(3, 5, &mut rng);
        let (_, cache) = ln.forward(&x);
        let dx = ln.backward(&cache, &upstream);

        let eps = 1e-3f32;
        let loss = |ln: &LayerNorm, x: &Tensor| ln.infer(x).dot(&upstream);
        // dx check on several coordinates.
        for idx in [0usize, 4, 9, 14] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&ln, &xp) - loss(&ln, &xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 2e-2,
                "dx[{idx}]: numeric {num} vs analytic {}",
                dx.data()[idx]
            );
        }
        // dgamma check.
        for idx in [0usize, 3] {
            let orig = ln.gamma.value.data()[idx];
            ln.gamma.value.data_mut()[idx] = orig + eps;
            let lp = loss(&ln, &x);
            ln.gamma.value.data_mut()[idx] = orig - eps;
            let lm = loss(&ln, &x);
            ln.gamma.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - ln.gamma.grad.data()[idx]).abs() < 2e-2);
        }
    }

    #[test]
    fn params_skip_weight_decay() {
        let mut ln = LayerNorm::new(2);
        let mut decays = Vec::new();
        ln.visit_params(&mut |p| decays.push(p.decay));
        assert_eq!(decays, vec![false, false]);
    }
}
