//! Fully-connected layer `y = xW + b`.

use crate::kernels::{self, Trans};
use crate::layers::param::{HasParams, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// A linear projection with bias.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight, shape `(in, out)`.
    pub w: Param,
    /// Bias, shape `(1, out)`.
    pub b: Param,
}

/// Forward cache: the input needed for weight gradients.
#[derive(Debug)]
pub struct LinearCache {
    x: Tensor,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(d_in: usize, d_out: usize, rng: &mut StdRng) -> Self {
        Linear {
            w: Param::new(Tensor::xavier(d_in, d_out, rng)),
            b: Param::new_no_decay(Tensor::zeros(1, d_out)),
        }
    }

    /// Forward with cache for a later backward.
    pub fn forward(&self, x: &Tensor) -> (Tensor, LinearCache) {
        let y = self.infer(x);
        // kglink-lint: allow(hot-path-alloc) — the training cache must own
        // the input past the caller's borrow.
        (y, LinearCache { x: x.clone() })
    }

    /// Forward without caching (inference / teacher branches).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut y = Tensor::zeros(x.rows(), self.d_out());
        kernels::with_thread_scratch(|s| {
            kernels::gemm(
                x.as_mat(),
                self.w.value.as_mat(),
                Trans::No,
                Trans::No,
                &mut y.as_mat_mut(),
                s,
            );
        });
        kernels::add_bias_rows(y.data_mut(), self.b.value.data());
        y
    }

    /// Backward: accumulates `dW = xᵀ dy`, `db = Σ dy`, returns `dx = dy Wᵀ`.
    pub fn backward(&mut self, cache: &LinearCache, dy: &Tensor) -> Tensor {
        let mut dx = Tensor::zeros(dy.rows(), self.d_in());
        kernels::with_thread_scratch(|s| {
            kernels::gemm_acc(
                cache.x.as_mat(),
                dy.as_mat(),
                Trans::Yes,
                Trans::No,
                &mut self.w.grad.as_mat_mut(),
                s,
            );
            kernels::gemm(
                dy.as_mat(),
                self.w.value.as_mat(),
                Trans::No,
                Trans::Yes,
                &mut dx.as_mat_mut(),
                s,
            );
        });
        self.b.grad.add_assign(&dy.sum_rows());
        dx
    }

    /// Input dimension.
    pub fn d_in(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimension.
    pub fn d_out(&self) -> usize {
        self.w.value.cols()
    }
}

impl HasParams for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Finite-difference gradient check of a scalar loss `L = Σ y ⊙ u`.
    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = Tensor::xavier(4, 3, &mut rng);
        let upstream = Tensor::xavier(4, 2, &mut rng);

        let (y, cache) = layer.forward(&x);
        let _ = y;
        let dx = layer.backward(&cache, &upstream);

        let eps = 1e-3f32;
        // Check dW entries.
        for idx in [0usize, 2, 5] {
            let orig = layer.w.value.data()[idx];
            layer.w.value.data_mut()[idx] = orig + eps;
            let lp = layer.infer(&x).dot(&upstream);
            layer.w.value.data_mut()[idx] = orig - eps;
            let lm = layer.infer(&x).dot(&upstream);
            layer.w.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = layer.w.grad.data()[idx];
            assert!((num - ana).abs() < 1e-2, "dW[{idx}]: {num} vs {ana}");
        }
        // Check db.
        let orig = layer.b.value.data()[1];
        layer.b.value.data_mut()[1] = orig + eps;
        let lp = layer.infer(&x).dot(&upstream);
        layer.b.value.data_mut()[1] = orig - eps;
        let lm = layer.infer(&x).dot(&upstream);
        layer.b.value.data_mut()[1] = orig;
        let num = (lp - lm) / (2.0 * eps);
        assert!((num - layer.b.grad.data()[1]).abs() < 1e-2);
        // Check dx.
        let mut x2 = x.clone();
        let orig = x2.data()[7];
        x2.data_mut()[7] = orig + eps;
        let lp = layer.infer(&x2).dot(&upstream);
        x2.data_mut()[7] = orig - eps;
        let lm = layer.infer(&x2).dot(&upstream);
        let num = (lp - lm) / (2.0 * eps);
        assert!((num - dx.data()[7]).abs() < 1e-2);
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut layer = Linear::new(2, 2, &mut rng);
        let x = Tensor::from_vec(1, 2, vec![1.0, 1.0]);
        let dy = Tensor::from_vec(1, 2, vec![1.0, 1.0]);
        let (_, c1) = layer.forward(&x);
        layer.backward(&c1, &dy);
        let g1 = layer.w.grad.clone();
        let (_, c2) = layer.forward(&x);
        layer.backward(&c2, &dy);
        for (a, b) in layer.w.grad.data().iter().zip(g1.data()) {
            assert!((a - 2.0 * b).abs() < 1e-6, "second call doubles the gradient");
        }
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(7);
        let layer = Linear::new(3, 4, &mut rng);
        let x = Tensor::xavier(2, 3, &mut rng);
        let (y, _) = layer.forward(&x);
        assert_eq!(y, layer.infer(&x));
        assert_eq!(layer.d_in(), 3);
        assert_eq!(layer.d_out(), 4);
    }
}
