//! Multi-head self-attention with full backward pass.

use crate::kernels::{self, Mat, MatMut, Trans};
use crate::layers::linear::{Linear, LinearCache};
use crate::layers::param::{HasParams, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Standard scaled dot-product multi-head self-attention.
///
/// Operates on one unpadded sequence `(L × d)`, so no attention mask is
/// needed (mini-batching is gradient accumulation upstream).
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    n_heads: usize,
}

/// Forward cache for the backward pass.
#[derive(Debug)]
pub struct AttentionCache {
    cq: LinearCache,
    ck: LinearCache,
    cv: LinearCache,
    co: LinearCache,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Post-softmax attention matrices, one `(L × L)` per head.
    probs: Vec<Tensor>,
}

impl MultiHeadSelfAttention {
    /// Create with `d` model width split across `n_heads` heads.
    ///
    /// # Panics
    /// Panics if `d` is not divisible by `n_heads`.
    pub fn new(d: usize, n_heads: usize, rng: &mut StdRng) -> Self {
        assert!(d.is_multiple_of(n_heads), "d must divide evenly into heads");
        MultiHeadSelfAttention {
            wq: Linear::new(d, d, rng),
            wk: Linear::new(d, d, rng),
            wv: Linear::new(d, d, rng),
            wo: Linear::new(d, d, rng),
            n_heads,
        }
    }

    /// Number of attention heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Head width.
    pub fn d_head(&self) -> usize {
        self.wq.d_out() / self.n_heads
    }

    /// Strided view of the `h`-th head's columns of a `(L × d)` tensor —
    /// no copy, the kernel layer handles the stride.
    fn head(x: &Tensor, h: usize, dh: usize) -> Mat<'_> {
        Mat::with_stride(&x.data()[h * dh..], x.rows(), dh, x.cols())
    }

    /// Mutable strided view of the `h`-th head's columns.
    fn head_mut(x: &mut Tensor, h: usize, dh: usize) -> MatMut<'_> {
        let (rows, cols) = x.shape();
        MatMut::with_stride(&mut x.data_mut()[h * dh..], rows, dh, cols)
    }

    /// Forward with cache.
    pub fn forward(&self, x: &Tensor) -> (Tensor, AttentionCache) {
        let dh = self.d_head();
        let scale = 1.0 / (dh as f32).sqrt();
        let (q, cq) = self.wq.forward(x);
        let (k, ck) = self.wk.forward(x);
        let (v, cv) = self.wv.forward(x);
        let l = x.rows();
        let mut ctx = Tensor::zeros(l, self.wq.d_out());
        let mut probs = Vec::with_capacity(self.n_heads);
        kernels::with_thread_scratch(|s| {
            for h in 0..self.n_heads {
                // The post-softmax attention matrix is freshly allocated
                // (not scratch) because the cache owns it for backward.
                let mut scores = Tensor::zeros(l, l);
                kernels::gemm(
                    Self::head(&q, h, dh),
                    Self::head(&k, h, dh),
                    Trans::No,
                    Trans::Yes,
                    &mut scores.as_mat_mut(),
                    s,
                );
                kernels::scaled_softmax_rows(scores.data_mut(), l, scale);
                kernels::gemm(
                    scores.as_mat(),
                    Self::head(&v, h, dh),
                    Trans::No,
                    Trans::No,
                    &mut Self::head_mut(&mut ctx, h, dh),
                    s,
                );
                probs.push(scores);
            }
        });
        let (y, co) = self.wo.forward(&ctx);
        (
            y,
            AttentionCache {
                cq,
                ck,
                cv,
                co,
                q,
                k,
                v,
                probs,
            },
        )
    }

    /// Forward without caching: scores live entirely in scratch.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let dh = self.d_head();
        let scale = 1.0 / (dh as f32).sqrt();
        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let v = self.wv.infer(x);
        let l = x.rows();
        let mut ctx = Tensor::zeros(l, self.wq.d_out());
        kernels::with_thread_scratch(|s| {
            let mut scores = s.take(l * l);
            for h in 0..self.n_heads {
                kernels::gemm(
                    Self::head(&q, h, dh),
                    Self::head(&k, h, dh),
                    Trans::No,
                    Trans::Yes,
                    &mut MatMut::new(&mut scores, l, l),
                    s,
                );
                kernels::scaled_softmax_rows(&mut scores, l, scale);
                kernels::gemm(
                    Mat::new(&scores, l, l),
                    Self::head(&v, h, dh),
                    Trans::No,
                    Trans::No,
                    &mut Self::head_mut(&mut ctx, h, dh),
                    s,
                );
            }
            s.give(scores);
        });
        self.wo.infer(&ctx)
    }

    /// Backward: accumulates all projection gradients, returns `dx`.
    pub fn backward(&mut self, cache: &AttentionCache, dy: &Tensor) -> Tensor {
        let dh = self.d_head();
        let scale = 1.0 / (dh as f32).sqrt();
        let dctx = self.wo.backward(&cache.co, dy);
        let l = dy.rows();
        let d = self.wq.d_out();
        let mut dq = Tensor::zeros(l, d);
        let mut dk = Tensor::zeros(l, d);
        let mut dv = Tensor::zeros(l, d);
        kernels::with_thread_scratch(|s| {
            let mut d_probs = s.take(l * l);
            for h in 0..self.n_heads {
                let probs = &cache.probs[h];
                // dA = dctx_h · Vᵀ ; dV = Aᵀ · dctx_h
                kernels::gemm(
                    Self::head(&dctx, h, dh),
                    Self::head(&cache.v, h, dh),
                    Trans::No,
                    Trans::Yes,
                    &mut MatMut::new(&mut d_probs, l, l),
                    s,
                );
                kernels::gemm(
                    probs.as_mat(),
                    Self::head(&dctx, h, dh),
                    Trans::Yes,
                    Trans::No,
                    &mut Self::head_mut(&mut dv, h, dh),
                    s,
                );
                // Through softmax.
                kernels::softmax_backward_rows(probs.data(), &mut d_probs, l);
                // Through scaling and QKᵀ.
                for g in &mut d_probs {
                    *g *= scale;
                }
                kernels::gemm(
                    Mat::new(&d_probs, l, l),
                    Self::head(&cache.k, h, dh),
                    Trans::No,
                    Trans::No,
                    &mut Self::head_mut(&mut dq, h, dh),
                    s,
                );
                kernels::gemm(
                    Mat::new(&d_probs, l, l),
                    Self::head(&cache.q, h, dh),
                    Trans::Yes,
                    Trans::No,
                    &mut Self::head_mut(&mut dk, h, dh),
                    s,
                );
            }
            s.give(d_probs);
        });
        let mut dx = self.wq.backward(&cache.cq, &dq);
        dx.add_assign(&self.wk.backward(&cache.ck, &dk));
        dx.add_assign(&self.wv.backward(&cache.cv, &dv));
        dx
    }
}

impl HasParams for MultiHeadSelfAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(12);
        let attn = MultiHeadSelfAttention::new(8, 2, &mut rng);
        let x = Tensor::xavier(5, 8, &mut rng);
        let (y, cache) = attn.forward(&x);
        assert_eq!(y.shape(), (5, 8));
        assert_eq!(cache.probs.len(), 2);
        assert_eq!(cache.probs[0].shape(), (5, 5));
        // Attention rows are distributions.
        for r in 0..5 {
            let s: f32 = cache.probs[0].row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(13);
        let attn = MultiHeadSelfAttention::new(8, 4, &mut rng);
        let x = Tensor::xavier(3, 8, &mut rng);
        let (y, _) = attn.forward(&x);
        let y2 = attn.infer(&x);
        for (a, b) in y.data().iter().zip(y2.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut attn = MultiHeadSelfAttention::new(4, 2, &mut rng);
        let x = Tensor::xavier(3, 4, &mut rng);
        let upstream = Tensor::xavier(3, 4, &mut rng);
        let (_, cache) = attn.forward(&x);
        let dx = attn.backward(&cache, &upstream);
        let eps = 1e-3f32;
        for idx in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (attn.infer(&xp).dot(&upstream) - attn.infer(&xm).dot(&upstream)) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 2e-2,
                "dx[{idx}]: numeric {num} vs analytic {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut attn = MultiHeadSelfAttention::new(4, 1, &mut rng);
        let x = Tensor::xavier(3, 4, &mut rng);
        let upstream = Tensor::xavier(3, 4, &mut rng);
        let (_, cache) = attn.forward(&x);
        attn.backward(&cache, &upstream);
        let eps = 1e-3f32;
        for idx in [0usize, 7] {
            let orig = attn.wq.w.value.data()[idx];
            attn.wq.w.value.data_mut()[idx] = orig + eps;
            let lp = attn.infer(&x).dot(&upstream);
            attn.wq.w.value.data_mut()[idx] = orig - eps;
            let lm = attn.infer(&x).dot(&upstream);
            attn.wq.w.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = attn.wq.w.grad.data()[idx];
            assert!((num - ana).abs() < 2e-2, "dWq[{idx}]: {num} vs {ana}");
        }
    }

    #[test]
    #[should_panic(expected = "d must divide evenly")]
    fn indivisible_heads_panic() {
        let mut rng = StdRng::seed_from_u64(16);
        let _ = MultiHeadSelfAttention::new(6, 4, &mut rng);
    }
}
