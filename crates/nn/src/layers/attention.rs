//! Multi-head self-attention with full backward pass.

use crate::layers::linear::{Linear, LinearCache};
use crate::layers::param::{HasParams, Param};
use crate::ops::{softmax_backward_rows, softmax_rows};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Standard scaled dot-product multi-head self-attention.
///
/// Operates on one unpadded sequence `(L × d)`, so no attention mask is
/// needed (mini-batching is gradient accumulation upstream).
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    n_heads: usize,
}

/// Forward cache for the backward pass.
#[derive(Debug)]
pub struct AttentionCache {
    cq: LinearCache,
    ck: LinearCache,
    cv: LinearCache,
    co: LinearCache,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Post-softmax attention matrices, one `(L × L)` per head.
    probs: Vec<Tensor>,
}

impl MultiHeadSelfAttention {
    /// Create with `d` model width split across `n_heads` heads.
    ///
    /// # Panics
    /// Panics if `d` is not divisible by `n_heads`.
    pub fn new(d: usize, n_heads: usize, rng: &mut StdRng) -> Self {
        assert!(d.is_multiple_of(n_heads), "d must divide evenly into heads");
        MultiHeadSelfAttention {
            wq: Linear::new(d, d, rng),
            wk: Linear::new(d, d, rng),
            wv: Linear::new(d, d, rng),
            wo: Linear::new(d, d, rng),
            n_heads,
        }
    }

    /// Head width.
    fn d_head(&self) -> usize {
        self.wq.d_out() / self.n_heads
    }

    /// Copy the `h`-th head's columns out of a `(L × d)` tensor.
    fn slice_head(x: &Tensor, h: usize, dh: usize) -> Tensor {
        let mut out = Tensor::zeros(x.rows(), dh);
        for r in 0..x.rows() {
            out.row_mut(r).copy_from_slice(&x.row(r)[h * dh..(h + 1) * dh]);
        }
        out
    }

    /// Add a `(L × dh)` tensor back into the `h`-th head's columns.
    fn unslice_head(dst: &mut Tensor, src: &Tensor, h: usize, dh: usize) {
        for r in 0..src.rows() {
            let d = &mut dst.row_mut(r)[h * dh..(h + 1) * dh];
            for (a, &b) in d.iter_mut().zip(src.row(r)) {
                *a += b;
            }
        }
    }

    /// Forward with cache.
    pub fn forward(&self, x: &Tensor) -> (Tensor, AttentionCache) {
        let dh = self.d_head();
        let scale = 1.0 / (dh as f32).sqrt();
        let (q, cq) = self.wq.forward(x);
        let (k, ck) = self.wk.forward(x);
        let (v, cv) = self.wv.forward(x);
        let l = x.rows();
        let mut ctx = Tensor::zeros(l, self.wq.d_out());
        let mut probs = Vec::with_capacity(self.n_heads);
        for h in 0..self.n_heads {
            let qh = Self::slice_head(&q, h, dh);
            let kh = Self::slice_head(&k, h, dh);
            let vh = Self::slice_head(&v, h, dh);
            let mut scores = qh.matmul_nt(&kh);
            scores.scale(scale);
            softmax_rows(&mut scores);
            let ctx_h = scores.matmul(&vh);
            Self::unslice_head(&mut ctx, &ctx_h, h, dh);
            probs.push(scores);
        }
        let (y, co) = self.wo.forward(&ctx);
        (
            y,
            AttentionCache {
                cq,
                ck,
                cv,
                co,
                q,
                k,
                v,
                probs,
            },
        )
    }

    /// Forward without caching.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let dh = self.d_head();
        let scale = 1.0 / (dh as f32).sqrt();
        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let v = self.wv.infer(x);
        let mut ctx = Tensor::zeros(x.rows(), self.wq.d_out());
        for h in 0..self.n_heads {
            let qh = Self::slice_head(&q, h, dh);
            let kh = Self::slice_head(&k, h, dh);
            let vh = Self::slice_head(&v, h, dh);
            let mut scores = qh.matmul_nt(&kh);
            scores.scale(scale);
            softmax_rows(&mut scores);
            let ctx_h = scores.matmul(&vh);
            Self::unslice_head(&mut ctx, &ctx_h, h, dh);
        }
        self.wo.infer(&ctx)
    }

    /// Backward: accumulates all projection gradients, returns `dx`.
    pub fn backward(&mut self, cache: &AttentionCache, dy: &Tensor) -> Tensor {
        let dh = self.d_head();
        let scale = 1.0 / (dh as f32).sqrt();
        let dctx = self.wo.backward(&cache.co, dy);
        let l = dy.rows();
        let d = self.wq.d_out();
        let mut dq = Tensor::zeros(l, d);
        let mut dk = Tensor::zeros(l, d);
        let mut dv = Tensor::zeros(l, d);
        for h in 0..self.n_heads {
            let dctx_h = Self::slice_head(&dctx, h, dh);
            let kh = Self::slice_head(&cache.k, h, dh);
            let vh = Self::slice_head(&cache.v, h, dh);
            let qh = Self::slice_head(&cache.q, h, dh);
            let probs = &cache.probs[h];
            // dA = dctx_h · Vᵀ ; dV = Aᵀ · dctx_h
            let mut d_probs = dctx_h.matmul_nt(&vh);
            let dvh = probs.matmul_tn(&dctx_h);
            // Through softmax.
            softmax_backward_rows(probs, &mut d_probs);
            // Through scaling and QKᵀ.
            d_probs.scale(scale);
            let dqh = d_probs.matmul(&kh);
            let dkh = d_probs.matmul_tn(&qh);
            Self::unslice_head(&mut dq, &dqh, h, dh);
            Self::unslice_head(&mut dk, &dkh, h, dh);
            Self::unslice_head(&mut dv, &dvh, h, dh);
        }
        let mut dx = self.wq.backward(&cache.cq, &dq);
        dx.add_assign(&self.wk.backward(&cache.ck, &dk));
        dx.add_assign(&self.wv.backward(&cache.cv, &dv));
        dx
    }
}

impl HasParams for MultiHeadSelfAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(12);
        let attn = MultiHeadSelfAttention::new(8, 2, &mut rng);
        let x = Tensor::xavier(5, 8, &mut rng);
        let (y, cache) = attn.forward(&x);
        assert_eq!(y.shape(), (5, 8));
        assert_eq!(cache.probs.len(), 2);
        assert_eq!(cache.probs[0].shape(), (5, 5));
        // Attention rows are distributions.
        for r in 0..5 {
            let s: f32 = cache.probs[0].row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(13);
        let attn = MultiHeadSelfAttention::new(8, 4, &mut rng);
        let x = Tensor::xavier(3, 8, &mut rng);
        let (y, _) = attn.forward(&x);
        let y2 = attn.infer(&x);
        for (a, b) in y.data().iter().zip(y2.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut attn = MultiHeadSelfAttention::new(4, 2, &mut rng);
        let x = Tensor::xavier(3, 4, &mut rng);
        let upstream = Tensor::xavier(3, 4, &mut rng);
        let (_, cache) = attn.forward(&x);
        let dx = attn.backward(&cache, &upstream);
        let eps = 1e-3f32;
        for idx in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (attn.infer(&xp).dot(&upstream) - attn.infer(&xm).dot(&upstream)) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 2e-2,
                "dx[{idx}]: numeric {num} vs analytic {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut attn = MultiHeadSelfAttention::new(4, 1, &mut rng);
        let x = Tensor::xavier(3, 4, &mut rng);
        let upstream = Tensor::xavier(3, 4, &mut rng);
        let (_, cache) = attn.forward(&x);
        attn.backward(&cache, &upstream);
        let eps = 1e-3f32;
        for idx in [0usize, 7] {
            let orig = attn.wq.w.value.data()[idx];
            attn.wq.w.value.data_mut()[idx] = orig + eps;
            let lp = attn.infer(&x).dot(&upstream);
            attn.wq.w.value.data_mut()[idx] = orig - eps;
            let lm = attn.infer(&x).dot(&upstream);
            attn.wq.w.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = attn.wq.w.grad.data()[idx];
            assert!((num - ana).abs() < 2e-2, "dWq[{idx}]: {num} vs {ana}");
        }
    }

    #[test]
    #[should_panic(expected = "d must divide evenly")]
    fn indivisible_heads_panic() {
        let mut rng = StdRng::seed_from_u64(16);
        let _ = MultiHeadSelfAttention::new(6, 4, &mut rng);
    }
}
