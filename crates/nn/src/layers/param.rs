//! Trainable parameters with gradient and AdamW moment buffers.

use crate::tensor::Tensor;

/// A trainable tensor plus its gradient accumulator and Adam moments.
///
/// Gradients are *accumulated* by layer backward passes; the optimizer
/// consumes and clears them. Keeping the moments inside the parameter keeps
/// the optimizer stateless apart from its step counter.
#[derive(Debug, Clone)]
pub struct Param {
    pub value: Tensor,
    pub grad: Tensor,
    pub m: Tensor,
    pub v: Tensor,
    /// Whether AdamW applies weight decay to this parameter (biases and
    /// layer-norm parameters conventionally skip decay).
    pub decay: bool,
}

impl Param {
    /// Wrap an initialized tensor as a decayed parameter.
    pub fn new(value: Tensor) -> Self {
        let (r, c) = value.shape();
        Param {
            value,
            grad: Tensor::zeros(r, c),
            m: Tensor::zeros(r, c),
            v: Tensor::zeros(r, c),
            decay: true,
        }
    }

    /// Wrap a tensor as a non-decayed parameter (bias / layer norm).
    pub fn new_no_decay(value: Tensor) -> Self {
        Param {
            decay: false,
            ..Self::new(value)
        }
    }

    /// Zero the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// Anything that owns parameters exposes them to the optimizer through this
/// trait. Visit order must be deterministic.
pub trait HasParams {
    /// Call `f` on every owned parameter, in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Zero all gradient accumulators.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Global L2 norm of all gradients (for clipping).
    fn grad_norm(&mut self) -> f32 {
        let mut sq = 0.0f32;
        self.visit_params(&mut |p| {
            sq += p.grad.data().iter().map(|g| g * g).sum::<f32>();
        });
        sq.sqrt()
    }

    /// Scale all gradients by `s` (for clipping / batch averaging).
    fn scale_grads(&mut self, s: f32) {
        self.visit_params(&mut |p| p.grad.scale(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two {
        a: Param,
        b: Param,
    }

    impl HasParams for Two {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    #[test]
    fn param_buffers_match_shape() {
        let p = Param::new(Tensor::zeros(3, 4));
        assert_eq!(p.grad.shape(), (3, 4));
        assert_eq!(p.m.shape(), (3, 4));
        assert!(p.decay);
        let q = Param::new_no_decay(Tensor::zeros(1, 4));
        assert!(!q.decay);
    }

    #[test]
    fn visitor_counts_and_clears() {
        let mut two = Two {
            a: Param::new(Tensor::from_vec(1, 2, vec![1.0, 2.0])),
            b: Param::new(Tensor::from_vec(2, 1, vec![3.0, 4.0])),
        };
        assert_eq!(two.param_count(), 4);
        two.a.grad = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((two.grad_norm() - 5.0).abs() < 1e-6);
        two.scale_grads(2.0);
        assert_eq!(two.a.grad.data(), &[6.0, 8.0]);
        two.zero_grads();
        assert_eq!(two.a.grad.data(), &[0.0, 0.0]);
    }
}
