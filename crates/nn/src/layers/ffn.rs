//! Position-wise feed-forward network with GELU.

use crate::kernels::{self, gelu, gelu_grad, Trans};
use crate::layers::linear::{Linear, LinearCache};
use crate::layers::param::{HasParams, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// `FFN(x) = GELU(x W1 + b1) W2 + b2`.
#[derive(Debug, Clone)]
pub struct FeedForward {
    pub fc1: Linear,
    pub fc2: Linear,
}

/// Forward cache.
#[derive(Debug)]
pub struct FfnCache {
    c1: LinearCache,
    c2: LinearCache,
    /// Pre-activation of the hidden layer (needed for the GELU derivative).
    hidden_pre: Tensor,
}

impl FeedForward {
    /// Create with hidden width `d_ff`.
    pub fn new(d: usize, d_ff: usize, rng: &mut StdRng) -> Self {
        FeedForward {
            fc1: Linear::new(d, d_ff, rng),
            fc2: Linear::new(d_ff, d, rng),
        }
    }

    /// Forward with cache.
    pub fn forward(&self, x: &Tensor) -> (Tensor, FfnCache) {
        let (hidden_pre, c1) = self.fc1.forward(x);
        // kglink-lint: allow(hot-path-alloc) — the pre-activation must be
        // kept for the GELU derivative, so the activated copy is a real
        // second buffer.
        let mut hidden = hidden_pre.clone();
        for v in hidden.data_mut() {
            *v = gelu(*v);
        }
        let (y, c2) = self.fc2.forward(&hidden);
        (
            y,
            FfnCache {
                c1,
                c2,
                hidden_pre,
            },
        )
    }

    /// Forward without caching: `x·W1` then the fused bias+GELU kernel,
    /// then the second projection.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut hidden = Tensor::zeros(x.rows(), self.fc1.d_out());
        kernels::with_thread_scratch(|s| {
            kernels::gemm(
                x.as_mat(),
                self.fc1.w.value.as_mat(),
                Trans::No,
                Trans::No,
                &mut hidden.as_mat_mut(),
                s,
            );
        });
        kernels::bias_gelu_rows(hidden.data_mut(), self.fc1.b.value.data());
        self.fc2.infer(&hidden)
    }

    /// Backward: accumulates gradients, returns `dx`.
    pub fn backward(&mut self, cache: &FfnCache, dy: &Tensor) -> Tensor {
        let mut dhidden = self.fc2.backward(&cache.c2, dy);
        for (g, &pre) in dhidden.data_mut().iter_mut().zip(cache.hidden_pre.data()) {
            *g *= gelu_grad(pre);
        }
        self.fc1.backward(&cache.c1, &dhidden)
    }
}

impl HasParams for FeedForward {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_consistency() {
        let mut rng = StdRng::seed_from_u64(17);
        let ffn = FeedForward::new(4, 8, &mut rng);
        let x = Tensor::xavier(3, 4, &mut rng);
        let (y, _) = ffn.forward(&x);
        assert_eq!(y.shape(), (3, 4));
        let y2 = ffn.infer(&x);
        for (a, b) in y.data().iter().zip(y2.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(18);
        let mut ffn = FeedForward::new(3, 6, &mut rng);
        let x = Tensor::xavier(2, 3, &mut rng);
        let upstream = Tensor::xavier(2, 3, &mut rng);
        let (_, cache) = ffn.forward(&x);
        let dx = ffn.backward(&cache, &upstream);
        let eps = 1e-3f32;
        for idx in [0usize, 3, 5] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (ffn.infer(&xp).dot(&upstream) - ffn.infer(&xm).dot(&upstream)) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 2e-2,
                "dx[{idx}]: {num} vs {}",
                dx.data()[idx]
            );
        }
        // fc1 weight gradient.
        for idx in [0usize, 10] {
            let orig = ffn.fc1.w.value.data()[idx];
            ffn.fc1.w.value.data_mut()[idx] = orig + eps;
            let lp = ffn.infer(&x).dot(&upstream);
            ffn.fc1.w.value.data_mut()[idx] = orig - eps;
            let lm = ffn.infer(&x).dot(&upstream);
            ffn.fc1.w.value.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - ffn.fc1.w.grad.data()[idx]).abs() < 2e-2);
        }
    }
}
