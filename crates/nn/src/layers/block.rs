//! A post-LN transformer encoder block (BERT layout).

use crate::layers::attention::{AttentionCache, MultiHeadSelfAttention};
use crate::layers::ffn::{FeedForward, FfnCache};
use crate::layers::layernorm::{LayerNorm, LayerNormCache};
use crate::layers::param::{HasParams, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// `x → LN(x + Attn(x)) → LN(· + FFN(·))`, as in the original BERT.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    pub attn: MultiHeadSelfAttention,
    pub ln1: LayerNorm,
    pub ffn: FeedForward,
    pub ln2: LayerNorm,
}

/// Forward cache.
#[derive(Debug)]
pub struct BlockCache {
    attn: AttentionCache,
    ln1: LayerNormCache,
    ffn: FfnCache,
    ln2: LayerNormCache,
}

impl TransformerBlock {
    /// Create a block of width `d` with `n_heads` heads and FFN width `d_ff`.
    pub fn new(d: usize, n_heads: usize, d_ff: usize, rng: &mut StdRng) -> Self {
        TransformerBlock {
            attn: MultiHeadSelfAttention::new(d, n_heads, rng),
            ln1: LayerNorm::new(d),
            ffn: FeedForward::new(d, d_ff, rng),
            ln2: LayerNorm::new(d),
        }
    }

    /// Forward with cache.
    pub fn forward(&self, x: &Tensor) -> (Tensor, BlockCache) {
        let (a, attn_cache) = self.attn.forward(x);
        let (h, ln1_cache) = self.ln1.forward(&x.add(&a));
        let (f, ffn_cache) = self.ffn.forward(&h);
        let (y, ln2_cache) = self.ln2.forward(&h.add(&f));
        (
            y,
            BlockCache {
                attn: attn_cache,
                ln1: ln1_cache,
                ffn: ffn_cache,
                ln2: ln2_cache,
            },
        )
    }

    /// Forward without caching.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let a = self.attn.infer(x);
        let h = self.ln1.infer(&x.add(&a));
        let f = self.ffn.infer(&h);
        self.ln2.infer(&h.add(&f))
    }

    /// Backward: accumulates gradients, returns `dx`.
    pub fn backward(&mut self, cache: &BlockCache, dy: &Tensor) -> Tensor {
        let dsum2 = self.ln2.backward(&cache.ln2, dy);
        // dsum2 flows to both h (residual) and FFN input.
        let mut dh = self.ffn.backward(&cache.ffn, &dsum2);
        dh.add_assign(&dsum2);
        let dsum1 = self.ln1.backward(&cache.ln1, &dh);
        let mut dx = self.attn.backward(&cache.attn, &dsum1);
        dx.add_assign(&dsum1);
        dx
    }
}

impl HasParams for TransformerBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.attn.visit_params(f);
        self.ln1.visit_params(f);
        self.ffn.visit_params(f);
        self.ln2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_infer_parity() {
        let mut rng = StdRng::seed_from_u64(19);
        let block = TransformerBlock::new(8, 2, 16, &mut rng);
        let x = Tensor::xavier(4, 8, &mut rng);
        let (y, _) = block.forward(&x);
        assert_eq!(y.shape(), (4, 8));
        let y2 = block.infer(&x);
        for (a, b) in y.data().iter().zip(y2.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut block = TransformerBlock::new(4, 2, 8, &mut rng);
        let x = Tensor::xavier(3, 4, &mut rng);
        let upstream = Tensor::xavier(3, 4, &mut rng);
        let (_, cache) = block.forward(&x);
        let dx = block.backward(&cache, &upstream);
        let eps = 1e-2f32;
        for idx in [0usize, 6, 11] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num =
                (block.infer(&xp).dot(&upstream) - block.infer(&xm).dot(&upstream)) / (2.0 * eps);
            let ana = dx.data()[idx];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "dx[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn param_count_is_plausible() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut block = TransformerBlock::new(8, 2, 16, &mut rng);
        // 4 linears (8x8 + bias) + 2 LN (2*8 each) + FFN (8*16+16 + 16*8+8).
        let expected = 4 * (64 + 8) + 2 * 16 + (128 + 16) + (128 + 8);
        assert_eq!(block.param_count(), expected);
    }
}
