//! Neural layers with explicit forward caches and backward passes.

pub mod attention;
pub mod block;
pub mod embedding;
pub mod ffn;
pub mod layernorm;
pub mod linear;
pub mod param;

pub use attention::{AttentionCache, MultiHeadSelfAttention};
pub use block::{BlockCache, TransformerBlock};
pub use embedding::{Embedding, EmbeddingCache};
pub use ffn::{FeedForward, FfnCache};
pub use layernorm::{LayerNorm, LayerNormCache};
pub use linear::{Linear, LinearCache};
pub use param::Param;
