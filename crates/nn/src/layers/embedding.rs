//! Token and position embedding lookup.

use crate::layers::param::{HasParams, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// An embedding table `(vocab × d)` looked up by token id.
#[derive(Debug, Clone)]
pub struct Embedding {
    pub table: Param,
}

/// Forward cache: the token ids (rows touched by the backward pass).
#[derive(Debug)]
pub struct EmbeddingCache {
    ids: Vec<u32>,
}

impl Embedding {
    /// Normal(0, 0.02)-initialized table, BERT-style.
    pub fn new(vocab: usize, d: usize, rng: &mut StdRng) -> Self {
        Embedding {
            table: Param::new(Tensor::normal(vocab, d, 0.02, rng)),
        }
    }

    /// Look up a sequence of token ids into a `(len × d)` tensor.
    pub fn forward(&self, ids: &[u32]) -> (Tensor, EmbeddingCache) {
        (
            self.infer(ids),
            // kglink-lint: allow(hot-path-alloc) — the cache must own the
            // ids for the scatter-add in backward.
            EmbeddingCache { ids: ids.to_vec() },
        )
    }

    /// Lookup without caching.
    pub fn infer(&self, ids: &[u32]) -> Tensor {
        let d = self.table.value.cols();
        let mut out = Tensor::zeros(ids.len(), d);
        for (r, &id) in ids.iter().enumerate() {
            let src = self.table.value.row(id as usize);
            out.row_mut(r).copy_from_slice(src);
        }
        out
    }

    /// Backward: scatter-add `dy` rows into the table gradient.
    pub fn backward(&mut self, cache: &EmbeddingCache, dy: &Tensor) {
        debug_assert_eq!(dy.rows(), cache.ids.len());
        for (r, &id) in cache.ids.iter().enumerate() {
            let src = dy.row(r);
            let d = dy.cols();
            let dst =
                &mut self.table.grad.data_mut()[id as usize * d..(id as usize + 1) * d];
            for (g, &v) in dst.iter_mut().zip(src) {
                *g += v;
            }
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.table.value.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }
}

impl HasParams for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lookup_copies_rows() {
        let mut rng = StdRng::seed_from_u64(9);
        let emb = Embedding::new(10, 4, &mut rng);
        let (y, _) = emb.forward(&[3, 3, 7]);
        assert_eq!(y.shape(), (3, 4));
        assert_eq!(y.row(0), emb.table.value.row(3));
        assert_eq!(y.row(0), y.row(1));
        assert_eq!(y.row(2), emb.table.value.row(7));
    }

    #[test]
    fn backward_scatter_adds_repeated_ids() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut emb = Embedding::new(5, 2, &mut rng);
        let (_, cache) = emb.forward(&[1, 1, 2]);
        let dy = Tensor::from_vec(3, 2, vec![1.0, 0.0, 2.0, 0.0, 5.0, 5.0]);
        emb.backward(&cache, &dy);
        assert_eq!(emb.table.grad.row(1), &[3.0, 0.0], "repeated id sums");
        assert_eq!(emb.table.grad.row(2), &[5.0, 5.0]);
        assert_eq!(emb.table.grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn dims_are_exposed() {
        let mut rng = StdRng::seed_from_u64(11);
        let emb = Embedding::new(12, 6, &mut rng);
        assert_eq!(emb.vocab_size(), 12);
        assert_eq!(emb.dim(), 6);
    }
}
