//! Masked-language-model head and pre-training loop.
//!
//! BERT's prior knowledge — which the paper credits for KGLink's strong
//! numeric/no-linkage column performance (their Table IV) — comes from
//! web-scale MLM pre-training. The reproduction's equivalent is MLM
//! pre-training on a corpus of verbalized knowledge-graph triples, giving
//! the encoder the same kind of world knowledge at miniature scale.

use crate::encoder::Encoder;
use crate::layers::linear::Linear;
use crate::layers::param::{HasParams, Param};
use crate::loss::cross_entropy;
use crate::optim::{AdamW, AdamWConfig, LinearDecay};
use crate::tensor::Tensor;
use crate::tokenizer::special;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Projection from hidden states to vocabulary logits (the `W_o` of the
/// paper's Eq. 14).
#[derive(Debug, Clone)]
pub struct MlmHead {
    pub proj: Linear,
}

impl MlmHead {
    /// Create a head for the given model width and vocabulary.
    pub fn new(d_model: usize, vocab_size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        MlmHead {
            proj: Linear::new(d_model, vocab_size, &mut rng),
        }
    }

    /// Vocabulary logits for every position.
    pub fn infer(&self, hidden: &Tensor) -> Tensor {
        self.proj.infer(hidden)
    }

    /// Logits for a single hidden row.
    pub fn infer_row(&self, hidden_row: &[f32]) -> Vec<f32> {
        let x = Tensor::from_vec(1, hidden_row.len(), hidden_row.to_vec());
        self.proj.infer(&x).data().to_vec()
    }
}

impl HasParams for MlmHead {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.proj.visit_params(f);
    }
}

/// MLM pre-training settings.
#[derive(Debug, Clone)]
pub struct MlmPretrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub mask_prob: f64,
    pub optimizer: AdamWConfig,
    pub seed: u64,
}

impl Default for MlmPretrainConfig {
    fn default() -> Self {
        MlmPretrainConfig {
            epochs: 2,
            batch_size: 16,
            mask_prob: 0.15,
            optimizer: AdamWConfig {
                lr: 1e-3,
                ..Default::default()
            },
            seed: 17,
        }
    }
}

/// Encoder + MLM head bundled for pre-training.
pub struct MlmPretrainer {
    pub encoder: Encoder,
    pub head: MlmHead,
    config: MlmPretrainConfig,
}

impl HasParams for MlmPretrainer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.encoder.visit_params(f);
        self.head.visit_params(f);
    }
}

impl MlmPretrainer {
    /// Wrap an encoder for pre-training.
    pub fn new(encoder: Encoder, config: MlmPretrainConfig) -> Self {
        let head = MlmHead::new(encoder.d_model(), encoder.config.vocab_size, config.seed ^ 0xa5);
        MlmPretrainer {
            encoder,
            head,
            config,
        }
    }

    /// Run MLM pre-training over `corpus` (token id sequences, without
    /// special markers; `[CLS]`/`[SEP]` are added here). Returns per-epoch
    /// mean masked-token losses.
    pub fn train(&mut self, corpus: &[Vec<u32>]) -> Vec<f32> {
        let vocab_size = self.encoder.config.vocab_size as u32;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let steps_per_epoch = corpus.len().div_ceil(self.config.batch_size.max(1));
        let mut opt = AdamW::new(
            self.config.optimizer,
            Some(LinearDecay {
                total_steps: steps_per_epoch * self.config.epochs,
            }),
        );
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let mut order: Vec<usize> = (0..corpus.len()).collect();
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            let mut n_masked = 0usize;
            for batch in order.chunks(self.config.batch_size.max(1)) {
                let mut batch_loss_count = 0usize;
                for &si in batch {
                    let sent = &corpus[si];
                    if sent.is_empty() {
                        continue;
                    }
                    // Assemble [CLS] w1 ... wn [SEP].
                    let mut ids = Vec::with_capacity(sent.len() + 2);
                    ids.push(special::CLS);
                    ids.extend_from_slice(sent);
                    ids.push(special::SEP);
                    let max = self.encoder.config.max_len;
                    ids.truncate(max);

                    // Choose masked positions (never the special frame).
                    let mut targets: Vec<(usize, u32)> = Vec::new();
                    for pos in 1..ids.len().saturating_sub(1) {
                        if rng.gen_bool(self.config.mask_prob) {
                            targets.push((pos, ids[pos]));
                            let roll: f64 = rng.gen();
                            ids[pos] = if roll < 0.8 {
                                special::MASK
                            } else if roll < 0.9 {
                                rng.gen_range(special::FIRST_WORD..vocab_size)
                            } else {
                                ids[pos]
                            };
                        }
                    }
                    if targets.is_empty() {
                        // Force one mask so every sentence teaches something.
                        let pos = rng.gen_range(1..ids.len() - 1);
                        targets.push((pos, ids[pos]));
                        ids[pos] = special::MASK;
                    }

                    let (hidden, cache) = self.encoder.forward(&ids);
                    let mut d_hidden = Tensor::zeros(hidden.rows(), hidden.cols());
                    for &(pos, original) in &targets {
                        if pos >= hidden.rows() {
                            continue;
                        }
                        let logits = self.head.infer_row(hidden.row(pos));
                        let (loss, dlogits) = cross_entropy(&logits, original as usize);
                        epoch_loss += loss;
                        n_masked += 1;
                        batch_loss_count += 1;
                        // Backward through the head for this row.
                        let x = Tensor::from_vec(1, hidden.cols(), hidden.row(pos).to_vec());
                        let (_, hcache) = self.head.proj.forward(&x);
                        let dl = Tensor::from_vec(1, dlogits.len(), dlogits);
                        let dx = self.head.proj.backward(&hcache, &dl);
                        for (g, &v) in d_hidden.row_mut(pos).iter_mut().zip(dx.row(0)) {
                            *g += v;
                        }
                    }
                    self.encoder.backward(&cache, &d_hidden);
                }
                if batch_loss_count > 0 {
                    self.scale_grads(1.0 / batch_loss_count as f32);
                    opt.step(self);
                } else {
                    self.zero_grads();
                }
            }
            epoch_losses.push(if n_masked > 0 {
                epoch_loss / n_masked as f32
            } else {
                0.0
            });
        }
        epoch_losses
    }

    /// Unbundle into the trained encoder and head.
    pub fn into_parts(self) -> (Encoder, MlmHead) {
        (self.encoder, self.head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderConfig;

    fn tiny_encoder(vocab: usize) -> Encoder {
        Encoder::new(EncoderConfig {
            vocab_size: vocab,
            d_model: 16,
            n_heads: 2,
            d_ff: 32,
            n_layers: 1,
            max_len: 16,
            seed: 5,
        })
    }

    /// A synthetic corpus with a strong bigram pattern the model can learn.
    fn corpus(vocab: usize) -> Vec<Vec<u32>> {
        let first = special::FIRST_WORD;
        let mut out = Vec::new();
        for i in 0..60u32 {
            let a = first + (i % (vocab as u32 - first - 1));
            // Deterministic "fact": word a is always followed by a+1.
            out.push(vec![a, a + 1, a, a + 1]);
        }
        out
    }

    #[test]
    fn mlm_loss_decreases() {
        let vocab = 24;
        let enc = tiny_encoder(vocab);
        let mut pre = MlmPretrainer::new(
            enc,
            MlmPretrainConfig {
                epochs: 5,
                batch_size: 8,
                ..Default::default()
            },
        );
        let losses = pre.train(&corpus(vocab));
        assert_eq!(losses.len(), 5);
        assert!(
            losses[4] < losses[0] * 0.9,
            "MLM loss should drop: {losses:?}"
        );
    }

    #[test]
    fn head_shapes() {
        let head = MlmHead::new(8, 30, 1);
        let hidden = Tensor::zeros(3, 8);
        let logits = head.infer(&hidden);
        assert_eq!(logits.shape(), (3, 30));
        assert_eq!(head.infer_row(&[0.0; 8]).len(), 30);
    }

    #[test]
    fn pretrain_is_deterministic() {
        let vocab = 20;
        let run = || {
            let mut pre = MlmPretrainer::new(
                tiny_encoder(vocab),
                MlmPretrainConfig {
                    epochs: 1,
                    ..Default::default()
                },
            );
            pre.train(&corpus(vocab))
        };
        assert_eq!(run(), run());
    }
}
