//! Elementwise and row-wise numeric primitives with their derivatives.

use crate::tensor::Tensor;

/// Numerically stable in-place row-wise softmax.
pub fn softmax_rows(x: &mut Tensor) {
    let cols = x.cols();
    for r in 0..x.rows() {
        let row = x.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
        for v in row.iter_mut() {
            *v *= inv;
        }
        debug_assert_eq!(row.len(), cols);
    }
}

/// Softmax of a single slice, out of place.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut out: Vec<f32> = x.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = out.iter().sum();
    let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
    for v in &mut out {
        *v *= inv;
    }
    out
}

/// Log-softmax of a single slice.
pub fn log_softmax(x: &[f32]) -> Vec<f32> {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = x.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
    x.iter().map(|&v| v - log_sum).collect()
}

/// Backward through a row-wise softmax: given `probs = softmax(z)` and
/// upstream gradient `dp`, returns `dz = probs ⊙ (dp - Σ probs ⊙ dp)`
/// computed row by row, writing into `dp` in place.
pub fn softmax_backward_rows(probs: &Tensor, dp: &mut Tensor) {
    assert_eq!(probs.shape(), dp.shape());
    for r in 0..probs.rows() {
        let p = probs.row(r);
        let g = dp.row_mut(r);
        let dot: f32 = p.iter().zip(g.iter()).map(|(a, b)| a * b).sum();
        for (gi, &pi) in g.iter_mut().zip(p) {
            *gi = pi * (*gi - dot);
        }
    }
}

/// GELU activation (tanh approximation, as in BERT).
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044_715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Mean of a slice.
#[inline]
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f32>() / x.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        softmax_rows(&mut x);
        for r in 0..2 {
            let s: f32 = x.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(x.row(r).iter().all(|&v| v > 0.0));
        }
        // Ordering preserved.
        assert!(x.get(0, 2) > x.get(0, 1));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let x = [0.5f32, -1.0, 2.0];
        let p = softmax(&x);
        let lp = log_softmax(&x);
        for (a, b) in p.iter().zip(&lp) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let z = [0.3f32, -0.7, 1.1, 0.0];
        let upstream = [0.25f32, -0.5, 0.1, 0.9];
        // Analytic.
        let probs = Tensor::from_vec(1, 4, softmax(&z));
        let mut dp = Tensor::from_vec(1, 4, upstream.to_vec());
        softmax_backward_rows(&probs, &mut dp);
        // Numeric.
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut zp = z;
            zp[i] += eps;
            let mut zm = z;
            zm[i] -= eps;
            let f = |zz: &[f32]| -> f32 {
                softmax(zz)
                    .iter()
                    .zip(&upstream)
                    .map(|(p, u)| p * u)
                    .sum()
            };
            let num = (f(&zp) - f(&zm)) / (2.0 * eps);
            assert!(
                (num - dp.get(0, i)).abs() < 1e-3,
                "dim {i}: numeric {num} vs analytic {}",
                dp.get(0, i)
            );
        }
    }

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(100.0) - 100.0).abs() < 1e-3, "large x ≈ identity");
        assert!(gelu(-100.0).abs() < 1e-3, "very negative x ≈ 0");
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0] {
            let eps = 1e-3;
            let num = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!(
                (num - gelu_grad(x)).abs() < 1e-3,
                "x={x}: numeric {num} vs analytic {}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
