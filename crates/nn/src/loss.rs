//! Loss functions: cross-entropy, DMLM distillation, uncertainty weighting.

use crate::layers::param::{HasParams, Param};
use crate::kernels::{log_softmax, softmax};
use crate::tensor::Tensor;

/// Cross-entropy of a single logit row against a target class (paper
/// Eq. 16). Returns `(loss, dlogits)`.
pub fn cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    assert!(target < logits.len(), "target out of range");
    let lp = log_softmax(logits);
    let loss = -lp[target];
    let mut grad: Vec<f32> = lp.iter().map(|&l| l.exp()).collect();
    grad[target] -= 1.0;
    (loss, grad)
}

/// DMLM distillation loss (paper Eq. 13–14).
///
/// Both the student (`[MASK]`-token projection, `Y_msk`) and the teacher
/// (ground-truth-token projection, `Y_gt`) are temperature-softened
/// distributions over the vocabulary:
///
/// `Y = softmax(W_o(H / T))`, `L = -Σ_voc y_gt log y_msk`
///
/// The teacher is detached (no gradient flows through `Y_gt`), which is the
/// standard distillation reading of the paper's formulation. Returns
/// `(loss, d_student_logits)`; the returned gradient is w.r.t. the student's
/// *pre-temperature* logits (the `1/T` factor is already applied).
pub fn dmlm_loss(student_logits: &[f32], teacher_logits: &[f32], temperature: f32) -> (f32, Vec<f32>) {
    assert_eq!(student_logits.len(), teacher_logits.len());
    assert!(temperature > 0.0);
    let inv_t = 1.0 / temperature;
    let s_scaled: Vec<f32> = student_logits.iter().map(|&v| v * inv_t).collect();
    let t_scaled: Vec<f32> = teacher_logits.iter().map(|&v| v * inv_t).collect();
    let log_p_student = log_softmax(&s_scaled);
    let p_teacher = softmax(&t_scaled);
    let loss: f32 = -p_teacher
        .iter()
        .zip(&log_p_student)
        .map(|(t, ls)| t * ls)
        .sum::<f32>();
    // d/ds_scaled = p_student - p_teacher; chain through the 1/T scaling.
    let grad: Vec<f32> = log_p_student
        .iter()
        .zip(&p_teacher)
        .map(|(ls, t)| (ls.exp() - t) * inv_t)
        .collect();
    (loss, grad)
}

/// The two KGLink training tasks whose losses the uncertainty weighting
/// combines (Eq. 17). Using an enum instead of a raw index makes "which
/// task?" a compile-time question — there is no third variant to pass, so
/// the old `panic!("two tasks only")` guard is unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// DMLM distillation (Eq. 13–14); weighted by `σ0`.
    Dmlm,
    /// Column-type classification cross-entropy (Eq. 16); weighted by `σ1`.
    Classify,
}

/// Kendall-style uncertainty weighting of the two KGLink tasks (Eq. 17):
///
/// `L_total = 1/(2σ0²) L_DMLM + 1/(2σ1²) L_CE + log σ0 σ1`
///
/// Parameterized by `s_i = log σ_i²` for unconstrained optimization, so
///
/// `L_total = ½ e^{-s0} L0 + ½ e^{-s1} L1 + ½ (s0 + s1)`
///
/// The `s_i` are trainable; task-loss gradients must be scaled by the
/// corresponding [`UncertaintyWeights::weight`] before backprop.
#[derive(Debug, Clone)]
pub struct UncertaintyWeights {
    /// `s0 = log σ0²` (DMLM task).
    pub s0: Param,
    /// `s1 = log σ1²` (classification task).
    pub s1: Param,
}

impl UncertaintyWeights {
    /// Initialize both log-variances to `init` (0 ⇒ σ² = 1).
    pub fn new(init: f32) -> Self {
        UncertaintyWeights {
            s0: Param::new_no_decay(Tensor::from_vec(1, 1, vec![init])),
            s1: Param::new_no_decay(Tensor::from_vec(1, 1, vec![init])),
        }
    }

    /// Fix the log-variances to explicit values (for the Figure 8(a)
    /// sensitivity sweep, where σ is not trained).
    pub fn fixed(s0: f32, s1: f32) -> Self {
        UncertaintyWeights {
            s0: Param::new_no_decay(Tensor::from_vec(1, 1, vec![s0])),
            s1: Param::new_no_decay(Tensor::from_vec(1, 1, vec![s1])),
        }
    }

    /// Current `s_i` values.
    pub fn log_sigmas(&self) -> (f32, f32) {
        (self.s0.value.data()[0], self.s1.value.data()[0])
    }

    /// Multiplier applied to the task's loss (and its gradient):
    /// `½ e^{-s_i}`.
    pub fn weight(&self, task: Task) -> f32 {
        let s = match task {
            Task::Dmlm => self.s0.value.data()[0],
            Task::Classify => self.s1.value.data()[0],
        };
        0.5 * (-s).exp()
    }

    /// Combined loss value and gradient accumulation on `s0`/`s1` given the
    /// two raw task losses. Call once per optimization step *before* the
    /// optimizer update.
    pub fn combine(&mut self, loss_dmlm: f32, loss_ce: f32) -> f32 {
        let (s0, s1) = self.log_sigmas();
        let w0 = 0.5 * (-s0).exp();
        let w1 = 0.5 * (-s1).exp();
        let total = w0 * loss_dmlm + w1 * loss_ce + 0.5 * (s0 + s1);
        // dL/ds_i = -½ e^{-s_i} L_i + ½
        self.s0.grad.data_mut()[0] += -w0 * loss_dmlm + 0.5;
        self.s1.grad.data_mut()[0] += -w1 * loss_ce + 0.5;
        total
    }
}

impl HasParams for UncertaintyWeights {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.s0);
        f(&mut self.s1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = [10.0f32, -10.0, -10.0];
        let (loss, grad) = cross_entropy(&logits, 0);
        assert!(loss < 1e-3);
        assert!(grad[0].abs() < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = [0.0f32; 4];
        let (loss, grad) = cross_entropy(&logits, 2);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        assert!((grad[2] - (0.25 - 1.0)).abs() < 1e-5);
        assert!((grad[0] - 0.25).abs() < 1e-5);
        // Gradient sums to zero.
        assert!(grad.iter().sum::<f32>().abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = [0.5f32, -0.3, 1.2];
        let (_, grad) = cross_entropy(&logits, 1);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let num = (cross_entropy(&lp, 1).0 - cross_entropy(&lm, 1).0) / (2.0 * eps);
            assert!((num - grad[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn dmlm_zero_when_student_equals_teacher_minus_entropy() {
        // When distributions match, loss equals teacher entropy (> 0) and
        // the gradient vanishes.
        let logits = [0.2f32, -0.4, 0.9];
        let (loss, grad) = dmlm_loss(&logits, &logits, 2.0);
        assert!(loss > 0.0);
        for g in grad {
            assert!(g.abs() < 1e-6);
        }
    }

    #[test]
    fn dmlm_gradient_matches_finite_difference() {
        let student = [0.1f32, 0.7, -0.5];
        let teacher = [1.0f32, 0.0, -1.0];
        let t = 2.0;
        let (_, grad) = dmlm_loss(&student, &teacher, t);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut sp = student;
            sp[i] += eps;
            let mut sm = student;
            sm[i] -= eps;
            let num = (dmlm_loss(&sp, &teacher, t).0 - dmlm_loss(&sm, &teacher, t).0) / (2.0 * eps);
            assert!(
                (num - grad[i]).abs() < 1e-3,
                "dim {i}: {num} vs {}",
                grad[i]
            );
        }
    }

    #[test]
    fn dmlm_temperature_softens_gradients() {
        let student = [2.0f32, -2.0];
        let teacher = [-2.0f32, 2.0];
        let (_, g1) = dmlm_loss(&student, &teacher, 1.0);
        let (_, g4) = dmlm_loss(&student, &teacher, 4.0);
        assert!(g4[0].abs() < g1[0].abs());
    }

    #[test]
    fn uncertainty_combine_matches_formula() {
        let mut uw = UncertaintyWeights::fixed(0.4, 1.0);
        let total = uw.combine(2.0, 3.0);
        let expect = 0.5 * (-0.4f32).exp() * 2.0 + 0.5 * (-1.0f32).exp() * 3.0 + 0.5 * 1.4;
        assert!((total - expect).abs() < 1e-5);
        // Gradient signs: large task loss pushes s up (weight down).
        assert!(uw.s0.grad.data()[0] < 0.5);
    }

    #[test]
    fn uncertainty_gradients_match_finite_difference() {
        let (l0, l1) = (1.7f32, 0.9f32);
        let mut uw = UncertaintyWeights::new(0.3);
        uw.combine(l0, l1);
        let analytic = uw.s0.grad.data()[0];
        let eps = 1e-3f32;
        let f = |s: f32| 0.5 * (-s).exp() * l0 + 0.5 * (-0.3f32).exp() * l1 + 0.5 * (s + 0.3);
        let num = (f(0.3 + eps) - f(0.3 - eps)) / (2.0 * eps);
        assert!((num - analytic).abs() < 1e-3);
    }

    #[test]
    fn weight_halves_exp_neg_s() {
        let uw = UncertaintyWeights::fixed(0.0, 2.0f32.ln());
        assert!((uw.weight(Task::Dmlm) - 0.5).abs() < 1e-6);
        assert!((uw.weight(Task::Classify) - 0.25).abs() < 1e-6);
    }
}
