//! From-scratch neural substrate for the KGLink reproduction.
//!
//! The paper fine-tunes `bert-base-uncased` on an NVIDIA V100. Neither a
//! pre-trained BERT checkpoint nor a GPU is available here, so this crate
//! implements the *minimum complete* equivalent: a transformer encoder with
//! explicit forward/backward passes (no external autodiff), a word-level
//! tokenizer with BERT's special tokens, AdamW with linear learning-rate
//! decay (the paper's optimizer settings), the DMLM distillation loss
//! (Eq. 13–14), Kendall's uncertainty-weighted multi-task combination
//! (Eq. 17), and a masked-language-model pre-training loop that plays the
//! role of BERT's web-scale pre-training.
//!
//! Design notes:
//!
//! * Training processes sequences one at a time at their true length;
//!   mini-batch semantics come from gradient accumulation, so no
//!   padding/attention masks are needed. Inference has a batched path
//!   ([`Encoder::infer_batch`]) that packs many sequences into one
//!   activation matrix and runs one GEMM per projection for the whole
//!   batch — segments keep their true lengths, so still no padding.
//! * Layers return explicit cache structs from `forward`; `backward`
//!   consumes the cache and accumulates parameter gradients. This makes
//!   multi-forward training steps (masked table + ground-truth table +
//!   feature sequences) trivially correct.
//! * Everything is deterministic under a seed.

#![deny(deprecated)]

pub mod checkpoint;
pub mod encoder;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod mlm;
pub mod optim;
pub mod serialize;
pub mod tensor;
pub mod tokenizer;

pub use checkpoint::{CheckpointError, Checkpointer, TrainCheckpoint};
pub use encoder::{
    with_encoder_scratch, BatchHidden, Encoder, EncoderCache, EncoderConfig, EncoderScratch,
};
pub use layers::param::Param;
pub use loss::{cross_entropy, dmlm_loss, Task, UncertaintyWeights};
pub use mlm::{MlmHead, MlmPretrainConfig, MlmPretrainer};
pub use optim::{AdamW, AdamWConfig, LinearDecay};
pub use tensor::Tensor;
pub use tokenizer::{special, Tokenizer, Vocab};
