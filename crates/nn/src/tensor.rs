//! A minimal row-major 2-D `f32` tensor.
//!
//! Everything the transformer needs is expressible with (seq_len × dim)
//! matrices, so this stays deliberately 2-D. All matrix products go
//! through the blocked register-tiled [`kglink_kernels::gemm`] entry
//! point; transposed products are expressed with [`Trans`] flags at the
//! call site (`gemm(x, w, Trans::Yes, Trans::No, ...)`) instead of the
//! former `matmul_tn`/`matmul_nt` method variants. [`Tensor::matmul`]
//! survives as a thin delegating convenience for the NN case.

use kglink_kernels::{self as kernels, Mat, MatMut, Trans};
use rand::rngs::StdRng;
use rand::Rng;

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Tensor from existing data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Tensor { rows, cols, data }
    }

    /// Normal(0, std) initialization (BERT uses std = 0.02).
    pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Self {
        // Box-Muller from two uniforms.
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen_range(1e-7..1.0f32);
            let u2: f32 = rng.gen_range(0.0..1.0f32);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < rows * cols {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the raw data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Immutable kernel view of the whole tensor.
    #[inline]
    pub fn as_mat(&self) -> Mat<'_> {
        Mat::new(&self.data, self.rows, self.cols)
    }

    /// Mutable kernel view of the whole tensor.
    #[inline]
    pub fn as_mat_mut(&mut self) -> MatMut<'_> {
        MatMut::new(&mut self.data, self.rows, self.cols)
    }

    /// Reshape to `rows × cols`, zero-filled, reusing the allocation when
    /// capacity allows.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self × other` (delegates to [`kernels::gemm`]).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Tensor::zeros(self.rows, other.cols);
        kernels::with_thread_scratch(|s| {
            kernels::gemm(
                self.as_mat(),
                other.as_mat(),
                Trans::No,
                Trans::No,
                &mut out.as_mat_mut(),
                s,
            );
        });
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise sum returning a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Set all elements to zero (keeps allocation).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Add a row vector (1×cols) to every row.
    pub fn add_row_broadcast(&mut self, row: &Tensor) {
        assert_eq!(row.rows, 1, "broadcast source must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &s) in dst.iter_mut().zip(&row.data) {
                *d += s;
            }
        }
    }

    /// Sum of all rows as a 1×cols tensor.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Dot product of two equally-shaped tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(rows: usize, cols: usize, vals: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn matmul_hand_example() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_transpose_flags_equal_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::xavier(4, 3, &mut rng);
        let b = Tensor::xavier(4, 5, &mut rng);
        let mut tn = Tensor::zeros(3, 5);
        kernels::with_thread_scratch(|s| {
            kernels::gemm(a.as_mat(), b.as_mat(), Trans::Yes, Trans::No, &mut tn.as_mat_mut(), s);
        });
        let slow = a.transpose().matmul(&b);
        assert_eq!(tn, slow, "packing is pure data movement: bit-identical");
        let c = Tensor::xavier(5, 3, &mut rng);
        let mut nt = Tensor::zeros(4, 5);
        kernels::with_thread_scratch(|s| {
            kernels::gemm(a.as_mat(), c.as_mat(), Trans::No, Trans::Yes, &mut nt.as_mat_mut(), s);
        });
        let slow = a.matmul(&c.transpose());
        assert_eq!(nt, slow);
    }

    #[test]
    fn resize_reuses_allocation_and_zeroes() {
        let mut a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let ptr = a.data().as_ptr();
        a.resize(3, 2);
        assert_eq!(a.shape(), (3, 2));
        assert!(a.data().iter().all(|&v| v == 0.0));
        assert_eq!(a.data().as_ptr(), ptr, "same-size resize keeps the buffer");
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint() {
        let mut a = Tensor::zeros(3, 2);
        let row = t(1, 2, &[1.0, -2.0]);
        a.add_row_broadcast(&row);
        assert_eq!(a.row(2), &[1.0, -2.0]);
        let s = a.sum_rows();
        assert_eq!(s.data(), &[3.0, -6.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = t(1, 3, &[1.0, 2.0, 3.0]);
        let b = t(1, 3, &[1.0, 1.0, 1.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.5, 3.5]);
        a.scale(2.0);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::xavier(10, 10, &mut rng);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn normal_has_roughly_right_std() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = Tensor::normal(100, 100, 0.02, &mut rng);
        let mean: f32 = w.data().iter().sum::<f32>() / w.numel() as f32;
        let var: f32 = w.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / w.numel() as f32;
        assert!(mean.abs() < 0.001, "mean {mean}");
        assert!((var.sqrt() - 0.02).abs() < 0.002, "std {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn norm_and_dot() {
        let a = t(1, 2, &[3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        let b = t(1, 2, &[1.0, 2.0]);
        assert!((a.dot(&b) - 11.0).abs() < 1e-6);
    }
}
