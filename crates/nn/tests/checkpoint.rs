//! Property tests over the `KGCK` checkpoint format: arbitrary models
//! round-trip bit-exactly (values, AdamW moments, optimizer counter, RNG
//! state, opaque loop state), and arbitrary damage to the encoded bytes is
//! always reported as a typed error, never a panic or a silent
//! misinterpretation.

use kglink_nn::checkpoint::{
    crc32, load_train_state, save_train_state, CheckpointError, TrainCheckpoint, VERSION,
};
use kglink_nn::layers::param::HasParams;
use kglink_nn::{AdamW, AdamWConfig, Param, Tensor};
use proptest::prelude::*;

/// A free-form parameter bag: lets properties exercise arbitrary shape
/// sequences instead of only the fixed encoder architecture.
struct Bag {
    params: Vec<Param>,
}

impl HasParams for Bag {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in &mut self.params {
            f(p);
        }
    }
}

/// splitmix64: deterministic f32 fill derived from (seed, counter).
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fill(seed: u64, salt: u64, n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let raw = mix(seed, salt.wrapping_mul(1_000_003).wrapping_add(i as u64));
            ((raw >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
        })
        .collect()
}

/// Build a bag whose values *and* moment buffers are all non-trivial, so
/// the round trip genuinely checks every section of the blob.
fn bag(shapes: &[(usize, usize)], seed: u64) -> Bag {
    let params = shapes
        .iter()
        .enumerate()
        .map(|(i, &(rows, cols))| {
            let salt = i as u64;
            let mut p = if i % 2 == 0 {
                Param::new(Tensor::from_vec(rows, cols, fill(seed, salt * 3, rows * cols)))
            } else {
                Param::new_no_decay(Tensor::from_vec(
                    rows,
                    cols,
                    fill(seed, salt * 3, rows * cols),
                ))
            };
            p.m = Tensor::from_vec(rows, cols, fill(seed, salt * 3 + 1, rows * cols));
            p.v = Tensor::from_vec(rows, cols, fill(seed, salt * 3 + 2, rows * cols));
            p
        })
        .collect();
    Bag { params }
}

fn snapshot(bag: &mut Bag) -> Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> {
    let mut out = Vec::new();
    bag.visit_params(&mut |p| {
        out.push((
            p.value.data().to_vec(),
            p.m.data().to_vec(),
            p.v.data().to_vec(),
        ))
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn checkpoint_round_trips_arbitrary_models_bit_exactly(
        shapes in proptest::collection::vec((1usize..5, 1usize..7), 1..6),
        seed in 0u64..1_000_000,
        opt_step in 0u64..100_000,
        rng_state in 0u64..u64::MAX,
        epoch in 0u64..1_000,
        step in 0u64..1_000_000,
        extra in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let mut original = bag(&shapes, seed);
        let ckpt = TrainCheckpoint::capture(
            &mut original, opt_step, rng_state, epoch, step, extra.clone(),
        );
        let decoded = TrainCheckpoint::decode(&ckpt.encode()).expect("clean blob decodes");
        // Cursor and opaque sections survive verbatim.
        prop_assert_eq!(decoded.opt_step, opt_step);
        prop_assert_eq!(decoded.rng_state, rng_state);
        prop_assert_eq!(decoded.epoch, epoch);
        prop_assert_eq!(decoded.step, step);
        prop_assert_eq!(&decoded.extra, &extra);
        // Restoring into a differently-initialized bag of the same shapes
        // reproduces values and both moment buffers bit-for-bit.
        let mut restored = bag(&shapes, seed ^ 0xffff);
        decoded.restore(&mut restored).expect("same architecture");
        prop_assert_eq!(snapshot(&mut restored), snapshot(&mut original));
    }

    #[test]
    fn optimizer_state_survives_the_round_trip(
        shapes in proptest::collection::vec((1usize..4, 1usize..5), 1..4),
        seed in 0u64..1_000_000,
        steps in 1usize..8,
    ) {
        // Drive real AdamW steps so the moments are optimizer-produced,
        // not synthetic (a negative synthetic `v` would NaN the update):
        // start from zero moments like a fresh model and let AdamW fill them.
        let mut live = bag(&shapes, seed);
        live.visit_params(&mut |p| {
            p.m.fill_zero();
            p.v.fill_zero();
        });
        let mut opt = AdamW::new(AdamWConfig::default(), None);
        for s in 0..steps {
            live.visit_params(&mut |p| {
                let g = fill(seed ^ 0xabcd, s as u64, p.numel());
                p.grad.data_mut().copy_from_slice(&g);
            });
            opt.step(&mut live);
        }
        let ckpt = TrainCheckpoint::capture(
            &mut live, opt.steps() as u64, 0, 0, steps as u64, Vec::new(),
        );
        let mut resumed = bag(&shapes, seed ^ 0x1234);
        let decoded = TrainCheckpoint::decode(&ckpt.encode()).unwrap();
        decoded.restore(&mut resumed).unwrap();
        let mut opt2 = AdamW::new(AdamWConfig::default(), None);
        opt2.set_steps(decoded.opt_step as usize);
        prop_assert_eq!(opt2.steps(), opt.steps());
        // One more identical step on both must stay bit-identical: the
        // moments and bias-correction state fully transferred.
        for (o, b) in [(&mut opt, &mut live), (&mut opt2, &mut resumed)] {
            b.visit_params(&mut |p| {
                let g = fill(seed ^ 0xabcd, steps as u64, p.numel());
                p.grad.data_mut().copy_from_slice(&g);
            });
            o.step(b);
        }
        prop_assert_eq!(snapshot(&mut resumed), snapshot(&mut live));
    }

    #[test]
    fn any_truncation_is_reported_as_truncated(
        shapes in proptest::collection::vec((1usize..4, 1usize..5), 1..4),
        seed in 0u64..1_000_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let mut m = bag(&shapes, seed);
        let blob = TrainCheckpoint::capture(&mut m, 1, 2, 3, 4, vec![5]).encode();
        let cut = ((blob.len() as f64) * cut_frac) as usize; // always < len
        prop_assert_eq!(
            TrainCheckpoint::decode(&blob[..cut]),
            Err(CheckpointError::Truncated)
        );
    }

    #[test]
    fn any_payload_bit_flip_is_caught_by_the_crc(
        shapes in proptest::collection::vec((1usize..4, 1usize..5), 1..4),
        seed in 0u64..1_000_000,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut m = bag(&shapes, seed);
        let blob = TrainCheckpoint::capture(&mut m, 1, 2, 3, 4, vec![5, 6]).encode();
        let mut bad = blob.to_vec();
        // Corrupt strictly inside the CRC-protected payload (header is 20
        // bytes: magic, version, crc, length).
        let payload_len = bad.len() - 20;
        let idx = 20 + ((payload_len as f64) * byte_frac) as usize;
        bad[idx] ^= 1 << bit;
        prop_assert!(matches!(
            TrainCheckpoint::decode(&bad),
            Err(CheckpointError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn foreign_versions_are_rejected_before_the_crc(version_raw in 0u32..1_000_000) {
        // Remap the one in-range collision instead of discarding the case.
        let version = if version_raw == VERSION { 0 } else { version_raw };
        let mut m = bag(&[(2, 2)], 7);
        let mut bad = TrainCheckpoint::capture(&mut m, 1, 2, 3, 4, Vec::new())
            .encode()
            .to_vec();
        bad[4..8].copy_from_slice(&version.to_le_bytes());
        // Also clobber the CRC: the version check must win, proving layout
        // mismatches are diagnosed as such rather than as corruption.
        bad[8] ^= 0xff;
        prop_assert_eq!(
            TrainCheckpoint::decode(&bad),
            Err(CheckpointError::WrongVersion { found: version, expected: VERSION })
        );
    }

    #[test]
    fn train_state_blob_rejects_foreign_shapes_typed(
        rows in 1usize..5,
        cols in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let mut src = bag(&[(rows, cols)], seed);
        let blob = save_train_state(&mut src);
        // Same parameter count, different shape.
        let mut other = bag(&[(rows + 1, cols)], seed);
        prop_assert!(load_train_state(&mut other, &blob).is_err());
        // Different parameter count.
        let mut more = bag(&[(rows, cols), (1, 1)], seed);
        prop_assert!(load_train_state(&mut more, &blob).is_err());
        // And the matching architecture still loads.
        let mut same = bag(&[(rows, cols)], seed ^ 1);
        prop_assert!(load_train_state(&mut same, &blob).is_ok());
    }

    #[test]
    fn crc32_distinguishes_single_bit_flips(
        data in proptest::collection::vec(0u8..=255, 1..128),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let base = crc32(&data);
        let mut flipped = data.clone();
        let idx = ((data.len() as f64) * byte_frac) as usize;
        flipped[idx] ^= 1 << bit;
        prop_assert_ne!(crc32(&flipped), base);
    }
}
