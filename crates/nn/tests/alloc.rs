//! Steady-state inference performs **zero** heap allocations.
//!
//! The scratch-arena design (`kglink_kernels::Scratch` +
//! `EncoderScratch`) claims that after the first warm-up call, every
//! buffer the batched forward needs comes out of a preallocated pool.
//! `EncoderScratch::fresh_allocs` already counts pool misses, but it can
//! only see allocations routed *through* the pool. This test installs a
//! counting global allocator and asserts on the real thing: the process
//! allocation counter must not move across repeated `infer_batch` calls.
//!
//! The test lives alone in its own integration-test binary on purpose —
//! any concurrently running test would allocate and poison the counter.

use kglink_nn::{Encoder, EncoderConfig, EncoderScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// System allocator with a call counter on every acquisition path
/// (`alloc`, `alloc_zeroed`, and growth via `realloc`).
struct CountingAlloc;

// SAFETY: every method forwards its arguments unchanged to `System`,
// which upholds the `GlobalAlloc` contract; the counter bump is a
// side-effect-free atomic and cannot violate it.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System::alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's, passed through untouched.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: delegates to `System::alloc_zeroed` with the caller's layout.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's, passed through untouched.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: delegates to `System::realloc`; the caller owns the contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout`/`new_size` come straight from the caller,
        // who must satisfy `realloc`'s contract; we forward them as-is.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: delegates to `System::dealloc`; `ptr` came from this impl.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System` via one of the methods
        // above with this same `layout`; forwarding is sound.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_batched_inference_is_allocation_free() {
    let encoder = Encoder::new(EncoderConfig::mini(256));
    let seqs: Vec<Vec<u32>> = (0..6)
        .map(|i| (0..(5 + i * 7)).map(|t| (t % 251) as u32).collect())
        .collect();
    let refs: Vec<&[u32]> = seqs.iter().map(Vec::as_slice).collect();
    let mut scratch = EncoderScratch::new();

    // Warm-up: sizes the scratch pool, the packed hidden buffer, and the
    // offsets table for this batch shape.
    let warm: Vec<f32> = {
        let out = encoder.infer_batch(&refs, &mut scratch);
        out.packed().data().to_vec()
    };

    let pool_misses = scratch.fresh_allocs();
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..5 {
        let out = encoder.infer_batch(&refs, &mut scratch);
        // Read something so the call cannot be optimized away, without
        // allocating: compare against the warm-up output in place.
        assert!(out
            .packed()
            .data()
            .iter()
            .zip(&warm)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state infer_batch hit the global allocator {} time(s)",
        after - before
    );
    assert_eq!(
        scratch.fresh_allocs(),
        pool_misses,
        "scratch pool reported a miss after warm-up"
    );
}
