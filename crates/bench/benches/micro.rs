//! Criterion microbenchmarks over the hot paths behind the paper's time
//! axes (Figure 7's end-to-end runtime, Figure 10's time-vs-k curve):
//! BM25 retrieval, each Part-1 stage, serialization, encoder forward, and a
//! full training step.

use criterion::{criterion_group, criterion_main, Criterion};
use kglink_core::config::KgLinkConfig;
use kglink_core::filter::prune_and_filter;
use kglink_core::linking::LinkedTable;
use kglink_core::model::KgLinkModel;
use kglink_core::pipeline::build_vocab;
use kglink_core::preprocess::{preprocess_table, Preprocessor};
use kglink_core::serialize::{serialize_table, SlotFill};
use kglink_core::train::{evaluate, prepare_tables};
use kglink_datagen::{semtab_like, SemTabConfig};
use kglink_kg::{SyntheticWorld, WorldConfig};
use kglink_nn::Tokenizer;
use kglink_search::EntitySearcher;
use std::hint::black_box;

struct Fixture {
    world: SyntheticWorld,
    searcher: EntitySearcher,
    bench: kglink_datagen::GeneratedBenchmark,
    tokenizer: Tokenizer,
    config: KgLinkConfig,
}

fn fixture() -> Fixture {
    let world = SyntheticWorld::generate(&WorldConfig {
        seed: 5,
        scale: 0.4,
        ..WorldConfig::default()
    });
    let bench = semtab_like(
        &world,
        &SemTabConfig {
            seed: 5,
            n_tables: 40,
            ..SemTabConfig::default()
        },
    );
    let searcher = EntitySearcher::build(&world.graph);
    let vocab = build_vocab([], &[&bench.dataset], 8000);
    Fixture {
        tokenizer: Tokenizer::new(vocab),
        world,
        searcher,
        bench,
        config: KgLinkConfig::default(),
    }
}

fn bench_bm25(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("bm25_link_mention_top10", |b| {
        b.iter(|| {
            black_box(f.searcher.link_mention(black_box("Peter Steele"), 10));
        })
    });
}

fn bench_part1(c: &mut Criterion) {
    let f = fixture();
    let table = &f.bench.dataset.tables[0];
    c.bench_function("part1_link_table", |b| {
        b.iter(|| black_box(LinkedTable::link(table, &f.searcher, 10)))
    });
    let linked = LinkedTable::link(table, &f.searcher, 10);
    c.bench_function("part1_prune_and_filter", |b| {
        b.iter(|| {
            black_box(prune_and_filter(
                table,
                &linked,
                &f.world.graph,
                25,
                kglink_core::RowFilter::LinkScore,
            ))
        })
    });
    c.bench_function("part1_full_preprocess_table", |b| {
        b.iter(|| black_box(preprocess_table(table, &f.world.graph, &f.searcher, &f.config)))
    });
}

fn bench_serialization(c: &mut Criterion) {
    let f = fixture();
    let pt = preprocess_table(&f.bench.dataset.tables[0], &f.world.graph, &f.searcher, &f.config);
    c.bench_function("serialize_table_masked", |b| {
        b.iter(|| {
            black_box(serialize_table(
                &pt,
                &f.tokenizer,
                &f.bench.dataset.labels,
                &f.config,
                SlotFill::Mask,
            ))
        })
    });
}

fn bench_model(c: &mut Criterion) {
    let f = fixture();
    let pre = Preprocessor::new(&f.world.graph, &f.searcher, f.config.clone());
    let processed: Vec<_> = f.bench.dataset.tables[..4]
        .iter()
        .flat_map(|t| pre.process(t))
        .collect();
    let prepared = prepare_tables(&processed, &f.tokenizer, &f.bench.dataset.labels, &f.config, true);
    let model = KgLinkModel::new(&f.config, f.tokenizer.vocab.len(), f.bench.dataset.labels.len());
    c.bench_function("encoder_forward_table", |b| {
        b.iter(|| black_box(model.encoder.infer(&prepared[0].masked.ids)))
    });
    c.bench_function("predict_table", |b| {
        b.iter(|| black_box(kglink_core::train::predict_table(&model, &f.config, &prepared[0])))
    });
    c.bench_function("evaluate_4_tables", |b| {
        b.iter(|| black_box(evaluate(&model, &f.config, &prepared)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bm25, bench_part1, bench_serialization, bench_model
}
criterion_main!(benches);
