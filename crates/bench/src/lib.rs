//! Shared experiment harness.
//!
//! Every `exp_*` binary reproduces one table or figure of the paper. They
//! all share this environment: one synthetic world, the two generated
//! benchmarks (SemTab-like and VizNet-like), one shared vocabulary, and one
//! MLM-pre-trained MiniLM encoder (the BERT-checkpoint stand-in) that is
//! cached on disk so the grid does not repeat pre-training.
//!
//! Scaling knobs (environment variables):
//! * `KGLINK_FAST=1` — shrink everything for smoke runs.
//! * `KGLINK_SEED=<n>` — change the global seed (default 7).

#![deny(deprecated)]

use kglink_baselines::doduo::Doduo;
use kglink_baselines::hnn::Hnn;
use kglink_baselines::mlp::MlpConfig;
use kglink_baselines::mtab::MTab;
use kglink_baselines::plm::PlmConfig;
use kglink_baselines::reca::Reca;
use kglink_baselines::sherlock::Sherlock;
use kglink_baselines::sudowoodo::{Sudowoodo, SudowoodoConfig};
use kglink_baselines::tabert::TaBert;
use kglink_baselines::{BenchEnv, CtaModel};
use kglink_core::pipeline::{build_vocab, KgLink, Resources};
use kglink_core::{KgLinkConfig, TrainReport};
use kglink_datagen::{pretrain_corpus, semtab_like, viznet_like, GeneratedBenchmark, SemTabConfig, VizNetConfig};
use kglink_kg::{SyntheticWorld, WorldConfig};
use kglink_nn::serialize::save_params;
use kglink_nn::{Encoder, EncoderConfig, MlmPretrainConfig, MlmPretrainer, Tokenizer};
use kglink_search::{EntitySearcher, KgBackend};
use kglink_table::{Dataset, EvalSummary, LabelId, Split, Table};
use std::time::Instant;

/// Which benchmark dataset an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    SemTab,
    VizNet,
}

impl Which {
    pub fn name(self) -> &'static str {
        match self {
            Which::SemTab => "SemTab-like",
            Which::VizNet => "VizNet-like",
        }
    }
}

/// The shared experiment environment.
pub struct ExpEnv {
    pub world: SyntheticWorld,
    pub semtab: GeneratedBenchmark,
    pub viznet: GeneratedBenchmark,
    pub searcher: EntitySearcher,
    pub tokenizer: Tokenizer,
    pub pretrained: Vec<u8>,
    pub fast: bool,
    pub seed: u64,
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1" || v == "true").unwrap_or(false)
}

impl ExpEnv {
    /// Build (or load from cache) the shared environment.
    pub fn load() -> ExpEnv {
        let fast = env_flag("KGLINK_FAST");
        let seed: u64 = std::env::var("KGLINK_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(7);
        let world_cfg = WorldConfig {
            seed,
            scale: if fast { 0.15 } else { 1.0 },
            ..WorldConfig::default()
        };
        eprintln!("[setup] generating world (scale {})…", world_cfg.scale);
        let world = SyntheticWorld::generate(&world_cfg);
        let semtab = semtab_like(
            &world,
            &SemTabConfig {
                seed: seed ^ 0x51,
                n_tables: if fast { 40 } else { 240 },
                ..SemTabConfig::default()
            },
        );
        let viznet = viznet_like(
            &world,
            &VizNetConfig {
                seed: seed ^ 0x52,
                n_tables: if fast { 80 } else { 700 },
                ..VizNetConfig::default()
            },
        );
        eprintln!(
            "[setup] SemTab-like: {} tables / {} columns / {} labels; VizNet-like: {} tables / {} columns / {} labels",
            semtab.dataset.len(),
            semtab.dataset.n_columns(),
            semtab.dataset.labels.len(),
            viznet.dataset.len(),
            viznet.dataset.n_columns(),
            viznet.dataset.labels.len(),
        );
        eprintln!("[setup] building BM25 index over {} entities…", world.graph.len());
        let searcher = EntitySearcher::build(&world.graph);
        let corpus = pretrain_corpus(&world, seed ^ 0x53);
        // The cap matters: rare entity tokens fall out of the vocabulary and
        // surface as [UNK], so models must generalize from context and KG
        // signals instead of memorizing cell tokens (the role played by
        // unseen entities in the real benchmarks).
        let vocab = build_vocab(
            corpus.iter().map(String::as_str),
            &[&semtab.dataset, &viznet.dataset],
            if fast { 1500 } else { 2600 },
        );
        eprintln!("[setup] vocabulary: {} tokens", vocab.len());
        let tokenizer = Tokenizer::new(vocab);
        let pretrained = Self::pretrain_encoder(&tokenizer, &corpus, seed, fast);
        ExpEnv {
            world,
            semtab,
            viznet,
            searcher,
            tokenizer,
            pretrained,
            fast,
            seed,
        }
    }

    /// MLM pre-training of the shared MiniLM, cached on disk.
    fn pretrain_encoder(tokenizer: &Tokenizer, corpus: &[String], seed: u64, fast: bool) -> Vec<u8> {
        let cache_dir = std::path::Path::new("target/kglink-cache");
        let cache = cache_dir.join(format!(
            "pretrained_v{}_{}_{}_{}.bin",
            1,
            seed,
            tokenizer.vocab.len(),
            u8::from(fast)
        ));
        if let Ok(blob) = std::fs::read(&cache) {
            eprintln!("[setup] loaded cached pre-trained encoder ({} bytes)", blob.len());
            return blob;
        }
        eprintln!("[setup] MLM pre-training on {} sentences…", corpus.len());
        let t0 = Instant::now();
        let enc = Encoder::new(EncoderConfig::mini(tokenizer.vocab.len()));
        let mut pre = MlmPretrainer::new(
            enc,
            MlmPretrainConfig {
                epochs: if fast { 1 } else { 3 },
                seed: seed ^ 0x54,
                ..Default::default()
            },
        );
        let ids: Vec<Vec<u32>> = corpus.iter().map(|s| tokenizer.encode_text(s)).collect();
        let losses = pre.train(&ids);
        eprintln!(
            "[setup] MLM losses per epoch: {:?} ({:.1}s)",
            losses,
            t0.elapsed().as_secs_f64()
        );
        let (mut encoder, _) = pre.into_parts();
        let blob = save_params(&mut encoder).to_vec();
        let _ = std::fs::create_dir_all(cache_dir);
        let _ = std::fs::write(&cache, &blob);
        blob
    }

    /// The benchmark for a dataset choice.
    pub fn bench(&self, which: Which) -> &GeneratedBenchmark {
        match which {
            Which::SemTab => &self.semtab,
            Which::VizNet => &self.viznet,
        }
    }

    /// KGLink resources view over the healthy in-process searcher.
    pub fn resources(&self) -> Resources<'_> {
        self.resources_with(&self.searcher)
    }

    /// KGLink resources view over an arbitrary retrieval backend (fault
    /// injection, resilient decorators, …).
    pub fn resources_with<'a>(&'a self, backend: &'a (dyn KgBackend + 'a)) -> Resources<'a> {
        Resources::builder()
            .graph(&self.world.graph)
            .backend(backend)
            .tokenizer(&self.tokenizer)
            .pretrained(&self.pretrained)
            .build()
            .expect("experiment env bundles a complete resource set")
    }

    /// Baseline environment view for a dataset.
    pub fn baseline_env<'a>(&'a self, resources: &'a Resources<'a>, which: Which) -> BenchEnv<'a> {
        let bench = self.bench(which);
        BenchEnv {
            resources,
            labels: &bench.dataset.labels,
            label_to_type: &bench.label_to_type,
        }
    }

    /// The paper trains 50 epochs on SemTab and 20 on VizNet; scaled here.
    pub fn kglink_config(&self, which: Which) -> KgLinkConfig {
        let epochs = match (which, self.fast) {
            (Which::SemTab, false) => 14,
            (Which::VizNet, false) => 8,
            (_, true) => 3,
        };
        KgLinkConfig {
            epochs,
            patience: 3,
            seed: self.seed ^ 0x60,
            // Paper: dropout 0.1 on SemTab, 0.2 on VizNet ("since it
            // contains more training tables").
            dropout: match which {
                Which::SemTab => 0.1,
                Which::VizNet => 0.2,
            },
            ..KgLinkConfig::default()
        }
    }

    /// Matching settings for the PLM baselines.
    pub fn plm_config(&self, which: Which) -> PlmConfig {
        let kc = self.kglink_config(which);
        PlmConfig {
            epochs: kc.epochs,
            patience: kc.patience,
            batch_size: kc.batch_size,
            seed: self.seed ^ 0x61,
            ..Default::default()
        }
    }
}

/// Outcome of one model × dataset run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub model: String,
    pub summary: EvalSummary,
    pub fit_seconds: f64,
    pub predict_seconds: f64,
}

/// Train and evaluate one baseline on one dataset.
pub fn run_baseline(env: &ExpEnv, model: &mut dyn CtaModel, which: Which) -> RunResult {
    let resources = env.resources();
    let benv = env.baseline_env(&resources, which);
    let dataset = &env.bench(which).dataset;
    let t0 = Instant::now();
    model.fit(&benv, dataset);
    let fit_seconds = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let summary = model.evaluate(&benv, dataset, Split::Test);
    let predict_seconds = t1.elapsed().as_secs_f64();
    eprintln!(
        "[run] {:<10} {:<12} acc {:5.2}  wF1 {:5.2}  (fit {:.1}s, predict {:.1}s)",
        model.name(),
        which.name(),
        summary.accuracy_pct(),
        summary.weighted_f1_pct(),
        fit_seconds,
        predict_seconds
    );
    RunResult {
        model: model.name().to_string(),
        summary,
        fit_seconds,
        predict_seconds,
    }
}

/// Train and evaluate KGLink (or an ablation of it) on one dataset.
pub fn run_kglink(env: &ExpEnv, which: Which, config: KgLinkConfig, name: &str) -> (RunResult, TrainReport, KgLink) {
    let resources = env.resources();
    run_kglink_on(env, &resources, which, config, name)
}

/// [`run_kglink`] against explicit resources — lets chaos experiments swap
/// in a faulty or resilient retrieval backend for both fit and evaluate.
pub fn run_kglink_on(
    env: &ExpEnv,
    resources: &Resources<'_>,
    which: Which,
    config: KgLinkConfig,
    name: &str,
) -> (RunResult, TrainReport, KgLink) {
    let dataset = &env.bench(which).dataset;
    let t0 = Instant::now();
    let (model, report) = KgLink::fit(resources, dataset, config);
    let fit_seconds = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let summary = model.evaluate(resources, dataset, Split::Test);
    let predict_seconds = t1.elapsed().as_secs_f64();
    eprintln!(
        "[run] {:<10} {:<12} acc {:5.2}  wF1 {:5.2}  (fit {:.1}s, predict {:.1}s)",
        name,
        which.name(),
        summary.accuracy_pct(),
        summary.weighted_f1_pct(),
        fit_seconds,
        predict_seconds
    );
    (
        RunResult {
            model: name.to_string(),
            summary,
            fit_seconds,
            predict_seconds,
        },
        report,
        model,
    )
}

/// All baseline constructors, in the paper's Table I order.
pub fn baseline_registry(env: &ExpEnv, which: Which) -> Vec<Box<dyn CtaModel>> {
    let plm = env.plm_config(which);
    vec![
        Box::new(MTab::new()),
        Box::new(TaBert::new(plm.clone())),
        Box::new(Doduo::new(plm.clone())),
        Box::new(Hnn::new(MlpConfig::default())),
        Box::new(Sudowoodo::new(SudowoodoConfig::default())),
        Box::new(Reca::new(plm)),
        // Not in the paper's Table I, included as an extra reference point.
        Box::new(Sherlock::new(MlpConfig::default())),
    ]
}

/// Print a GitHub-flavored markdown table.
pub fn print_markdown(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

/// Predictions + truths over a set of raw tables for a baseline model.
pub fn predictions_on<'a>(
    model: &dyn CtaModel,
    benv: &BenchEnv<'_>,
    tables: impl Iterator<Item = &'a Table>,
) -> (Vec<LabelId>, Vec<LabelId>) {
    let mut preds = Vec::new();
    let mut truths = Vec::new();
    for t in tables {
        preds.extend(model.predict_table(benv, t));
        truths.extend(t.labels.iter().copied());
    }
    (preds, truths)
}

/// Split a dataset's test tables into (numeric columns, non-numeric
/// columns) restricted to tables with **zero** KG linkage — the paper's
/// Table IV subset ("whose entire table has no linkage to the KG").
pub fn no_linkage_test_subset(env: &ExpEnv, dataset: &Dataset) -> Vec<usize> {
    dataset
        .table_indices(Split::Test)
        .into_iter()
        .filter(|&i| {
            let t = &dataset.tables[i];
            let linked = kglink_core::linking::LinkedTable::link(t, &env.searcher, 3);
            linked.cells.iter().flatten().all(|c| c.candidates.is_empty())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_prints() {
        print_markdown(
            "Demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        assert_eq!(pct(12.345), "12.35");
    }

    #[test]
    fn which_names() {
        assert_eq!(Which::SemTab.name(), "SemTab-like");
        assert_eq!(Which::VizNet.name(), "VizNet-like");
    }
}
