//! Figure 8 — the uncertainty weights σ0, σ1 of the adaptive combined loss:
//! (a) sensitivity of accuracy to pinned log σ² values on SemTab;
//! (b) the trained trajectory of log σ0², log σ1² on both datasets.
//!
//! Paper reference: Figure 8(a) sweeps log σ² in [0.4, 1.4] (the other
//! fixed at 1.0) and finds the model more sensitive to σ0 (the
//! representation-generation weight); Figure 8(b) shows VizNet converging
//! to a smaller σ0 than SemTab.

use kglink_bench::{print_markdown, run_kglink, ExpEnv, Which};

fn main() {
    let env = ExpEnv::load();

    // ---- (a) sensitivity sweep on SemTab ---------------------------------
    let sweep = [0.4f32, 0.6, 0.8, 1.0, 1.2, 1.4];
    let mut rows = Vec::new();
    for &s0 in &sweep {
        let mut config = env.kglink_config(Which::SemTab);
        config.fixed_log_sigmas = Some((s0, 1.0));
        let (r, _, _) = run_kglink(&env, Which::SemTab, config, "KGLink(σ0)");
        rows.push(vec![
            format!("log σ0² = {s0:.1} (σ1 fixed 1.0)"),
            format!("{:.2}", r.summary.accuracy_pct()),
            format!("{:.2}", r.summary.weighted_f1_pct()),
        ]);
    }
    for &s1 in &sweep {
        let mut config = env.kglink_config(Which::SemTab);
        config.fixed_log_sigmas = Some((1.0, s1));
        let (r, _, _) = run_kglink(&env, Which::SemTab, config, "KGLink(σ1)");
        rows.push(vec![
            format!("log σ1² = {s1:.1} (σ0 fixed 1.0)"),
            format!("{:.2}", r.summary.accuracy_pct()),
            format!("{:.2}", r.summary.weighted_f1_pct()),
        ]);
    }
    print_markdown(
        "Figure 8(a) — sensitivity of pinned log σ² (measured, SemTab-like)",
        &["Setting", "Accuracy", "Weighted F1"],
        &rows,
    );

    // ---- (b) trained trajectories ----------------------------------------
    let mut rows = Vec::new();
    for which in [Which::SemTab, Which::VizNet] {
        let (_, report, _) = run_kglink(&env, which, env.kglink_config(which), "KGLink");
        for (epoch, (s0, s1)) in report.sigma_trajectory.iter().enumerate() {
            rows.push(vec![
                which.name().to_string(),
                epoch.to_string(),
                format!("{s0:.4}"),
                format!("{s1:.4}"),
            ]);
        }
    }
    print_markdown(
        "Figure 8(b) — trained log σ² trajectory (measured)",
        &["Dataset", "Epoch", "log σ0²", "log σ1²"],
        &rows,
    );
}
