//! Crash-chaos experiment — deterministic kill/corrupt/panic scenarios
//! against the crash-safety layer (not a paper table).
//!
//! Three phases, each of which exits non-zero on a contract violation:
//!
//! 1. **Kill + resume** — train KGLink with periodic atomic checkpoints,
//!    kill the run after each sampled optimizer step, resume from the last
//!    checkpoint, and require the final parameters (values *and* AdamW
//!    moments) to be **bit-identical** to the uninterrupted run.
//! 2. **Divergence guards** — inject non-finite gradients at fixed steps
//!    and require: `SkipStep` contains the poison (NaN-free final state,
//!    finite validation accuracy), `Rollback` restores the last checkpoint
//!    after K consecutive bad steps, and the unguarded run provably *does*
//!    absorb the NaN (the guard is load-bearing, not decorative).
//! 3. **Serving under panics** — drive `kglink-serve` through a
//!    `PanickingBackend`; every ticket must resolve (no hangs), restarts
//!    stay within budget, metrics reconcile, and a zero-budget pool fails
//!    queued and future requests with the typed budget error.
//!
//! `--smoke` shrinks the workload (fewer kill points, smaller serve
//! batch); every assertion is kept.

use kglink_bench::{print_markdown, ExpEnv, Which};
use kglink_core::pipeline::KgLink;
use kglink_core::{FitOptions, GuardPolicy, TrainReport};
use kglink_nn::checkpoint::save_train_state;
use kglink_nn::layers::param::HasParams;
use kglink_search::PanickingBackend;
use kglink_serve::{
    AdmissionPolicy, AnnotationService, ServiceConfig, ServiceError, SharedBackend,
};
use kglink_table::{Split, Table};
use std::path::PathBuf;
use std::sync::Arc;

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

/// Full mutable training state (values + AdamW moments) as bytes, for
/// bit-identity comparisons.
fn state_bytes(model: &mut KgLink) -> Vec<u8> {
    save_train_state(&mut model.model).to_vec()
}

/// True iff no parameter value or AdamW moment is NaN.
fn state_is_nan_free(model: &mut KgLink) -> bool {
    let mut clean = true;
    model.model.visit_params(&mut |p| {
        for &v in p.value.data().iter().chain(p.m.data()).chain(p.v.data()) {
            clean &= !v.is_nan();
        }
    });
    clean
}

fn ckpt_path(tag: &str) -> PathBuf {
    let dir = PathBuf::from("target/exp_crash");
    std::fs::create_dir_all(&dir).expect("create target/exp_crash");
    dir.join(format!("{tag}.kgck"))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let env = ExpEnv::load();
    let which = Which::SemTab;
    let dataset = &env.bench(which).dataset;
    let mut config = env.kglink_config(which);
    // Early stopping makes the step count depend on the validation curve;
    // pin the epoch budget so every scenario replays the same schedule,
    // and shrink batches so checkpoints land between several steps/epoch.
    config.patience = 0;
    config.batch_size = 8;
    if smoke {
        config.epochs = config.epochs.min(2);
    }
    let resources = env.resources();
    let mut rows: Vec<Vec<String>> = Vec::new();

    // -----------------------------------------------------------------
    // Phase 1: kill + resume is bit-identical
    // -----------------------------------------------------------------
    eprintln!("[crash] phase 1: baseline uninterrupted run…");
    let (mut baseline, base_report) =
        KgLink::fit_with(&resources, dataset, config.clone(), &FitOptions::new())
            .unwrap_or_else(|e| fail(&format!("baseline fit failed: {e}")));
    let baseline_state = state_bytes(&mut baseline);
    let n_train = dataset.tables_in(Split::Train).count();
    let steps_per_epoch = n_train.div_ceil(config.batch_size.max(1)) as u64;
    let total_steps = steps_per_epoch * base_report.epoch_loss.len() as u64;
    let every = 2u64;
    let kill_steps: Vec<u64> = if smoke {
        vec![2.min(total_steps - 1), total_steps - 1]
    } else {
        // Sample both sides of epoch boundaries plus the final step. A kill
        // before the first checkpoint boundary has nothing to resume from.
        let mut v = vec![
            every,
            steps_per_epoch,
            steps_per_epoch + 1,
            total_steps / 2,
            total_steps - 1,
        ];
        v.retain(|&s| s >= every && s < total_steps);
        v.sort_unstable();
        v.dedup();
        v
    };
    eprintln!(
        "[crash] {total_steps} total steps ({steps_per_epoch}/epoch); killing at {kill_steps:?}"
    );
    for &kill in &kill_steps {
        let path = ckpt_path(&format!("resume-{kill}"));
        let halted = FitOptions::new()
            .checkpoint_every(&path, every)
            .halt_after_step(kill);
        let (_, hrep) = KgLink::fit_with(&resources, dataset, config.clone(), &halted)
            .unwrap_or_else(|e| fail(&format!("halted fit failed: {e}")));
        if !hrep.halted {
            fail(&format!("kill at step {kill} did not halt the run"));
        }
        let resume = FitOptions::new()
            .checkpoint_every(&path, every)
            .resume_from(&path);
        let (mut resumed, rrep) = KgLink::fit_with(&resources, dataset, config.clone(), &resume)
            .unwrap_or_else(|e| fail(&format!("resume from step {kill} failed: {e}")));
        let from = rrep
            .resumed_from_step
            .unwrap_or_else(|| fail("resume did not report its starting step"));
        if from != kill - (kill % every) {
            fail(&format!(
                "kill {kill}: resumed from step {from}, expected the last checkpoint boundary"
            ));
        }
        if state_bytes(&mut resumed) != baseline_state {
            fail(&format!(
                "kill at step {kill} + resume diverged from the uninterrupted run"
            ));
        }
        if rrep.val_accuracy != base_report.val_accuracy {
            fail(&format!("kill {kill}: validation trajectory diverged"));
        }
        std::fs::remove_file(&path).ok();
        eprintln!("[crash] kill@{kill} → resume@{from}: bit-identical ✓");
    }
    rows.push(vec![
        "kill+resume".into(),
        format!("{} kill points, checkpoint every {every}", kill_steps.len()),
        "bit-identical".into(),
    ]);

    // -----------------------------------------------------------------
    // Phase 2: divergence guards
    // -----------------------------------------------------------------
    let faults = [2u64, 5];
    eprintln!("[crash] phase 2: guards under injected non-finite steps {faults:?}…");
    let run_guard = |opts: &FitOptions| -> (KgLink, TrainReport) {
        KgLink::fit_with(&resources, dataset, config.clone(), opts)
            .unwrap_or_else(|e| fail(&format!("guarded fit failed: {e}")))
    };

    let (mut unguarded, urep) = run_guard(&FitOptions::new().inject_nonfinite_at(&faults));
    if urep.nonfinite_steps != faults.len() as u64 {
        fail("unguarded run miscounted injected non-finite steps");
    }
    if state_is_nan_free(&mut unguarded) {
        fail("injection is inert: unguarded run stayed NaN-free, guard proves nothing");
    }

    let (mut skipped, srep) = run_guard(
        &FitOptions::new()
            .guard(GuardPolicy::SkipStep)
            .inject_nonfinite_at(&faults),
    );
    if srep.nonfinite_steps != faults.len() as u64 {
        fail("SkipStep miscounted non-finite steps");
    }
    if !state_is_nan_free(&mut skipped) {
        fail("SkipStep let the injected NaN reach the weights");
    }
    let last_acc = *srep.val_accuracy.last().unwrap_or(&0.0);
    if !last_acc.is_finite() {
        fail("SkipStep run ended with a non-finite validation accuracy");
    }
    let summary = skipped.evaluate(&resources, dataset, Split::Test);
    if !summary.weighted_f1_pct().is_finite() {
        fail("SkipStep model does not evaluate to finite metrics");
    }
    eprintln!(
        "[crash] SkipStep: {} skipped, final wF1 {:.2} ✓",
        srep.nonfinite_steps,
        summary.weighted_f1_pct()
    );
    rows.push(vec![
        "guard: SkipStep".into(),
        format!("{} injected NaN steps", faults.len()),
        format!("contained, wF1 {:.2}", summary.weighted_f1_pct()),
    ]);

    let rb_path = ckpt_path("rollback");
    let (mut rolled, rbrep) = run_guard(
        &FitOptions::new()
            .checkpoint_every(&rb_path, every)
            .guard(GuardPolicy::Rollback { max_consecutive: 2 })
            .inject_nonfinite_at(&[3, 4, 5]),
    );
    if rbrep.rollbacks < 1 {
        fail("three consecutive bad steps with K=2 must trigger a rollback");
    }
    if !state_is_nan_free(&mut rolled) {
        fail("rollback did not discard the poisoned state");
    }
    std::fs::remove_file(&rb_path).ok();
    eprintln!("[crash] Rollback: {} rollback(s), state NaN-free ✓", rbrep.rollbacks);
    rows.push(vec![
        "guard: Rollback".into(),
        "3 consecutive NaN steps, K=2".into(),
        format!("{} rollback(s), NaN-free", rbrep.rollbacks),
    ]);

    // -----------------------------------------------------------------
    // Phase 3: serving under a panicking backend
    // -----------------------------------------------------------------
    eprintln!("[crash] phase 3: serve chaos…");
    // Injected panics are the point of this phase; keep their default
    // backtrace spew out of the harness output. Anything else still prints.
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap_or("panic");
        if !msg.starts_with("injected panic") {
            eprintln!("panic: {msg} ({:?})", info.location());
        }
    }));
    let model = Arc::new(baseline);
    let graph: Arc<dyn kglink_kg::GraphAccess> = Arc::new(env.world.graph.clone());
    let tokenizer = Arc::new(env.tokenizer.clone());
    let searcher = Arc::new(kglink_search::EntitySearcher::build(&env.world.graph));
    let tables: Vec<Table> = dataset
        .tables_in(Split::Test)
        .take(if smoke { 8 } else { 40 })
        .cloned()
        .collect();

    let budget = 32usize;
    let backend = Arc::new(PanickingBackend::new(Arc::clone(&searcher), 7));
    let mut svc = AnnotationService::new(
        Arc::clone(&model),
        Arc::clone(&graph),
        Arc::clone(&backend) as SharedBackend,
        Arc::clone(&tokenizer),
        ServiceConfig {
            workers: 2,
            max_batch: 2,
            cache: None, // every retrieval reaches the panicking backend
            admission: AdmissionPolicy::Block,
            restart_budget: budget,
            ..ServiceConfig::default()
        },
    );
    let tickets = svc.submit_batch(tables.iter().cloned());
    let (mut ok, mut panicked) = (0u64, 0u64);
    for ticket in tickets {
        // Every ticket must resolve; a hung ticket hangs the harness here.
        match ticket.expect("queue has room").wait() {
            Ok(_) => ok += 1,
            Err(ServiceError::WorkerPanicked) => panicked += 1,
            Err(other) => fail(&format!("unexpected ticket error: {other}")),
        }
    }
    if panicked == 0 {
        fail("a panic every 7 retrievals never hit a request — injection inert");
    }
    if ok + panicked != tables.len() as u64 {
        fail("ticket accounting does not cover every submitted table");
    }
    svc.shutdown(); // quiesce so the counters are final
    let metrics = svc.metrics();
    if metrics.completed != ok || metrics.worker_panics != panicked {
        fail(&format!(
            "metrics do not reconcile: completed {} vs ok {ok}, panics {} vs {panicked}",
            metrics.completed, metrics.worker_panics
        ));
    }
    if metrics.worker_restarts > budget as u64 {
        fail("supervisor exceeded its restart budget");
    }
    eprintln!(
        "[crash] serve chaos: {ok} ok, {panicked} panicked (typed), {} restart(s) ≤ budget {budget} ✓",
        metrics.worker_restarts
    );
    rows.push(vec![
        "serve: panic isolation".into(),
        format!("{} tables, panic every 7 calls", tables.len()),
        format!(
            "0 hung, {panicked} typed panics, {} restarts",
            metrics.worker_restarts
        ),
    ]);

    // Zero budget: the pool dies on the first panic and everything fails
    // typed — queued requests and future submissions alike.
    let dead_backend = Arc::new(PanickingBackend::new(Arc::clone(&searcher), 1));
    let dead = AnnotationService::new(
        Arc::clone(&model),
        graph,
        dead_backend as SharedBackend,
        tokenizer,
        ServiceConfig {
            workers: 1,
            max_batch: 1,
            cache: None,
            admission: AdmissionPolicy::Block,
            restart_budget: 0,
            ..ServiceConfig::default()
        },
    );
    let tickets = dead.submit_batch(tables.iter().take(4).cloned());
    let mut exhausted = 0usize;
    for ticket in tickets {
        match ticket.expect("queue has room").wait() {
            Err(ServiceError::WorkerPanicked) => {}
            Err(ServiceError::RestartBudgetExhausted { budget: 0 }) => exhausted += 1,
            Ok(_) => fail("a request succeeded through an always-panicking backend"),
            Err(other) => fail(&format!("untyped failure from the dead pool: {other}")),
        }
    }
    if exhausted == 0 {
        fail("queued requests behind the dead pool must see the budget error");
    }
    if !matches!(
        dead.submit(tables[0].clone()),
        Err(ServiceError::RestartBudgetExhausted { budget: 0 })
    ) {
        fail("a dead pool must refuse new submissions with the typed budget error");
    }
    eprintln!("[crash] zero budget: pool failed closed, {exhausted} queued requests typed ✓");
    rows.push(vec![
        "serve: budget exhaustion".into(),
        "budget 0, panic on every call".into(),
        format!("fails closed, {exhausted} typed refusals"),
    ]);

    print_markdown(
        "Crash chaos — checkpoints, guards, and panic-isolated serving",
        &["Scenario", "Setup", "Outcome"],
        &rows,
    );
    eprintln!("[crash] all phases OK");
}
