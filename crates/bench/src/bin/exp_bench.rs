//! exp_bench: standing compute benchmark for the kernel layer.
//!
//! Not a paper table — this is the perf gate for `kglink-kernels`, the
//! batched inference core every forward pass routes through. It measures
//! four things and writes them to `BENCH_kernels.json` so later PRs have a
//! compute trajectory to move:
//!
//! 1. **Parity gate.** The scalar path (the pre-kernel per-column
//!    `Encoder::infer` loop driving the reference kernel — one serial dot
//!    product per output element, via `set_reference_mode(true)`) and the
//!    fast path (one batched CLS-row-pruned forward per table through the
//!    blocked 4×8-unrolled GEMM) must produce identical labels on the
//!    real trained model over real test tables. This is the end-to-end
//!    echo of the bit-parity proptests in `crates/kernels/tests/parity.rs`.
//! 2. **Annotate throughput.** Tables/sec and columns/sec of classification
//!    over prepared test tables, scalar-per-column vs fast-batched, single
//!    thread. The speedup is the headline number and is asserted against a
//!    floor (the kernel layer's reason to exist).
//! 3. **Train steps/sec.** Optimizer steps per second of `KgLink::fit`,
//!    measured subtractively between two halted runs so one-time dataset
//!    preparation cancels out.
//! 4. **Per-kernel GFLOP/s.** Micro-benchmarks of `gemm`, `softmax_rows`,
//!    `layer_norm_rows`, and `bias_gelu_rows` at encoder-shaped operands,
//!    using nominal flop counts (noted in the JSON field names' comments).
//!
//! It also runs a short traced annotation pass and reports the nested
//! `nn.forward` stage (the batched encoder time inside `classify`), the
//! span `exp_obs` asserts on.
//!
//! `--smoke` shrinks the workload; combine with `KGLINK_FAST=1` for the CI
//! gate (parity + the speedup floor).

use kglink_bench::{print_markdown, ExpEnv, Which};
use kglink_core::pipeline::req;
use kglink_core::preprocess::Preprocessor;
use kglink_core::train::{self, prepare_tables, FitOptions, PreparedTable};
use kglink_core::{KgLink, KgLinkConfig, KgLinkModel};
use kglink_nn::kernels::{
    self, bias_gelu_rows, gemm, layer_norm_rows, set_reference_mode, softmax_rows, Mat, MatMut,
    Scratch, Trans,
};
use kglink_obs::{Histogram, Tracer};
use kglink_table::{LabelId, Split};
use std::time::Instant;

/// Minimum fast-over-scalar throughput ratio. The full run must clear the
/// tentpole target; smoke runs keep a safety margin against tiny-workload
/// jitter on shared CI hosts.
const SPEEDUP_FLOOR_FULL: f64 = 5.0;
const SPEEDUP_FLOOR_SMOKE: f64 = 3.0;

/// The legacy pre-kernel inference shape, kept here as the benchmark
/// baseline: one `Encoder::infer` for the masked table plus one *per
/// eligible feature column*, no cross-sequence batching and no last-block
/// row pruning. Combined with `set_reference_mode(true)` — the canonical
/// scalar kernel, one serial dot product per output element — this is the
/// scalar path the kernel crate replaced. (The old `Tensor::matmul` loop
/// orders partially auto-vectorized on some shapes; the reference kernel
/// is the definitional scalar form that shares its bits.)
fn predict_table_per_column(
    model: &KgLinkModel,
    config: &KgLinkConfig,
    pt: &PreparedTable,
) -> Vec<LabelId> {
    let hidden = model.encoder.infer(&pt.masked.ids);
    (0..pt.labels.len())
        .map(|c| {
            let cls = pt.masked.cls[c];
            if cls >= hidden.rows() {
                return LabelId(0);
            }
            let fv = if config.use_feature_vector {
                pt.features[c]
                    .as_ref()
                    .map(|fids| model.encoder.infer(fids).row(0).to_vec())
            } else {
                None
            };
            let y_col = model.compose(hidden.row(cls), fv.as_deref());
            let logits = model.classify(&y_col);
            let best = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            LabelId(best as u32)
        })
        .collect()
}

/// Wall-time a closure repeated until it has run for at least `min_ms`,
/// returning (total seconds, iterations).
fn time_at_least(min_ms: u64, mut f: impl FnMut()) -> (f64, u64) {
    let t0 = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        if t0.elapsed().as_millis() as u64 >= min_ms {
            return (t0.elapsed().as_secs_f64(), iters);
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let env = ExpEnv::load();
    let which = Which::SemTab;
    let mut config = env.kglink_config(which);
    if smoke {
        config.epochs = 1;
    }
    let resources = env.resources();
    let dataset = &env.bench(which).dataset;
    eprintln!("[bench] training KGLink ({} epochs)…", config.epochs);
    let (model, _) = KgLink::fit(&resources, dataset, config);

    // Prepare the classification workload once: Part 1 + serialization are
    // identical on both paths, so they stay out of the timed region.
    let pre = Preprocessor::new(&env.world.graph, &env.searcher, model.config.clone());
    let tables: Vec<_> = dataset
        .tables_in(Split::Test)
        .take(if smoke { 10 } else { usize::MAX })
        .collect();
    let processed: Vec<_> = tables.iter().flat_map(|t| pre.process(t)).collect();
    let prep = prepare_tables(
        &processed,
        &env.tokenizer,
        &model.labels,
        &model.config,
        false,
    );
    let n_cols: usize = prep.iter().map(|p| p.labels.len()).sum();
    eprintln!(
        "[bench] workload: {} tables → {} prepared chunks / {} columns",
        tables.len(),
        prep.len(),
        n_cols
    );

    // --- 1. Parity gate -----------------------------------------------------
    for (i, pt) in prep.iter().enumerate() {
        let fast = train::predict_table(&model.model, &model.config, pt);
        set_reference_mode(true);
        let scalar = predict_table_per_column(&model.model, &model.config, pt);
        set_reference_mode(false);
        assert_eq!(
            fast, scalar,
            "chunk {i}: fast batched labels diverge from the scalar per-column path"
        );
    }
    eprintln!("[bench] parity: scalar and fast paths agree on all {} chunks", prep.len());

    // --- 2. Annotate throughput, single thread ------------------------------
    let min_ms: u64 = if smoke { 300 } else { 2000 };
    set_reference_mode(true);
    let (scalar_s, scalar_iters) = time_at_least(min_ms, || {
        for pt in &prep {
            std::hint::black_box(predict_table_per_column(&model.model, &model.config, pt));
        }
    });
    set_reference_mode(false);
    let scalar_tables_per_s = (prep.len() as u64 * scalar_iters) as f64 / scalar_s;
    let scalar_cols_per_s = (n_cols as u64 * scalar_iters) as f64 / scalar_s;

    let mut col_us = Histogram::new();
    let (fast_s, fast_iters) = time_at_least(min_ms, || {
        for pt in &prep {
            let t = Instant::now();
            std::hint::black_box(train::predict_table(&model.model, &model.config, pt));
            let us = t.elapsed().as_nanos() as u64 / 1000;
            // Per-column annotate latency: a chunk's cost spread over its
            // columns (classification is one batched call per chunk).
            let cols = pt.labels.len().max(1) as u64;
            col_us.record_n(us / cols, cols);
        }
    });
    let fast_tables_per_s = (prep.len() as u64 * fast_iters) as f64 / fast_s;
    let fast_cols_per_s = (n_cols as u64 * fast_iters) as f64 / fast_s;
    let speedup = fast_cols_per_s / scalar_cols_per_s.max(1e-9);
    let col_p50 = col_us.p50();
    let col_p99 = col_us.p99();
    eprintln!(
        "[bench] scalar {scalar_cols_per_s:.0} cols/s, fast {fast_cols_per_s:.0} cols/s \
         → speedup {speedup:.2}×; per-column p50 {col_p50}us p99 {col_p99}us"
    );

    // --- 3. Train steps/sec (subtractive) ------------------------------------
    let steps_lo = 2u64;
    let steps_hi = if smoke { 8 } else { 20 };
    let mut steps_cfg = model.config.clone();
    steps_cfg.epochs = 1000; // never reached: halt_after_step fires first
    let t0 = Instant::now();
    let (_, r_lo) = KgLink::fit_with(
        &resources,
        dataset,
        steps_cfg.clone(),
        &FitOptions::new().halt_after_step(steps_lo),
    )
    .expect("halted fit (lo)");
    let lo_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let (_, r_hi) = KgLink::fit_with(
        &resources,
        dataset,
        steps_cfg,
        &FitOptions::new().halt_after_step(steps_hi),
    )
    .expect("halted fit (hi)");
    let hi_s = t1.elapsed().as_secs_f64();
    assert!(r_lo.halted && r_hi.halted, "steps/sec runs must halt at the step budget");
    let train_steps_per_s = (steps_hi - steps_lo) as f64 / (hi_s - lo_s).max(1e-6);
    eprintln!(
        "[bench] train: {steps_lo} steps in {lo_s:.2}s, {steps_hi} steps in {hi_s:.2}s \
         → {train_steps_per_s:.2} steps/s"
    );

    // --- 4. Per-kernel GFLOP/s ----------------------------------------------
    // Encoder-shaped operands: a max_len×d_model activation against d×d
    // weights, and row-wise kernels over the same activation.
    let (m, k, n) = (192usize, 48usize, 48usize);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 17) as f32 * 0.1 - 0.8).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 13) as f32 * 0.1 - 0.6).collect();
    let mut out = vec![0.0f32; m * n];
    let mut scratch = Scratch::new();
    let micro_ms: u64 = if smoke { 150 } else { 800 };
    let (gemm_s, gemm_iters) = time_at_least(micro_ms, || {
        gemm(
            Mat::new(&a, m, k),
            Mat::new(&b, k, n),
            Trans::No,
            Trans::No,
            &mut MatMut::new(&mut out, m, n),
            &mut scratch,
        );
    });
    // 2·m·n·k flops per GEMM.
    let gemm_gflops = (2 * m * n * k) as f64 * gemm_iters as f64 / gemm_s / 1e9;

    let mut act: Vec<f32> = (0..m * n).map(|i| (i % 23) as f32 * 0.1 - 1.1).collect();
    let gamma = vec![1.0f32; n];
    let beta = vec![0.0f32; n];
    // Nominal flops/element: softmax 5 (max, sub, exp, sum, div),
    // layer-norm 7 (two reduction passes + normalize + affine),
    // bias-GELU 11 (add + tanh-GELU polynomial).
    let (sm_s, sm_iters) = time_at_least(micro_ms, || softmax_rows(&mut act, n));
    let softmax_gflops = (5 * m * n) as f64 * sm_iters as f64 / sm_s / 1e9;
    let (ln_s, ln_iters) = time_at_least(micro_ms, || layer_norm_rows(&mut act, &gamma, &beta));
    let layer_norm_gflops = (7 * m * n) as f64 * ln_iters as f64 / ln_s / 1e9;
    let (bg_s, bg_iters) = time_at_least(micro_ms, || bias_gelu_rows(&mut act, &beta));
    let bias_gelu_gflops = (11 * m * n) as f64 * bg_iters as f64 / bg_s / 1e9;
    // The activation buffer saturates under repeated in-place kernels;
    // that's fine — these are throughput measurements, not accuracy ones.
    kernels::with_thread_scratch(|s| {
        let v = s.take(1);
        s.give(v);
    });
    eprintln!(
        "[bench] kernels: gemm {gemm_gflops:.2} GFLOP/s, softmax {softmax_gflops:.2}, \
         layer_norm {layer_norm_gflops:.2}, bias_gelu {bias_gelu_gflops:.2}"
    );

    // --- nn.forward stage via a traced annotation pass ----------------------
    let tracer = Tracer::enabled();
    let traced = env.resources().with_tracer(&tracer);
    for t in tables.iter().take(if smoke { 4 } else { 32 }) {
        model.annotate_request(&traced, req(t));
    }
    let stages = tracer.stages();
    let forward = stages
        .get("nn.forward")
        .expect("traced annotate must record the nn.forward stage");
    eprintln!(
        "[bench] nn.forward: {} spans, p50 {}us p99 {}us",
        forward.count(),
        forward.p50(),
        forward.p99()
    );

    // --- Report + JSON -------------------------------------------------------
    let floor = if smoke { SPEEDUP_FLOOR_SMOKE } else { SPEEDUP_FLOOR_FULL };
    print_markdown(
        &format!("exp_bench — kernel layer compute ({})", if smoke { "smoke" } else { "full" }),
        &["metric", "scalar", "fast"],
        &[
            vec!["tables/s".into(), format!("{scalar_tables_per_s:.1}"), format!("{fast_tables_per_s:.1}")],
            vec!["columns/s".into(), format!("{scalar_cols_per_s:.1}"), format!("{fast_cols_per_s:.1}")],
            vec!["speedup ×".into(), "1.00".into(), format!("{speedup:.2}")],
            vec!["per-column p50 µs".into(), "—".into(), col_p50.to_string()],
            vec!["per-column p99 µs".into(), "—".into(), col_p99.to_string()],
            vec!["train steps/s".into(), "—".into(), format!("{train_steps_per_s:.2}")],
            vec!["gemm GFLOP/s".into(), "—".into(), format!("{gemm_gflops:.2}")],
            vec!["softmax GFLOP/s".into(), "—".into(), format!("{softmax_gflops:.2}")],
            vec!["layer_norm GFLOP/s".into(), "—".into(), format!("{layer_norm_gflops:.2}")],
            vec!["bias_gelu GFLOP/s".into(), "—".into(), format!("{bias_gelu_gflops:.2}")],
            vec!["nn.forward p50 µs".into(), "—".into(), forward.p50().to_string()],
            vec!["nn.forward p99 µs".into(), "—".into(), forward.p99().to_string()],
        ],
    );

    let json = format!(
        "{{\n  \"experiment\": \"exp_bench\",\n  \"mode\": \"{mode}\",\n  \
         \"tables\": {tables},\n  \"columns\": {cols},\n  \
         \"scalar_tables_per_s\": {scalar_tables_per_s:.2},\n  \
         \"fast_tables_per_s\": {fast_tables_per_s:.2},\n  \
         \"scalar_cols_per_s\": {scalar_cols_per_s:.2},\n  \
         \"fast_cols_per_s\": {fast_cols_per_s:.2},\n  \
         \"speedup\": {speedup:.3},\n  \"speedup_floor\": {floor:.1},\n  \
         \"annotate_col_p50_us\": {col_p50},\n  \"annotate_col_p99_us\": {col_p99},\n  \
         \"train_steps_per_s\": {train_steps_per_s:.3},\n  \
         \"gemm_gflops\": {gemm_gflops:.3},\n  \"softmax_gflops\": {softmax_gflops:.3},\n  \
         \"layer_norm_gflops\": {layer_norm_gflops:.3},\n  \
         \"bias_gelu_gflops\": {bias_gelu_gflops:.3},\n  \
         \"nn_forward_p50_us\": {fp50},\n  \"nn_forward_p99_us\": {fp99}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        tables = prep.len(),
        cols = n_cols,
        fp50 = forward.p50(),
        fp99 = forward.p99(),
    );
    let out_path = if smoke {
        std::fs::create_dir_all("results").expect("create results/");
        std::path::PathBuf::from("results/BENCH_kernels.json")
    } else {
        std::path::PathBuf::from("BENCH_kernels.json")
    };
    std::fs::write(&out_path, &json).expect("write BENCH_kernels.json");
    eprintln!("[bench] wrote {}", out_path.display());

    assert!(
        speedup >= floor,
        "kernel speedup {speedup:.2}× is below the {floor:.1}× floor — the fast path \
         regressed against the scalar baseline"
    );
    eprintln!("OK: parity holds, speedup {speedup:.2}× ≥ {floor:.1}× floor");
}
