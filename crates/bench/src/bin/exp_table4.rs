//! Table IV — accuracy on the test subset with **no extracted KG
//! information**, split into numeric and non-numeric columns (VizNet).
//!
//! Paper reference (Table IV):
//! ```text
//! Model      Numeric Acc   Non-numeric Acc
//! KGLink     97.04         90.92
//! HNN        44.05         18.37
//! TaBERT     96.57         90.27
//! Doduo      96.28         89.50
//! RECA       96.89         61.54
//! Sudowoodo  96.21         67.72
//! ```

use kglink_bench::{baseline_registry, no_linkage_test_subset, print_markdown, run_kglink, ExpEnv, Which};
use kglink_table::LabelId;

fn subset_accuracy(
    preds_truths: &[(Vec<LabelId>, Vec<LabelId>, Vec<bool>)],
) -> (f64, f64) {
    let mut num_ok = 0usize;
    let mut num_n = 0usize;
    let mut txt_ok = 0usize;
    let mut txt_n = 0usize;
    for (preds, truths, numeric) in preds_truths {
        for ((p, t), &is_num) in preds.iter().zip(truths).zip(numeric) {
            if is_num {
                num_n += 1;
                num_ok += usize::from(p == t);
            } else {
                txt_n += 1;
                txt_ok += usize::from(p == t);
            }
        }
    }
    (
        100.0 * num_ok as f64 / num_n.max(1) as f64,
        100.0 * txt_ok as f64 / txt_n.max(1) as f64,
    )
}

fn main() {
    let env = ExpEnv::load();
    let which = Which::VizNet;
    let dataset = &env.bench(which).dataset;
    let subset = no_linkage_test_subset(&env, dataset);
    let n_cols: usize = subset.iter().map(|&i| dataset.tables[i].n_cols()).sum();
    let n_numeric: usize = subset
        .iter()
        .map(|&i| {
            let t = &dataset.tables[i];
            (0..t.n_cols()).filter(|&c| t.is_numeric_column(c)).count()
        })
        .sum();
    eprintln!(
        "[subset] {} zero-linkage test tables, {} columns ({} numeric, {} non-numeric)",
        subset.len(),
        n_cols,
        n_numeric,
        n_cols - n_numeric
    );
    if subset.is_empty() {
        println!("No zero-linkage test tables in this configuration — rerun without KGLINK_FAST.");
        return;
    }

    let resources = env.resources();
    let benv = env.baseline_env(&resources, which);
    let mut rows = Vec::new();

    // KGLink first (paper order).
    {
        let (_, _, model) = run_kglink(&env, which, env.kglink_config(which), "KGLink");
        let data: Vec<_> = subset
            .iter()
            .map(|&i| {
                let t = &dataset.tables[i];
                let preds = model.annotate_request(&resources, kglink_core::req(t)).labels;
                let numeric: Vec<bool> = (0..t.n_cols()).map(|c| t.is_numeric_column(c)).collect();
                (preds, t.labels.clone(), numeric)
            })
            .collect();
        let (num, txt) = subset_accuracy(&data);
        rows.push(vec!["KGLink".to_string(), format!("{num:.2}"), format!("{txt:.2}")]);
    }
    for mut model in baseline_registry(&env, which) {
        if model.name() == "MTab" {
            continue; // the paper's Table IV covers learning-based models
        }
        model.fit(&benv, dataset);
        let data: Vec<_> = subset
            .iter()
            .map(|&i| {
                let t = &dataset.tables[i];
                let preds = model.predict_table(&benv, t);
                let numeric: Vec<bool> = (0..t.n_cols()).map(|c| t.is_numeric_column(c)).collect();
                (preds, t.labels.clone(), numeric)
            })
            .collect();
        let (num, txt) = subset_accuracy(&data);
        eprintln!("[run] {:<10} numeric {num:.2}  non-numeric {txt:.2}", model.name());
        rows.push(vec![model.name().to_string(), format!("{num:.2}"), format!("{txt:.2}")]);
    }
    print_markdown(
        "Table IV — accuracy on zero-KG-linkage test columns (measured, VizNet-like)",
        &["Model", "Numeric Acc", "Non-numeric Acc"],
        &rows,
    );
}
