//! §V-D qualitative evaluation — the classes whose accuracy improves most
//! when the column-type representation generation task is added (KGLink vs
//! KGLink w/o msk).
//!
//! Paper reference: on SemTab the top gainers are Athlete, Protein, Film
//! (avg +9.70); on VizNet they are Artist, Year, Rank (avg +3.18) — classes
//! that suffer from the type granularity gap or are numeric.

use kglink_bench::{print_markdown, run_kglink, ExpEnv, Which};
use kglink_core::Preprocessor;
use kglink_table::{per_class_report, LabelId, Split};

fn main() {
    let env = ExpEnv::load();
    let resources = env.resources();
    let mut rows = Vec::new();
    for which in [Which::SemTab, Which::VizNet] {
        let dataset = &env.bench(which).dataset;
        // The paper uses >10 (SemTab) / >100 (VizNet) test samples; scaled
        // to this reproduction's test-split sizes.
        let min_support = if which == Which::SemTab { 3 } else { 20 };
        let (_, _, full) = run_kglink(&env, which, env.kglink_config(which), "KGLink");
        let (_, _, nomask) = run_kglink(
            &env,
            which,
            env.kglink_config(which).without_mask_task(),
            "KGLink w/o msk",
        );
        // Per-class recall on the test split for both variants.
        let pre = Preprocessor::new(resources.graph, resources.backend, env.kglink_config(which));
        let processed: Vec<_> = dataset
            .tables_in(Split::Test)
            .flat_map(|t| pre.process(t))
            .collect();
        let truths: Vec<LabelId> = processed.iter().flat_map(|p| p.labels.clone()).collect();
        let collect = |model: &kglink_core::KgLink| -> Vec<LabelId> {
            model
                .predict_processed(&resources, &processed)
                .into_iter()
                .flatten()
                .collect()
        };
        let full_preds = collect(&full);
        let nomask_preds = collect(&nomask);
        let full_report = per_class_report(&full_preds, &truths);
        let nomask_report = per_class_report(&nomask_preds, &truths);
        let mut gains: Vec<(LabelId, f64, usize)> = full_report
            .iter()
            .filter_map(|(&l, r)| {
                let base = nomask_report.get(&l)?;
                (r.support >= min_support)
                    .then_some((l, 100.0 * (r.recall - base.recall), r.support))
            })
            .collect();
        gains.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for (l, gain, support) in gains.into_iter().take(3) {
            rows.push(vec![
                which.name().to_string(),
                dataset.labels.name(l).to_string(),
                format!("{gain:+.2}"),
                support.to_string(),
            ]);
        }
    }
    print_markdown(
        "§V-D — top classes improved by the representation-generation task (measured)",
        &["Dataset", "Class", "Δ accuracy (pp)", "Test support"],
        &rows,
    );
}
