//! Table II — ablation study: KGLink w/o msk, w/o ct, w/o fv, larger PLM.
//!
//! Paper reference (Table II):
//! ```text
//! Variant          SemTab acc/wF1    VizNet acc/wF1
//! KGLink w/o msk   86.14 / 84.54     95.95 / 95.67
//! KGLink w/o ct    86.27 / 84.56     95.83 / 95.48
//! KGLink w/o fv    87.02 / 85.68     95.98 / 95.70
//! KGLink DeBERTa   87.24 / 85.81     96.98 / 96.37
//! KGLink           87.12 / 85.78     96.28 / 96.07
//! ```

use kglink_bench::{print_markdown, run_kglink, ExpEnv, Which};
use kglink_core::config::EncoderSize;

type ConfigTweak = Box<dyn Fn(kglink_core::KgLinkConfig) -> kglink_core::KgLinkConfig>;

fn main() {
    let env = ExpEnv::load();
    let variants: Vec<(&str, ConfigTweak)> = vec![
        ("KGLink w/o msk", Box::new(|c: kglink_core::KgLinkConfig| c.without_mask_task())),
        ("KGLink w/o ct", Box::new(|c: kglink_core::KgLinkConfig| c.without_kg())),
        ("KGLink w/o fv", Box::new(|c: kglink_core::KgLinkConfig| c.without_feature_vector())),
        (
            "KGLink large-PLM",
            Box::new(|mut c: kglink_core::KgLinkConfig| {
                c.encoder = EncoderSize::Large;
                c
            }),
        ),
        ("KGLink", Box::new(|c| c)),
    ];
    let mut rows = Vec::new();
    for (name, tweak) in &variants {
        let mut row = vec![name.to_string()];
        for which in [Which::SemTab, Which::VizNet] {
            let config = tweak(env.kglink_config(which));
            let (r, _, _) = run_kglink(&env, which, config, name);
            row.push(format!("{:.2}", r.summary.accuracy_pct()));
            row.push(format!("{:.2}", r.summary.weighted_f1_pct()));
        }
        rows.push(row);
    }
    print_markdown(
        "Table II — ablation study (measured)",
        &["Variant", "SemTab Acc", "SemTab wF1", "VizNet Acc", "VizNet wF1"],
        &rows,
    );
    println!(
        "Note: 'KGLink large-PLM' plays the role of the paper's DeBERTa row — a larger\n\
         encoder behind the same interface (no pre-trained DeBERTa exists in this environment)."
    );
}
