//! exp_scale: the disk-backed store at 10M+ entities.
//!
//! The paper links against WikiData (~100M entities); the in-memory
//! `KnowledgeGraph`/`InvertedIndex` stack caps our world orders of
//! magnitude below that. This experiment proves the `kglink-store` disk
//! stack closes the gap without changing observable behavior:
//!
//! 1. **Transparency** — on a small synthetic world, every `GraphAccess`
//!    method and every retrieval query through `DiskWorld` is
//!    bit-identical to the in-memory graph + `EntitySearcher`.
//! 2. **Typed failure** — a corrupted/truncated/foreign-version manifest
//!    refuses to open with a typed `StoreError`, never a panic.
//! 3. **Scale build** — `generate_big_world` streams a ≥10M-entity world
//!    (smoke: 150k) straight to segments in bounded memory; build
//!    throughput is the first headline number.
//! 4. **Read path** — random entity lookups and mention queries through
//!    the bounded block caches; p50/p99 latencies are the second headline.
//! 5. **Serving** — an `AnnotationService` runs end-to-end over
//!    `Arc<DiskGraph>` + `ResilientBackend<DiskBackend>` (+ the service's
//!    own `CachingBackend`), i.e. the production stack with only the
//!    storage layer swapped, against the big world.
//! 6. **Memory ceiling** — `VmHWM` must stay under a fixed budget that an
//!    in-memory 10M-entity world could not meet.
//!
//! Results land in `BENCH_scale.json` (repo root on full runs,
//! `results/` on `--smoke`) so later PRs have a perf trajectory to move.
//!
//! Knobs: `KGLINK_SCALE_ENTITIES` overrides the world size,
//! `KGLINK_SCALE_BUDGET_MB` the memory budget.

use kglink_bench::{print_markdown, ExpEnv, Which};
use kglink_datagen::{generate_big_world, BigWorldConfig};
use kglink_kg::{EntityId, GraphAccess, SyntheticWorld, WorldConfig};
use kglink_obs::Histogram;
use kglink_search::{EntitySearcher, ResilienceConfig, ResilientBackend};
use kglink_serve::{AdmissionPolicy, AnnotationService, ServiceConfig, SharedBackend};
use kglink_store::{
    write_graph, DiskBackend, DiskWorld, StoreError, WorldWriterConfig, MANIFEST_FILE,
};
use kglink_table::{CellValue, LabelId, Table, TableId};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn splitmix(seed: u64, v: u64) -> u64 {
    let mut z = seed ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Peak resident set (VmHWM) of this process, in MB.
fn vm_hwm_mb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb / 1024)
        .unwrap_or(0)
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Part 1: the disk world must be observationally identical to memory.
fn check_transparency(dir: &Path, seed: u64) {
    eprintln!("[scale] part 1: transparency vs in-memory world…");
    let world = SyntheticWorld::generate(&WorldConfig {
        seed: seed ^ 0x5ca1e,
        scale: 0.15,
        ..WorldConfig::default()
    });
    let g = &world.graph;
    write_graph(
        dir,
        g,
        WorldWriterConfig {
            per_shard: 512, // force many shards even on the small world
            ..WorldWriterConfig::default()
        },
    )
    .expect("write small world");
    let disk = DiskWorld::open(dir).expect("open small world");

    assert_eq!(disk.graph.entity_count(), g.len());
    for (id, entity) in g.entities() {
        let got = disk.graph.entity(id);
        assert_eq!(got.label, entity.label, "entity {id}");
        assert_eq!(got.aliases, entity.aliases, "entity {id}");
        assert_eq!(got.schema, entity.schema, "entity {id}");
        assert_eq!(disk.graph.one_hop(id), g.one_hop(id), "entity {id}");
        assert_eq!(
            disk.graph.one_hop_with_predicates(id),
            g.one_hop_with_predicates(id),
            "entity {id}"
        );
        assert_eq!(disk.graph.types_of(id), g.types_of(id), "entity {id}");
        assert_eq!(
            disk.graph.superclasses_of(id),
            g.superclasses_of(id),
            "entity {id}"
        );
    }

    let mem = EntitySearcher::build(g);
    let queries: Vec<String> = g
        .entities()
        .step_by(7)
        .map(|(_, e)| e.label.clone())
        .chain(["zzz no such entity".to_string()])
        .collect();
    for q in &queries {
        for k in [1usize, 5, 20] {
            let a = mem.link_mention(q, k);
            let b = disk.backend.try_search(q, k).expect("disk search");
            assert_eq!(a.len(), b.len(), "query {q:?} k {k}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.0, y.0, "query {q:?} k {k}");
                assert_eq!(
                    x.1.to_bits(),
                    y.1.to_bits(),
                    "query {q:?} k {k}: disk score diverged"
                );
            }
        }
    }
    assert_eq!(disk.graph.error_count(), 0);
    assert_eq!(disk.backend.error_count(), 0);
    eprintln!(
        "[scale] part 1 OK: {} entities, {} queries × 3 k-values bit-identical",
        g.len(),
        queries.len()
    );
}

/// Part 2: damaged worlds fail typed, and recover when restored.
fn check_typed_failure(dir: &Path) {
    eprintln!("[scale] part 2: corruption drill on the manifest…");
    let path = dir.join(MANIFEST_FILE);
    let orig = std::fs::read(&path).expect("manifest bytes");

    std::fs::write(&path, &orig[..10]).unwrap();
    assert!(matches!(
        DiskWorld::open(dir),
        Err(StoreError::Truncated)
    ));

    let mut bad = orig.clone();
    bad[0] = b'x';
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        DiskWorld::open(dir),
        Err(StoreError::BadMagic { .. })
    ));

    let mut bad = orig.clone();
    bad[4] = 99;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        DiskWorld::open(dir),
        Err(StoreError::WrongVersion { found: 99, .. })
    ));

    std::fs::write(&path, &orig).unwrap();
    assert!(DiskWorld::open(dir).is_ok());
    eprintln!("[scale] part 2 OK: truncated/foreign-magic/foreign-version all typed");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed: u64 = env_u64("KGLINK_SEED").unwrap_or(7);
    let n_entities = env_u64("KGLINK_SCALE_ENTITIES")
        .unwrap_or(if smoke { 150_000 } else { 10_000_000 });
    // Measured VmHWM: ~18 MB smoke, ~203 MB full. The budget leaves slack
    // for allocator/platform variance but sits far below what an in-memory
    // 10M-entity world would need (several GB) — the assert is meaningful.
    let budget_mb = env_u64("KGLINK_SCALE_BUDGET_MB")
        .unwrap_or(if smoke { 600 } else { 2_000 });
    let work = PathBuf::from("target/exp_scale");
    let _ = std::fs::create_dir_all(&work);

    // Parts 1–2: identity and typed failure on a small world.
    let small_dir = work.join("small");
    check_transparency(&small_dir, seed);
    check_typed_failure(&small_dir);

    // Part 3: stream the big world to disk.
    eprintln!("[scale] part 3: building {n_entities}-entity world on disk…");
    let big_dir = work.join(format!("world-{n_entities}"));
    let t0 = Instant::now();
    let bw = generate_big_world(
        &big_dir,
        &BigWorldConfig {
            n_entities,
            seed: seed ^ 0xb16,
            ..BigWorldConfig::default()
        },
        WorldWriterConfig {
            // Spill well before the default so the merge path runs even in
            // smoke, and builder memory stays bounded at 10M entities.
            spill_postings: if smoke { 200_000 } else { 2_000_000 },
            ..WorldWriterConfig::default()
        },
    )
    .expect("big world build");
    let build_s = t0.elapsed().as_secs_f64();
    let total = bw.manifest.n_entities;
    assert!(total >= n_entities, "generator must round up, not down");
    let world_bytes = dir_bytes(&big_dir);
    let build_rate = total as f64 / build_s;
    eprintln!(
        "[scale] built {total} entities in {build_s:.1}s ({:.0} entities/s, {:.1} MB on disk)",
        build_rate,
        world_bytes as f64 / 1e6
    );

    // Part 4: read-path latency through bounded caches (32 MB each — the
    // point is the world does NOT fit; the cache must absorb the re-reads).
    let disk = DiskWorld::open_with_caches(&big_dir, 32 << 20, 32 << 20)
        .expect("open big world");
    let n_lookups: u64 = if smoke { 20_000 } else { 100_000 };
    let mut lookup_ns = Histogram::new();
    let t0 = Instant::now();
    for i in 0..n_lookups {
        let id = EntityId((splitmix(seed ^ 0x100c, i) % total) as u32);
        let t = Instant::now();
        let rec = disk.graph.try_record(id).expect("lookup");
        lookup_ns.record(t.elapsed().as_nanos() as u64);
        assert!(!rec.entity.label.is_empty());
    }
    let lookup_wall = t0.elapsed().as_secs_f64();
    let n_queries: u64 = if smoke { 2_000 } else { 10_000 };
    let mut query_ns = Histogram::new();
    let t0 = Instant::now();
    for i in 0..n_queries {
        let q = &bw.mentions[(i as usize) % bw.mentions.len()];
        let t = Instant::now();
        let hits = disk.backend.try_search(q, 10).expect("query");
        query_ns.record(t.elapsed().as_nanos() as u64);
        assert!(!hits.is_empty(), "mention {q:?} must retrieve");
    }
    let query_wall = t0.elapsed().as_secs_f64();
    let gstats = disk.graph.cache_stats();
    let graph_hit_rate =
        gstats.hits as f64 / (gstats.hits + gstats.misses).max(1) as f64;
    let bstats = disk.backend.stats();
    eprintln!(
        "[scale] part 4: {n_lookups} lookups ({:.0}/s), {n_queries} queries ({:.0}/s); \
         graph cache hit rate {:.3}; block-max skipped {} docs / {} blocks",
        n_lookups as f64 / lookup_wall,
        n_queries as f64 / query_wall,
        graph_hit_rate,
        bstats.skipped_docs,
        bstats.skipped_blocks,
    );

    // Part 4b (ROADMAP item-2 follow-up): the block-max skip path must
    // actually fire, not just exist. The generator's skewed hub terms put
    // 16 high-tf hot docs in the first posting block of each `skewhub{f}`
    // list; once those fill the top-10 heap, every later (all-cold) block's
    // max is below the threshold and is skipped without being decoded.
    let blocks_before = bstats.skipped_blocks;
    for q in &bw.skew_queries {
        let hits = disk.backend.try_search(q, 10).expect("skew query");
        assert!(!hits.is_empty(), "skew term {q:?} must retrieve");
    }
    let bstats = disk.backend.stats();
    assert!(
        bstats.skipped_blocks > blocks_before,
        "skewed-term queries skipped no posting blocks \
         (before={blocks_before}, after={}) — block-max skipping went dead",
        bstats.skipped_blocks
    );
    eprintln!(
        "[scale] part 4b OK: {} skew queries skipped {} whole blocks",
        bw.skew_queries.len(),
        bstats.skipped_blocks - blocks_before
    );

    // Part 5: the production serving stack over the disk world. The model
    // is trained on the small benchmark (accuracy is not the point here);
    // the service's graph + retrieval seams both point at the 10M world.
    eprintln!("[scale] part 5: AnnotationService over the disk stack…");
    let env = ExpEnv::load();
    let mut config = env.kglink_config(Which::SemTab);
    config.epochs = config.epochs.min(2);
    let dataset = &env.bench(Which::SemTab).dataset;
    let (model, _) = kglink_core::KgLink::fit(&env.resources(), dataset, config);

    let disk_backend =
        Arc::new(DiskBackend::open_with_cache(&big_dir, 32 << 20).expect("service backend"));
    let backend: SharedBackend = Arc::new(ResilientBackend::new(
        Arc::clone(&disk_backend),
        ResilienceConfig::default(),
    ));
    let mut service = AnnotationService::new(
        Arc::new(model),
        Arc::clone(&disk.graph) as Arc<dyn GraphAccess>,
        backend,
        Arc::new(env.tokenizer.clone()),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 2,
            admission: AdmissionPolicy::Block,
            cache: Some(Default::default()),
            ..ServiceConfig::default()
        },
    );
    let n_tables = if smoke { 8 } else { 24 };
    let tables: Vec<Table> = (0..n_tables)
        .map(|t| {
            let cols: Vec<Vec<CellValue>> = (0..2)
                .map(|c| {
                    (0..6)
                        .map(|r| {
                            let m = &bw.mentions
                                [(t * 12 + c * 6 + r) % bw.mentions.len()];
                            CellValue::Text(m.clone())
                        })
                        .collect()
                })
                .collect();
            Table::new(
                TableId(t as u32),
                Vec::new(),
                cols,
                vec![LabelId(0); 2],
            )
        })
        .collect();
    let tickets = service.submit_batch(tables.iter().cloned());
    let mut annotated_cols = 0usize;
    for t in tickets {
        let a = t
            .expect("Block admission never rejects")
            .wait()
            .expect("service survives the big world");
        assert!(!a.expired);
        annotated_cols += a.labels.len();
    }
    let metrics = service.metrics();
    service.shutdown();
    assert_eq!(annotated_cols, n_tables * 2);
    assert_eq!(disk.graph.error_count(), 0, "graph reads stayed clean");
    assert_eq!(disk_backend.error_count(), 0, "retrieval stayed clean");
    eprintln!(
        "[scale] part 5 OK: {n_tables} tables annotated; service p50 {}us p99 {}us",
        metrics.latency_p50_us, metrics.latency_p99_us
    );

    // Part 6: memory ceiling.
    let hwm = vm_hwm_mb();
    eprintln!("[scale] part 6: VmHWM {hwm} MB (budget {budget_mb} MB)");
    assert!(
        hwm <= budget_mb,
        "peak resident {hwm} MB blew the {budget_mb} MB budget — the disk \
         stack must not pull the world into memory"
    );

    print_markdown(
        &format!("exp_scale — {total} entities on disk ({})", if smoke { "smoke" } else { "full" }),
        &["metric", "value"],
        &[
            vec!["entities".into(), total.to_string()],
            vec!["build s".into(), format!("{build_s:.1}")],
            vec!["build entities/s".into(), format!("{build_rate:.0}")],
            vec!["world MB on disk".into(), format!("{:.1}", world_bytes as f64 / 1e6)],
            vec!["lookup p50 µs".into(), format!("{:.1}", lookup_ns.p50() as f64 / 1e3)],
            vec!["lookup p99 µs".into(), format!("{:.1}", lookup_ns.p99() as f64 / 1e3)],
            vec!["query p50 µs".into(), format!("{:.1}", query_ns.p50() as f64 / 1e3)],
            vec!["query p99 µs".into(), format!("{:.1}", query_ns.p99() as f64 / 1e3)],
            vec!["graph cache hit rate".into(), format!("{graph_hit_rate:.3}")],
            vec!["VmHWM MB".into(), hwm.to_string()],
        ],
    );

    let json = format!(
        "{{\n  \"experiment\": \"exp_scale\",\n  \"mode\": \"{mode}\",\n  \
         \"n_entities\": {total},\n  \"world_bytes\": {world_bytes},\n  \
         \"build_seconds\": {build_s:.3},\n  \"build_entities_per_s\": {build_rate:.1},\n  \
         \"lookup_p50_ns\": {lp50},\n  \"lookup_p99_ns\": {lp99},\n  \
         \"query_p50_ns\": {qp50},\n  \"query_p99_ns\": {qp99},\n  \
         \"graph_cache_hit_rate\": {ghr:.4},\n  \
         \"bm25_skipped_docs\": {skd},\n  \"bm25_skipped_blocks\": {skb},\n  \
         \"service_p50_us\": {sp50},\n  \"service_p99_us\": {sp99},\n  \
         \"vmhwm_mb\": {hwm},\n  \"budget_mb\": {budget_mb}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        lp50 = lookup_ns.p50(),
        lp99 = lookup_ns.p99(),
        qp50 = query_ns.p50(),
        qp99 = query_ns.p99(),
        ghr = graph_hit_rate,
        skd = bstats.skipped_docs,
        skb = bstats.skipped_blocks,
        sp50 = metrics.latency_p50_us,
        sp99 = metrics.latency_p99_us,
    );
    let out = if smoke {
        std::fs::create_dir_all("results").expect("create results/");
        PathBuf::from("results/BENCH_scale.json")
    } else {
        PathBuf::from("BENCH_scale.json")
    };
    std::fs::write(&out, &json).expect("write BENCH_scale.json");
    eprintln!("[scale] wrote {}", out.display());
}
