//! Figure 7 — end-to-end runtime of every method on the VizNet-like
//! benchmark (fit + predict wall-clock).
//!
//! The paper's Figure 7 is a bar chart of total runtime on VizNet; the
//! reported shape is that KGLink stays in the same order of magnitude as
//! the other PLM methods while RECA's inter-table search grows fastest
//! (the paper stresses KGLink's linear complexity vs. RECA's table-count
//! sensitivity).

use kglink_bench::{baseline_registry, print_markdown, run_baseline, run_kglink, ExpEnv, Which};

fn main() {
    let env = ExpEnv::load();
    let which = Which::VizNet;
    let mut rows = Vec::new();
    for mut model in baseline_registry(&env, which) {
        let r = run_baseline(&env, model.as_mut(), which);
        rows.push(vec![
            r.model,
            format!("{:.1}", r.fit_seconds),
            format!("{:.1}", r.predict_seconds),
            format!("{:.1}", r.fit_seconds + r.predict_seconds),
        ]);
    }
    let (r, _, _) = run_kglink(&env, which, env.kglink_config(which), "KGLink");
    rows.push(vec![
        r.model,
        format!("{:.1}", r.fit_seconds),
        format!("{:.1}", r.predict_seconds),
        format!("{:.1}", r.fit_seconds + r.predict_seconds),
    ]);
    print_markdown(
        "Figure 7 — runtime on VizNet-like (measured, seconds)",
        &["Model", "Fit (s)", "Predict (s)", "Total (s)"],
        &rows,
    );
}
