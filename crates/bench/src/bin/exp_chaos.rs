//! Chaos experiment — KGLink accuracy/weighted-F1 as the KG retrieval
//! backend degrades (not a paper table; exercises the resilience layer).
//!
//! For each injected fault rate the full pipeline (fit *and* evaluate) runs
//! against `ResilientBackend(FaultyBackend(EntitySearcher))`. Columns whose
//! retrieval ultimately fails degrade to the paper's no-linkage path
//! (Table IV), so the expected curve interpolates between fault-free KGLink
//! and the `KGLink w/o ct` ablation floor — it never falls below a model
//! that had no KG to begin with, and a 100% outage must not panic.

use kglink_bench::{print_markdown, run_kglink, run_kglink_on, ExpEnv, Which};
use kglink_core::{DegradationStats, Preprocessor, RowFilter};
use kglink_search::{FaultConfig, FaultyBackend, ResilienceConfig, ResilientBackend};
use kglink_table::Split;

/// Tolerance, in weighted-F1 percentage points, for the endpoint checks.
const EPS: f64 = 0.5;

fn main() {
    let env = ExpEnv::load();
    let which = Which::SemTab;
    let dataset = &env.bench(which).dataset;
    let base = env.kglink_config(which);

    // Floor: the w/o-KG ablation on a healthy backend. RowFilter::Original
    // mirrors the fully-degraded run, where all-zero link scores make the
    // link-score sort collapse to original row order.
    let mut floor_cfg = base.clone().without_kg();
    floor_cfg.row_filter = RowFilter::Original;
    let (floor_run, _, _) = run_kglink(&env, which, floor_cfg, "w/o KG");
    let floor_wf1 = floor_run.summary.weighted_f1_pct();

    let rates = [0.0, 0.1, 0.25, 0.5, 1.0];
    let mut rows = Vec::new();
    let mut wf1_curve = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let faulty = FaultyBackend::new(
            &env.searcher,
            FaultConfig::with_fault_rate(env.seed ^ (0x70 + i as u64), rate),
        );
        let resilient = ResilientBackend::new(&faulty, ResilienceConfig::default());
        let resources = env.resources_with(&resilient);
        let label = format!("chaos {rate:.2}");
        let (run, _, _) = run_kglink_on(&env, &resources, which, base.clone(), &label);

        // Degradation accounting: re-preprocess the test split through the
        // same backend; the decorator's counters are cumulative over the
        // whole run (fit + evaluate + this pass).
        let pre = Preprocessor::new(&env.world.graph, &resilient, base.clone());
        let processed: Vec<_> = dataset
            .tables_in(Split::Test)
            .flat_map(|t| pre.process(t))
            .collect();
        let stats = DegradationStats::from_processed(&processed).with_backend(&resilient.metrics());
        eprintln!(
            "[chaos] rate {rate:.2}: degraded {}/{} columns, {} failed cells, {} retries, {} trips, {} rejections, p50 {}us p99 {}us",
            stats.degraded_columns,
            stats.total_columns,
            stats.failed_cells,
            stats.retries,
            stats.breaker_trips,
            stats.breaker_rejections,
            stats.retrieval_p50_us,
            stats.retrieval_p99_us
        );
        wf1_curve.push(run.summary.weighted_f1_pct());
        rows.push(vec![
            format!("{rate:.2}"),
            format!("{:.2}", run.summary.accuracy_pct()),
            format!("{:.2}", run.summary.weighted_f1_pct()),
            format!("{:.1}", 100.0 * stats.degraded_fraction()),
            stats.retries.to_string(),
            stats.breaker_trips.to_string(),
            format!("{}/{}", stats.retrieval_p50_us, stats.retrieval_p99_us),
        ]);
    }
    rows.push(vec![
        "w/o KG".into(),
        format!("{:.2}", floor_run.summary.accuracy_pct()),
        format!("{floor_wf1:.2}"),
        "—".into(),
        "—".into(),
        "—".into(),
        "—".into(),
    ]);
    print_markdown(
        "Chaos — KGLink under injected KG-retrieval faults (SemTab-like)",
        &[
            "Fault rate",
            "Accuracy",
            "Weighted F1",
            "Degraded cols %",
            "Retries",
            "Breaker trips",
            "p50/p99 us",
        ],
        &rows,
    );

    // Endpoint sanity: full outage degrades to (not below) the no-KG floor,
    // and never beats the best healthy reference. In under-trained smoke
    // runs (KGLINK_FAST) the fault-free model can land below the floor —
    // the upper bound therefore compares against max(clean, floor), which
    // is the fault-free run whenever the KG actually helps.
    let wf1_clean = wf1_curve[0];
    let wf1_outage = *wf1_curve.last().unwrap();
    if wf1_outage + EPS < floor_wf1 {
        eprintln!(
            "FAIL: wF1 under full outage ({wf1_outage:.2}) fell below the w/o-KG floor ({floor_wf1:.2})"
        );
        std::process::exit(1);
    }
    let ceiling = wf1_clean.max(floor_wf1);
    if wf1_outage > ceiling + EPS {
        eprintln!(
            "FAIL: wF1 under full outage ({wf1_outage:.2}) exceeds the healthy ceiling ({ceiling:.2})"
        );
        std::process::exit(1);
    }
    eprintln!(
        "[chaos] endpoints OK: ceiling {ceiling:.2} ≥ outage {wf1_outage:.2} ≥ floor {floor_wf1:.2} (±{EPS})"
    );
}
