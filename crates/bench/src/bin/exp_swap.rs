//! exp_swap: zero-downtime model lifecycle experiment.
//!
//! Publishes two trained model generations ("baseline" and "retrained")
//! through the versioned [`ModelRegistry`], then drives an open-loop
//! request stream against an [`AnnotationService`] while hot-swapping
//! between them, and checks the lifecycle contract end-to-end:
//!
//! 1. **Zero dropped / torn tickets** — across ≥3 live swaps under load,
//!    every submitted request completes successfully, and every
//!    annotation's recorded `model_version` replays bit-identically
//!    against that exact version's model single-threaded. A request
//!    served "half by each model" would fail the replay and count as
//!    torn.
//! 2. **Bad candidates never reach traffic unguarded** — a
//!    corrupted-on-disk checkpoint and a NaN-poisoned publish are caught
//!    by the registry at load (prepare stage) and quarantined; an
//!    accuracy-cliff candidate (untrained weights) is rejected at
//!    prepare by the probe gate, at shadow by the live-traffic gate, and
//!    — when both gates are deliberately loosened — promoted and then
//!    rolled back by the watch-phase divergence guard, all without a
//!    single failed request.
//! 3. **Fail-closed rollback budget** — once the watch guard has spent
//!    the configured rollback budget, further swap attempts are refused
//!    with `RollbackBudgetExhausted` while the last-known-good epoch
//!    keeps serving.
//! 4. **Bounded interference** — end-to-end p99 over the whole run
//!    (shadow duplication, probes, swaps and all) stays within a
//!    generous factor of the pre-swap warmup p99.
//!
//! Results land in `BENCH_swap.json` (repo root on full runs,
//! `results/` on `--smoke`) so later PRs have a swap-latency and
//! shadow-overhead trajectory to move.

use kglink_bench::{print_markdown, ExpEnv, Which};
use kglink_core::{KgLink, KgLinkModel};
use kglink_nn::layers::param::HasParams;
use kglink_registry::{ModelRegistry, RegistryError};
use kglink_search::{Deadline, EntitySearcher};
use kglink_serve::{
    AdmissionPolicy, Annotation, AnnotationService, ServiceConfig, SharedBackend, SwapError,
    SwapPhase, SwapPlan, SwapReport,
};
use kglink_table::{LabelId, Split, Table};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Synthetic version id for the accuracy-cliff candidate; never published,
/// handed straight to `swap_model` (registry versions and serving version
/// ids share a namespace by convention, not by force).
const CLIFF_VERSION: u64 = 99;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let env = ExpEnv::load();
    let dataset = &env.bench(Which::VizNet).dataset;

    // ---- two model generations: baseline and retrained ----
    let mut config_a = env.kglink_config(Which::VizNet);
    if smoke {
        config_a.epochs = config_a.epochs.min(2);
    }
    let mut config_b = config_a.clone();
    config_b.seed ^= 0x5eed; // retrained generation: same data, new init
    eprintln!("[swap] training baseline + retrained generations…");
    let t0 = Instant::now();
    let (mut gen_a, _) = KgLink::fit(&env.resources(), dataset, config_a);
    let (mut gen_b, _) = KgLink::fit(&env.resources(), dataset, config_b);
    eprintln!("[swap] trained both in {:.1}s", t0.elapsed().as_secs_f64());

    // ---- publish both through the registry, then serve what it loads ----
    let work = PathBuf::from("target/exp_swap");
    let _ = std::fs::remove_dir_all(&work);
    let registry = ModelRegistry::open(work.join("registry")).expect("open registry");
    let vocab = env.tokenizer.vocab.len();
    let pub_a = registry
        .publish(&mut gen_a, vocab, "baseline")
        .expect("publish baseline");
    let pub_b = registry
        .publish(&mut gen_b, vocab, "retrained")
        .expect("publish retrained");
    assert_eq!((pub_a.version, pub_b.version), (1, 2));
    drop((gen_a, gen_b)); // serve the registry round-trip, not the originals
    let loaded_a = registry.load(1).expect("load v1");
    let loaded_b = registry.load(2).expect("load v2");
    assert_eq!(loaded_a.tag, "baseline");
    assert_eq!(loaded_b.tag, "retrained");
    let model_a = Arc::new(loaded_a.model);
    let model_b = Arc::new(loaded_b.model);

    // The accuracy-cliff candidate: the trained label space and config,
    // but freshly initialized (never trained) weights.
    let cliff = Arc::new(KgLink {
        config: model_b.config.clone(),
        model: KgLinkModel::new(&model_b.config, vocab, model_b.labels.len()),
        labels: model_b.labels.clone(),
    });

    // ---- workload and per-version offline references ----
    let test_tables: Vec<Table> = dataset
        .tables_in(Split::Test)
        .take(if smoke { 6 } else { 12 })
        .cloned()
        .collect();
    let reference: BTreeMap<u64, Vec<Vec<LabelId>>> = [
        (1u64, model_a.as_ref()),
        (2u64, model_b.as_ref()),
        (CLIFF_VERSION, cliff.as_ref()),
    ]
    .into_iter()
    .map(|(v, m)| {
        let labels = test_tables
            .iter()
            .map(|t| m.annotate_request(&env.resources(), kglink_core::req(t)).labels)
            .collect();
        (v, labels)
    })
    .collect();

    // ---- the service, started on the registry's v1 ----
    let graph: Arc<dyn kglink_kg::GraphAccess> = Arc::new(env.world.graph.clone());
    let tokenizer = Arc::new(env.tokenizer.clone());
    let backend: SharedBackend = Arc::new(EntitySearcher::build(&env.world.graph));
    let mut service = AnnotationService::new(
        Arc::clone(&model_a),
        graph,
        backend,
        tokenizer,
        ServiceConfig {
            workers: if smoke { 2 } else { 4 },
            queue_capacity: 64,
            max_batch: 2,
            admission: AdmissionPolicy::Block,
            default_deadline: Deadline::UNBOUNDED,
            cache: None,
            sim_col_cost_us: 500,
            initial_version: 1,
            rollback_budget: 1,
            ..ServiceConfig::default()
        },
    );
    assert_eq!(service.model_version(), 1);

    let min_shadow: u64 = if smoke { 6 } else { 16 };
    let good_plan = SwapPlan {
        probe_tables: test_tables[..3.min(test_tables.len())].to_vec(),
        // A retrained generation legitimately differs from the baseline:
        // divergence gates are open for planned swaps, strict for guards.
        prepare_max_flip_rate: 1.0,
        shadow_sample_every: 1,
        shadow_min_requests: min_shadow,
        shadow_max_flip_rate: 1.0,
        watch_sample_every: 1,
        watch_min_requests: min_shadow,
        watch_max_flip_rate: 1.0,
        watch_max_p99_inflation: 0.0,
        phase_timeout: Duration::from_secs(60),
    };

    // ---- open-loop load: feeder submits, collector redeems, forever ----
    let stop = AtomicBool::new(false);
    let results: Mutex<Vec<(usize, Annotation)>> = Mutex::new(Vec::new());
    let mut reports: Vec<SwapReport> = Vec::new();
    let mut p99_base: Option<u64> = None;
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, kglink_serve::Ticket)>();
        let service_ref = &service;
        let stop_ref = &stop;
        let tables_ref = &test_tables;
        s.spawn(move || {
            let mut i = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                let idx = i % tables_ref.len();
                let ticket = service_ref
                    .submit(tables_ref[idx].clone())
                    .expect("Block admission never rejects");
                tx.send((idx, ticket)).expect("collector alive");
                i += 1;
                std::thread::sleep(Duration::from_micros(300));
            }
        });
        let results_ref = &results;
        s.spawn(move || {
            // Redeeming every ticket is itself the hung-ticket check: a
            // request the service lost would park this thread forever and
            // the experiment would time out rather than pass.
            for (idx, ticket) in rx {
                let annotation = ticket.wait().expect("no request fails during swaps");
                results_ref.lock().unwrap().push((idx, annotation));
            }
        });

        // ---- warmup: a pre-swap latency baseline ----
        let warm_target = if smoke { 20 } else { 60 };
        while service.metrics().completed < warm_target {
            std::thread::sleep(Duration::from_millis(5));
        }
        let p99_base_us = service.metrics().latency_p99_us;
        eprintln!("[swap] warmup p99 = {p99_base_us}us; starting swaps");

        // ---- ≥3 good swaps under live load ----
        for (version, model) in [(2, &model_b), (1, &model_a), (2, &model_b)] {
            let report = service
                .swap_model(version, Arc::clone(model), &good_plan)
                .expect("planned swap succeeds");
            assert_eq!(service.model_version(), version);
            assert_eq!(report.to_version, version);
            assert!(
                report.shadow_compared >= min_shadow && report.watch_compared >= min_shadow,
                "shadow/watch phases must see live traffic"
            );
            assert!(
                report.promote_us < 250_000,
                "promotion is an epoch pointer bump, not a pause (took {}us)",
                report.promote_us
            );
            eprintln!(
                "[swap] v{} → v{}: shadow {}/{} flips, watch {}/{} flips, promote {}us",
                report.from_version,
                report.to_version,
                report.shadow_flips,
                report.shadow_compared,
                report.watch_flips,
                report.watch_compared,
                report.promote_us
            );
            reports.push(report);
        }
        let m = service.metrics();
        assert_eq!(m.swaps, 3, "three promotions recorded");
        assert_eq!(m.rollbacks, 0);
        assert_eq!(service.model_version(), 2);

        // ---- bad candidate 1: corrupted checkpoint, caught at load ----
        let mut junk = registry.load(2).expect("reload v2");
        let pub_c = registry
            .publish(&mut junk.model, vocab, "corrupt-me")
            .expect("publish victim");
        let weights = pub_c.dir.join("weights.kgck");
        let mut bytes = std::fs::read(&weights).expect("read weights");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&weights, &bytes).expect("corrupt weights");
        let err = match registry.load_or_quarantine(pub_c.version) {
            Ok(_) => panic!("corrupted checkpoint must not load"),
            Err(e) => e,
        };
        assert!(err.is_corruption(), "typed corruption error: {err}");
        assert!(
            !registry.list().contains(&pub_c.version),
            "corrupt version is quarantined, not listed"
        );
        eprintln!("[swap] corrupt candidate caught at prepare: {err}");

        // ---- bad candidate 2: NaN-poisoned weights, caught at load ----
        let mut poisoned = registry.load(2).expect("reload v2");
        let mut first = true;
        poisoned.model.model.visit_params(&mut |p| {
            if first {
                p.value.data_mut()[0] = f32::NAN;
                first = false;
            }
        });
        let pub_n = registry
            .publish(&mut poisoned.model, vocab, "poisoned")
            .expect("publish poisoned");
        let err = match registry.load_or_quarantine(pub_n.version) {
            Ok(_) => panic!("NaN-poisoned weights must not load"),
            Err(e) => e,
        };
        assert!(
            matches!(err, RegistryError::NonFiniteWeights { .. }),
            "expected NonFiniteWeights, got {err}"
        );
        eprintln!("[swap] NaN-poisoned candidate caught at prepare: {err}");

        // ---- bad candidate 3: accuracy cliff through each gate ----
        // (a) the prepare probe gate rejects it outright;
        let strict_prepare = SwapPlan {
            prepare_max_flip_rate: 0.05,
            ..good_plan.clone()
        };
        match service.swap_model(CLIFF_VERSION, Arc::clone(&cliff), &strict_prepare) {
            Err(SwapError::Rejected { phase: SwapPhase::Prepare, reason }) => {
                eprintln!("[swap] cliff rejected at prepare: {reason}");
            }
            other => panic!("cliff must be rejected at prepare, got {other:?}"),
        }
        // (b) with the probe gate open, the shadow gate rejects it on
        // live traffic before it ever serves a user;
        let strict_shadow = SwapPlan {
            shadow_max_flip_rate: 0.05,
            ..good_plan.clone()
        };
        match service.swap_model(CLIFF_VERSION, Arc::clone(&cliff), &strict_shadow) {
            Err(SwapError::Rejected { phase: SwapPhase::Shadow, reason }) => {
                eprintln!("[swap] cliff rejected at shadow: {reason}");
            }
            other => panic!("cliff must be rejected at shadow, got {other:?}"),
        }
        assert_eq!(service.model_version(), 2, "rejections never touch the epoch");
        // (c) with prepare and shadow both open, it is promoted — and the
        // watch-phase divergence guard rolls it back automatically.
        let strict_watch = SwapPlan {
            watch_max_flip_rate: 0.05,
            ..good_plan.clone()
        };
        match service.swap_model(CLIFF_VERSION, Arc::clone(&cliff), &strict_watch) {
            Err(SwapError::RolledBack { reason }) => {
                eprintln!("[swap] cliff promoted then rolled back: {reason}");
            }
            other => panic!("cliff must be rolled back from watch, got {other:?}"),
        }
        assert_eq!(service.model_version(), 2, "rollback reinstalls the prior epoch");
        let m = service.metrics();
        assert_eq!(m.rollbacks, 1);

        // ---- fail-closed: the rollback budget (1) is now spent ----
        match service.swap_model(2, Arc::clone(&model_b), &good_plan) {
            Err(SwapError::RollbackBudgetExhausted { budget }) => {
                assert_eq!(budget, 1);
            }
            other => panic!("expected RollbackBudgetExhausted, got {other:?}"),
        }
        // …and the last-known-good epoch keeps serving.
        let live = service
            .submit(test_tables[0].clone())
            .expect("still admitting")
            .wait()
            .expect("still serving after budget exhaustion");
        assert_eq!(live.model_version, 2);
        assert_eq!(live.labels, reference[&2][0]);

        p99_base = Some(p99_base_us);
        stop.store(true, Ordering::Relaxed);
    });

    // ---- every ticket completed; none torn ----
    let results = results.into_inner().unwrap();
    let metrics = service.metrics();
    assert_eq!(
        metrics.completed,
        results.len() as u64 + 1,
        "every submitted request completed (the +1 is the liveness probe)"
    );
    assert!(metrics.failed_cells == 0, "healthy backend never fails cells");
    assert!(metrics.worker_panics == 0, "no worker died during swaps");
    let mut served_by: BTreeMap<u64, u64> = BTreeMap::new();
    for (idx, annotation) in &results {
        let v = annotation.model_version;
        let expect = reference
            .get(&v)
            .unwrap_or_else(|| panic!("request served by unknown version {v}"));
        assert_eq!(
            &annotation.labels, &expect[*idx],
            "torn ticket: table {idx} served under v{v} diverges from that \
             version's single-threaded replay"
        );
        assert!(!annotation.expired);
        *served_by.entry(v).or_insert(0) += 1;
    }
    assert!(served_by.get(&1).copied().unwrap_or(0) > 0, "v1 served traffic");
    assert!(served_by.get(&2).copied().unwrap_or(0) > 0, "v2 served traffic");
    let stats = service.version_stats();
    for (&v, &n) in &served_by {
        let st = &stats[&v];
        assert!(
            st.served >= n,
            "version_stats undercounts v{v}: {} < {n}",
            st.served
        );
    }

    // ---- bounded interference ----
    let p99_base_us = p99_base.expect("swap phase ran");
    let p99_swap_us = metrics.latency_p99_us;
    assert!(
        p99_swap_us <= p99_base_us * 20 + 50_000,
        "p99 during swaps ({p99_swap_us}us) blew past the warmup baseline \
         ({p99_base_us}us) by more than the generous interference budget"
    );

    let last = reports.last().expect("three reports");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                format!("v{}→v{}", r.from_version, r.to_version),
                r.shadow_compared.to_string(),
                format!("{:.3}", flip_rate(r.shadow_flips, r.shadow_compared)),
                r.shadow_p99_us.to_string(),
                r.shadow_baseline_p99_us.to_string(),
                r.watch_compared.to_string(),
                r.promote_us.to_string(),
            ]
        })
        .collect();
    print_markdown(
        &format!(
            "Zero-downtime swaps on {} ({} live requests, {} versions served, p99 {}us vs warmup {}us)",
            Which::VizNet.name(),
            results.len(),
            served_by.len(),
            p99_swap_us,
            p99_base_us,
        ),
        &[
            "swap",
            "shadow n",
            "flip rate",
            "shadow p99 us",
            "primary p99 us",
            "watch n",
            "promote us",
        ],
        &rows,
    );

    let promote_max = reports.iter().map(|r| r.promote_us).max().unwrap_or(0);
    // `metrics.swaps` counts every promotion, including the cliff
    // candidate's (promoted, then rolled back by the watch guard).
    let json = format!(
        "{{\n  \"experiment\": \"swap\",\n  \"mode\": \"{}\",\n  \"requests\": {},\n  \
         \"good_swaps\": {},\n  \"promotions\": {},\n  \"rollbacks\": {},\n  \
         \"promote_us_max\": {},\n  \
         \"shadow_p99_us\": {},\n  \"shadow_baseline_p99_us\": {},\n  \
         \"p99_warmup_us\": {},\n  \"p99_overall_us\": {},\n  \"versions_served\": {:?}\n}}\n",
        if smoke { "smoke" } else { "full" },
        results.len(),
        reports.len(),
        metrics.swaps,
        metrics.rollbacks,
        promote_max,
        last.shadow_p99_us,
        last.shadow_baseline_p99_us,
        p99_base_us,
        p99_swap_us,
        served_by.keys().collect::<Vec<_>>(),
    );
    let out = if smoke {
        std::fs::create_dir_all("results").expect("create results/");
        PathBuf::from("results/BENCH_swap.json")
    } else {
        PathBuf::from("BENCH_swap.json")
    };
    std::fs::write(&out, &json).expect("write BENCH_swap.json");
    eprintln!("[swap] wrote {}", out.display());

    service.shutdown();
    println!("exp_swap: all assertions passed");
}

fn flip_rate(flips: u64, compared: u64) -> f64 {
    if compared == 0 {
        0.0
    } else {
        flips as f64 / compared as f64
    }
}
