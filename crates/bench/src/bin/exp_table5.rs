//! Table V — row filter comparison: KGLink's link-score top-k row filter
//! vs. taking the table's original first k rows.
//!
//! Paper reference (Table V):
//! ```text
//! Filter                SemTab acc/wF1    VizNet acc/wF1
//! Our top-k row filter  87.12 / 85.78     96.28 / 96.07
//! Original top-k rows   85.93 / 84.39     96.14 / 95.97
//! ```

use kglink_bench::{print_markdown, run_kglink, ExpEnv, Which};
use kglink_core::RowFilter;

fn main() {
    let env = ExpEnv::load();
    let mut rows = Vec::new();
    for (name, filter) in [
        ("Our top-k row filter", RowFilter::LinkScore),
        ("Original top-k rows", RowFilter::Original),
    ] {
        let mut row = vec![name.to_string()];
        for which in [Which::SemTab, Which::VizNet] {
            let mut config = env.kglink_config(which);
            config.row_filter = filter;
            // Make the filter bite: keep fewer rows than tables typically have.
            config.top_k_rows = 8;
            let (r, _, _) = run_kglink(&env, which, config, name);
            row.push(format!("{:.2}", r.summary.accuracy_pct()));
            row.push(format!("{:.2}", r.summary.weighted_f1_pct()));
        }
        rows.push(row);
    }
    print_markdown(
        "Table V — row filter comparison (measured, k = 8)",
        &["Filter mechanism", "SemTab Acc", "SemTab wF1", "VizNet Acc", "VizNet wF1"],
        &rows,
    );
}
