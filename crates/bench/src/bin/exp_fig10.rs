//! Figure 10 — the row filter size k: weighted F1 and wall-clock time for
//! k ∈ {small, medium, large, all}.
//!
//! Paper reference: optimal prediction at a middle k (25 of 64 encodable
//! rows there) — more rows add noise, fewer rows lose evidence — and time
//! grows with k. The reproduction's tables are smaller, so the sweep is
//! scaled to k ∈ {2, 4, 8, 16, all}.

use kglink_bench::{print_markdown, run_kglink, ExpEnv, Which};

fn main() {
    let env = ExpEnv::load();
    let mut rows = Vec::new();
    for which in [Which::SemTab, Which::VizNet] {
        for &k in &[2usize, 4, 8, 16, usize::MAX] {
            let mut config = env.kglink_config(which);
            config.top_k_rows = k;
            let label = if k == usize::MAX {
                "all".to_string()
            } else {
                k.to_string()
            };
            let (r, _, _) = run_kglink(&env, which, config, &format!("KGLink k={label}"));
            rows.push(vec![
                which.name().to_string(),
                label,
                format!("{:.2}", r.summary.weighted_f1_pct()),
                format!("{:.2}", r.summary.accuracy_pct()),
                format!("{:.1}", r.fit_seconds + r.predict_seconds),
            ]);
        }
    }
    print_markdown(
        "Figure 10 — weighted F1 and time with varying k (measured)",
        &["Dataset", "k", "Weighted F1", "Accuracy", "Total time (s)"],
        &rows,
    );
}
