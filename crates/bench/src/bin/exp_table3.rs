//! Table III — link statistics between the datasets and the KG.
//!
//! Paper reference (Table III):
//! ```text
//!                              SemTab          VizNet
//! Numeric columns              0      (0%)     9489  (12.8%)
//! Non-numeric columns w/o fv   0      (0%)     9278  (12.5%)
//! Non-numeric columns w/o ct   1144   (15.1%)  55374 (74.7%)
//! Total columns                7587   (100%)   74141 (100%)
//! ```

use kglink_bench::{print_markdown, ExpEnv, Which};
use kglink_core::{LinkStatistics, Preprocessor};

fn main() {
    let env = ExpEnv::load();
    let resources = env.resources();
    let mut stats = Vec::new();
    for which in [Which::SemTab, Which::VizNet] {
        let dataset = &env.bench(which).dataset;
        let pre = Preprocessor::new(
            resources.graph,
            resources.backend,
            env.kglink_config(which),
        );
        let processed: Vec<_> = dataset.tables.iter().flat_map(|t| pre.process(t)).collect();
        let s = LinkStatistics::compute(&processed);
        eprintln!("[{}]\n{}", which.name(), s);
        stats.push(s);
    }
    let fmt = |c: usize, s: &LinkStatistics| format!("{} ({:.1}%)", c, s.pct(c));
    let rows = vec![
        vec![
            "Numeric columns".to_string(),
            fmt(stats[0].numeric_columns, &stats[0]),
            fmt(stats[1].numeric_columns, &stats[1]),
        ],
        vec![
            "Non-numeric columns w/o fv".to_string(),
            fmt(stats[0].non_numeric_without_fv, &stats[0]),
            fmt(stats[1].non_numeric_without_fv, &stats[1]),
        ],
        vec![
            "Non-numeric columns w/o ct".to_string(),
            fmt(stats[0].non_numeric_without_ct, &stats[0]),
            fmt(stats[1].non_numeric_without_ct, &stats[1]),
        ],
        vec![
            "Total columns".to_string(),
            format!("{} (100%)", stats[0].total_columns),
            format!("{} (100%)", stats[1].total_columns),
        ],
    ];
    print_markdown(
        "Table III — link statistics (measured)",
        &["", "SemTab-like", "VizNet-like"],
        &rows,
    );
}
