//! exp_overload: overload-protection chaos harness.
//!
//! Three parts, all deterministic:
//!
//! 1. **Degraded-output identity (real model).** A service pinned at rung
//!    2 (no linkage) must produce annotations bit-identical to annotating
//!    through an always-failing backend, and a service pinned at rung 1
//!    (cache-only) over a stone-cold cache must match the same baseline —
//!    proving the ladder changes *cost*, never *semantics*.
//!
//! 2. **Open-loop load sweep (simulated queue).** A G/D/c queue
//!    simulation in integer microseconds drives the *real*
//!    `AimdLimit`/`BrownoutController` state machines with open-loop
//!    arrivals (no client backpressure) at 0.4–2.0× the saturation rate,
//!    adaptive vs static admission. The sweep asserts the tentpole
//!    properties: adaptive goodput plateaus past saturation (≥90% of its
//!    sweep peak at 2× while the static queue collapses), the admitted
//!    p99 stays bounded through a spike, the ladder actually engages
//!    during the spike, and the controller recovers to rung 0 after it.
//!
//! 3. **Retry-budget chaos.** The real `ResilientBackend` over a seeded
//!    fault injector with a long outage, with and without a retry budget:
//!    the budget must cap lifetime retries at `initial + ratio × queries`
//!    and strictly reduce retry amplification.
//!
//! The sweep is exported to `results/overload.jsonl` through the
//! observability layer's `JsonlSink`. `--smoke` shrinks the model
//! workload and the simulated horizon but keeps every assertion.

use kglink_bench::{print_markdown, ExpEnv, Which};
use kglink_core::{req, KgLink};
use kglink_obs::{Histogram, JsonlSink, Tracer};
use kglink_search::{
    BreakerConfig, CacheConfig, Deadline, EntitySearcher, FaultConfig, FaultyBackend, KgBackend,
    ResilienceConfig, ResilientBackend, RetryBudgetConfig,
};
use kglink_serve::{
    AimdConfig, AimdLimit, AnnotationService, BrownoutConfig, BrownoutController, DegradationRung,
    OverloadConfig, ServiceConfig, SharedBackend,
};
use kglink_table::{LabelId, Split, Table};
use std::collections::VecDeque;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Part 2: the open-loop queue simulation.
// ---------------------------------------------------------------------------

/// Simulated service times per rung, µs. Degradation buys real capacity:
/// a cache-only request costs a quarter of full retrieval, a no-linkage
/// request a tenth.
const FULL_US: u64 = 1_000;
const CACHE_ONLY_US: u64 = 250;
const NO_LINKAGE_US: u64 = 100;
/// A completion is *goodput* when its end-to-end latency meets this SLA.
const SLA_US: u64 = 10_000;
const WORKERS: usize = 4;
/// Static queue sized for burst absorption — exactly the sizing that
/// collapses goodput under sustained overload.
const STATIC_CAPACITY: usize = 256;

fn aimd_config() -> AimdConfig {
    AimdConfig {
        min_limit: 2,
        max_limit: 64,
        increase: 2,
        decrease_factor: 0.5,
        target_sojourn_us: 2_000,
        window: 16,
    }
}

fn brownout_config() -> BrownoutConfig {
    BrownoutConfig {
        enter_cache_only_us: 3_000,
        enter_no_linkage_us: 8_000,
        exit_us: 1_000,
        hysteresis: 8,
    }
}

struct SimOut {
    arrivals: usize,
    admitted: usize,
    shed: usize,
    ok: usize,
    latency: Histogram,
    rung_served: [u64; 3],
    final_rung: DegradationRung,
    goodput_per_s: f64,
}

/// FIFO G/D/c queue over `WORKERS` servers. `adaptive` drives the real
/// controller state machines exactly as the serve crate's workers do:
/// one sojourn observation per dequeue, limit resize + oldest-first trim
/// when an AIMD window closes, rung selection per request.
fn run_sim(arrival_times: &[u64], horizon_us: u64, adaptive: bool) -> SimOut {
    let mut free: Vec<u64> = vec![0; WORKERS];
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut aimd = adaptive.then(|| AimdLimit::new(aimd_config()));
    let mut brownout = adaptive.then(|| BrownoutController::new(brownout_config()));
    let mut limit = aimd
        .as_ref()
        .map_or(STATIC_CAPACITY, |a| a.limit().min(STATIC_CAPACITY));
    let mut out = SimOut {
        arrivals: arrival_times.len(),
        admitted: 0,
        shed: 0,
        ok: 0,
        latency: Histogram::new(),
        rung_served: [0; 3],
        final_rung: DegradationRung::Full,
        goodput_per_s: 0.0,
    };
    let drain = |now: u64,
                     free: &mut Vec<u64>,
                     queue: &mut VecDeque<u64>,
                     limit: &mut usize,
                     aimd: &mut Option<AimdLimit>,
                     brownout: &mut Option<BrownoutController>,
                     out: &mut SimOut| {
        loop {
            let idx = (0..free.len()).min_by_key(|&i| free[i]).expect("workers > 0");
            if queue.is_empty() || free[idx] > now {
                break;
            }
            let arrival = queue.pop_front().expect("checked non-empty");
            let start = free[idx].max(arrival);
            let sojourn = start - arrival;
            if let Some(a) = aimd.as_mut() {
                if a.observe(sojourn).is_some() {
                    *limit = a.limit().min(STATIC_CAPACITY);
                    while queue.len() > *limit {
                        // Oldest-first trim, mirroring `trim_to_limit`.
                        queue.pop_front();
                        out.shed += 1;
                    }
                }
            }
            let rung = brownout
                .as_mut()
                .map_or(DegradationRung::Full, |b| b.observe(sojourn));
            let service = match rung {
                DegradationRung::Full => FULL_US,
                DegradationRung::CacheOnly => CACHE_ONLY_US,
                DegradationRung::NoLinkage => NO_LINKAGE_US,
            };
            free[idx] = start + service;
            let latency = start + service - arrival;
            out.latency.record(latency);
            out.rung_served[rung.level() as usize] += 1;
            if latency <= SLA_US {
                out.ok += 1;
            }
        }
    };
    for &t in arrival_times {
        drain(t, &mut free, &mut queue, &mut limit, &mut aimd, &mut brownout, &mut out);
        if queue.len() >= limit {
            out.shed += 1;
            continue;
        }
        queue.push_back(t);
        out.admitted += 1;
    }
    drain(
        u64::MAX,
        &mut free,
        &mut queue,
        &mut limit,
        &mut aimd,
        &mut brownout,
        &mut out,
    );
    out.final_rung = brownout.as_ref().map_or(DegradationRung::Full, |b| b.rung());
    out.goodput_per_s = out.ok as f64 / (horizon_us as f64 / 1e6);
    out
}

/// Deterministic open-loop arrivals at `rate_per_s` over `[from, to)` µs.
fn arrivals_at(rate_per_s: f64, from_us: u64, to_us: u64, into: &mut Vec<u64>) {
    let gap = (1e6 / rate_per_s) as u64;
    let gap = gap.max(1);
    let mut t = from_us;
    while t < to_us {
        into.push(t);
        t += gap;
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let env = ExpEnv::load();
    let tracer = Tracer::enabled();

    // -----------------------------------------------------------------
    // Part 1: degraded rungs are bit-identical to their baselines.
    // -----------------------------------------------------------------
    let mut config = env.kglink_config(Which::SemTab);
    if smoke {
        config.epochs = config.epochs.min(2);
    }
    let dataset = &env.bench(Which::SemTab).dataset;
    eprintln!("[overload] training KGLink for the degraded-identity check…");
    let (model, _report) = KgLink::fit(&env.resources(), dataset, config);
    let tables: Vec<Table> = dataset
        .tables_in(Split::Test)
        .take(if smoke { 4 } else { 16 })
        .cloned()
        .collect();
    // The no-linkage baseline: annotate through an always-failing backend.
    let dead = FaultyBackend::new(&env.searcher, FaultConfig::with_fault_rate(env.seed, 1.0));
    let dead_resources = env.resources_with(&dead);
    let baseline: Vec<Vec<LabelId>> = tables
        .iter()
        .map(|t| model.annotate_request(&dead_resources, req(t)).labels)
        .collect();

    let model = Arc::new(model);
    let graph: Arc<dyn kglink_kg::GraphAccess> = Arc::new(env.world.graph.clone());
    let tokenizer = Arc::new(env.tokenizer.clone());
    let searcher = Arc::new(EntitySearcher::build(&env.world.graph));
    let pinned_service = |rung: DegradationRung, cache: Option<CacheConfig>| {
        AnnotationService::new(
            Arc::clone(&model),
            Arc::clone(&graph),
            Arc::clone(&searcher) as SharedBackend,
            Arc::clone(&tokenizer),
            ServiceConfig {
                workers: 2,
                cache,
                overload: Some(OverloadConfig {
                    brownout: BrownoutConfig::pinned(rung),
                    ..OverloadConfig::default()
                }),
                ..ServiceConfig::default()
            },
        )
    };

    let svc = pinned_service(DegradationRung::NoLinkage, None);
    for (i, ticket) in svc.submit_batch(tables.iter().cloned()).into_iter().enumerate() {
        let annotation = ticket.expect("admitted").wait().expect("degraded, not failed");
        assert_eq!(annotation.rung, DegradationRung::NoLinkage);
        assert_eq!(
            annotation.labels, baseline[i],
            "table {i}: rung-2 output diverged from the no-linkage baseline"
        );
    }
    assert_eq!(svc.metrics().served_no_linkage, tables.len() as u64);
    drop(svc);

    // Rung 1 over a stone-cold cache: every lookup misses, every column
    // degrades — identical labels, recorded at rung 1.
    let svc = pinned_service(DegradationRung::CacheOnly, Some(CacheConfig::default()));
    for (i, ticket) in svc.submit_batch(tables.iter().cloned()).into_iter().enumerate() {
        let annotation = ticket.expect("admitted").wait().expect("degraded, not failed");
        assert_eq!(annotation.rung, DegradationRung::CacheOnly);
        assert_eq!(
            annotation.labels, baseline[i],
            "table {i}: cold cache-only output diverged from the no-linkage baseline"
        );
    }
    assert_eq!(svc.metrics().served_cache_only, tables.len() as u64);
    drop(svc);
    eprintln!(
        "[overload] degraded-identity: {} tables bit-identical at rungs 1 and 2",
        tables.len()
    );

    // -----------------------------------------------------------------
    // Part 2: the load sweep.
    // -----------------------------------------------------------------
    let horizon_us: u64 = if smoke { 1_000_000 } else { 4_000_000 };
    let saturation = WORKERS as f64 * 1e6 / FULL_US as f64;
    let multipliers = [0.4, 0.7, 1.0, 1.4, 2.0];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut adaptive_goodput: Vec<f64> = Vec::new();
    let mut static_goodput: Vec<f64> = Vec::new();
    for &mult in &multipliers {
        let mut times = Vec::new();
        arrivals_at(mult * saturation, 0, horizon_us, &mut times);
        for adaptive in [false, true] {
            let out = run_sim(&times, horizon_us, adaptive);
            tracer.event_with(
                "overload.sweep",
                vec![
                    ("mode", if adaptive { "adaptive" } else { "static" }.to_string()),
                    ("load_x", format!("{mult:.1}")),
                    ("arrivals", out.arrivals.to_string()),
                    ("admitted", out.admitted.to_string()),
                    ("shed", out.shed.to_string()),
                    ("goodput_per_s", format!("{:.1}", out.goodput_per_s)),
                    ("p50_us", out.latency.p50().to_string()),
                    ("p99_us", out.latency.p99().to_string()),
                    ("served_full", out.rung_served[0].to_string()),
                    ("served_cache_only", out.rung_served[1].to_string()),
                    ("served_no_linkage", out.rung_served[2].to_string()),
                ],
            );
            rows.push(vec![
                format!("{mult:.1}x"),
                if adaptive { "adaptive" } else { "static" }.to_string(),
                out.arrivals.to_string(),
                out.shed.to_string(),
                format!("{:.0}", out.goodput_per_s),
                out.latency.p50().to_string(),
                out.latency.p99().to_string(),
                format!("{}/{}/{}", out.rung_served[0], out.rung_served[1], out.rung_served[2]),
            ]);
            if adaptive {
                adaptive_goodput.push(out.goodput_per_s);
            } else {
                static_goodput.push(out.goodput_per_s);
            }
        }
    }
    print_markdown(
        &format!(
            "Open-loop overload sweep ({WORKERS} workers, saturation {saturation:.0} req/s, \
             SLA {SLA_US}us, horizon {:.1}s)",
            horizon_us as f64 / 1e6
        ),
        &[
            "load",
            "admission",
            "arrivals",
            "shed",
            "goodput/s",
            "p50 us",
            "p99 us",
            "full/cache/none",
        ],
        &rows,
    );

    let peak = adaptive_goodput.iter().cloned().fold(0.0, f64::max);
    let at_2x = *adaptive_goodput.last().expect("sweep ran");
    let static_at_2x = *static_goodput.last().expect("sweep ran");
    println!(
        "goodput at 2.0x: adaptive {at_2x:.0}/s (peak {peak:.0}/s), static {static_at_2x:.0}/s"
    );
    assert!(
        at_2x >= 0.9 * peak,
        "adaptive goodput must plateau past saturation: {at_2x:.0}/s < 90% of peak {peak:.0}/s"
    );
    assert!(
        static_at_2x < 0.5 * at_2x,
        "the static queue should collapse at 2x saturation (got {static_at_2x:.0}/s vs \
         adaptive {at_2x:.0}/s) — if it doesn't, this harness is not stressing anything"
    );

    // Spike profile: healthy base load with a 3x burst in the middle.
    // Adaptive admission must keep the admitted p99 bounded, the ladder
    // must actually engage, and the controller must walk back to rung 0
    // before the horizon ends.
    let spike_from = horizon_us / 4;
    let spike_to = horizon_us / 2;
    let mut times = Vec::new();
    arrivals_at(0.5 * saturation, 0, spike_from, &mut times);
    arrivals_at(3.0 * saturation, spike_from, spike_to, &mut times);
    arrivals_at(0.5 * saturation, spike_to, horizon_us, &mut times);
    let adaptive_spike = run_sim(&times, horizon_us, true);
    let static_spike = run_sim(&times, horizon_us, false);
    for (mode, out) in [("adaptive", &adaptive_spike), ("static", &static_spike)] {
        tracer.event_with(
            "overload.spike",
            vec![
                ("mode", mode.to_string()),
                ("p99_us", out.latency.p99().to_string()),
                ("shed", out.shed.to_string()),
                ("goodput_per_s", format!("{:.1}", out.goodput_per_s)),
                ("final_rung", out.final_rung.name().to_string()),
                ("served_cache_only", out.rung_served[1].to_string()),
                ("served_no_linkage", out.rung_served[2].to_string()),
            ],
        );
    }
    println!(
        "spike: adaptive p99 {}us (static {}us), degraded completions {}, final rung {}",
        adaptive_spike.latency.p99(),
        static_spike.latency.p99(),
        adaptive_spike.rung_served[1] + adaptive_spike.rung_served[2],
        adaptive_spike.final_rung.name()
    );
    assert!(
        adaptive_spike.latency.p99() <= 5 * SLA_US,
        "admitted p99 must stay bounded through the spike: {}us",
        adaptive_spike.latency.p99()
    );
    assert!(
        adaptive_spike.latency.p99() < static_spike.latency.p99(),
        "adaptive p99 ({}) must beat the static queue's ({})",
        adaptive_spike.latency.p99(),
        static_spike.latency.p99()
    );
    assert!(
        adaptive_spike.rung_served[1] + adaptive_spike.rung_served[2] > 0,
        "the degradation ladder never engaged during the spike"
    );
    assert_eq!(
        adaptive_spike.final_rung,
        DegradationRung::Full,
        "the controller must recover to rung 0 after the spike"
    );

    // -----------------------------------------------------------------
    // Part 3: retry budgets under a fault burst.
    // -----------------------------------------------------------------
    let queries = if smoke { 40u64 } else { 200 };
    let run_burst = |retry_budget: Option<RetryBudgetConfig>| {
        let faulty = FaultyBackend::new(
            &env.searcher,
            // A long outage starting almost immediately: every call during
            // the burst fails with a retryable error.
            FaultConfig::healthy(env.seed ^ 0x51).with_outage(2, u64::MAX),
        );
        let resilient = ResilientBackend::new(
            faulty,
            ResilienceConfig {
                retry_budget,
                // Keep the breaker out of the way so the budget's effect
                // is isolated and fully deterministic.
                breaker: BreakerConfig {
                    failure_threshold: 1.1,
                    ..BreakerConfig::default()
                },
                ..ResilienceConfig::default()
            },
        );
        for i in 0..queries {
            let _ = resilient.search_entities(
                if i % 2 == 0 { "peter" } else { "springfield" },
                3,
                Deadline::UNBOUNDED,
            );
        }
        resilient.metrics()
    };
    let budget = RetryBudgetConfig {
        ratio: 0.1,
        cap: 5.0,
        initial: 5.0,
    };
    let budgeted = run_burst(Some(budget.clone()));
    let unbudgeted = run_burst(None);
    let bound = budget.initial + budget.ratio * budgeted.queries as f64;
    tracer.event_with(
        "overload.retry_budget",
        vec![
            ("queries", budgeted.queries.to_string()),
            ("budgeted_retries", budgeted.retries.to_string()),
            ("unbudgeted_retries", unbudgeted.retries.to_string()),
            ("denied", budgeted.retry_budget_denied.to_string()),
            ("bound", format!("{bound:.1}")),
        ],
    );
    println!(
        "retry budget: {} retries over {} queries (bound {bound:.1}, denied {}); \
         unbudgeted {} retries",
        budgeted.retries, budgeted.queries, budgeted.retry_budget_denied, unbudgeted.retries
    );
    assert!(
        (budgeted.retries as f64) <= bound,
        "retry budget violated: {} retries exceed {bound:.1}",
        budgeted.retries
    );
    assert!(
        budgeted.retries < unbudgeted.retries,
        "the budget must reduce retry amplification ({} vs {})",
        budgeted.retries,
        unbudgeted.retries
    );
    assert!(budgeted.retry_budget_denied > 0, "the burst must exercise denial");

    // -----------------------------------------------------------------
    // Export the sweep for offline inspection.
    // -----------------------------------------------------------------
    std::fs::create_dir_all("results").expect("create results/");
    let mut sink = JsonlSink::create("results/overload.jsonl").expect("open results/overload.jsonl");
    let lines = sink.export(&tracer).expect("export sweep events");
    eprintln!("[overload] wrote {lines} events to results/overload.jsonl");

    println!("exp_overload: all assertions passed");
}
