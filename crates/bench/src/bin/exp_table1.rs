//! Table I — main results: accuracy and weighted F1 of every method on the
//! SemTab-like and VizNet-like benchmarks.
//!
//! Paper reference (Table I):
//! ```text
//! Model      SemTab acc/wF1     VizNet acc/wF1
//! MTab       89.10 / -          38.21 / -
//! TaBERT     72.69 / 71.21      94.68 / 94.07
//! Doduo      84.06 / 82.43      95.40 / 95.06
//! HNN        66.54 / 65.12      66.89 / 68.82
//! Sudowoodo  79.34 / 79.24      91.57 / 91.08
//! RECA       86.12 / 84.91      93.25 / 93.18
//! KGLink     87.12 / 85.78      96.28 / 96.07
//! ```

use kglink_bench::{baseline_registry, print_markdown, run_baseline, run_kglink, ExpEnv, RunResult, Which};

fn main() {
    let env = ExpEnv::load();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut results: Vec<(String, [Option<RunResult>; 2])> = Vec::new();

    for which in [Which::SemTab, Which::VizNet] {
        let idx = usize::from(which == Which::VizNet);
        for mut model in baseline_registry(&env, which) {
            let r = run_baseline(&env, model.as_mut(), which);
            if let Some(entry) = results.iter_mut().find(|(n, _)| *n == r.model) {
                entry.1[idx] = Some(r);
            } else {
                let mut slots: [Option<RunResult>; 2] = [None, None];
                let name = r.model.clone();
                slots[idx] = Some(r);
                results.push((name, slots));
            }
        }
        let (r, _, _) = run_kglink(&env, which, env.kglink_config(which), "KGLink");
        if let Some(entry) = results.iter_mut().find(|(n, _)| n == "KGLink") {
            entry.1[idx] = Some(r);
        } else {
            let mut slots: [Option<RunResult>; 2] = [None, None];
            slots[idx] = Some(r);
            results.push(("KGLink".to_string(), slots));
        }
    }

    for (name, slots) in &results {
        let fmt = |r: &Option<RunResult>, f1: bool| -> String {
            match r {
                Some(r) if f1 => format!("{:.2}", r.summary.weighted_f1_pct()),
                Some(r) => format!("{:.2}", r.summary.accuracy_pct()),
                None => "-".to_string(),
            }
        };
        // The paper omits MTab's weighted F1 (different problem definition).
        let is_mtab = name == "MTab";
        rows.push(vec![
            name.clone(),
            fmt(&slots[0], false),
            if is_mtab { "-".into() } else { fmt(&slots[0], true) },
            fmt(&slots[1], false),
            if is_mtab { "-".into() } else { fmt(&slots[1], true) },
        ]);
    }
    print_markdown(
        "Table I — main results (measured)",
        &["Model", "SemTab Acc", "SemTab wF1", "VizNet Acc", "VizNet wF1"],
        &rows,
    );
}
