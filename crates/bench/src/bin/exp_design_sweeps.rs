//! Extension experiments beyond the paper's figures: sweeps over the two
//! Part-1 budgets the paper fixes by fiat — the number of candidate types
//! per column (paper: "up to 3") and the number of entities retrieved per
//! mention (paper: "up to 10") — quantifying how sensitive KGLink is to
//! each design choice.

use kglink_bench::{print_markdown, run_kglink, ExpEnv, Which};

fn main() {
    let env = ExpEnv::load();
    let which = Which::SemTab;

    // ---- candidate types per column (j) -----------------------------------
    let mut rows = Vec::new();
    for &j in &[0usize, 1, 3, 5] {
        let mut config = env.kglink_config(which);
        config.max_candidate_types = j;
        if j == 0 {
            config.use_candidate_types = false;
        }
        let (r, _, _) = run_kglink(&env, which, config, &format!("KGLink j={j}"));
        rows.push(vec![
            j.to_string(),
            format!("{:.2}", r.summary.accuracy_pct()),
            format!("{:.2}", r.summary.weighted_f1_pct()),
            format!("{:.1}", r.fit_seconds),
        ]);
    }
    print_markdown(
        "Design sweep — candidate types per column (SemTab-like)",
        &["max candidate types j", "Accuracy", "Weighted F1", "Fit (s)"],
        &rows,
    );

    // ---- entities retrieved per mention ------------------------------------
    let mut rows = Vec::new();
    for &e in &[1usize, 3, 10, 25] {
        let mut config = env.kglink_config(which);
        config.max_entities_per_mention = e;
        let (r, _, _) = run_kglink(&env, which, config, &format!("KGLink E={e}"));
        rows.push(vec![
            e.to_string(),
            format!("{:.2}", r.summary.accuracy_pct()),
            format!("{:.2}", r.summary.weighted_f1_pct()),
            format!("{:.1}", r.fit_seconds),
        ]);
    }
    print_markdown(
        "Design sweep — entities retrieved per mention (SemTab-like)",
        &["max entities per mention", "Accuracy", "Weighted F1", "Fit (s)"],
        &rows,
    );
}
