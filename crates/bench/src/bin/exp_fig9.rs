//! Figure 9 — data efficiency: KGLink vs. KGLink w/o msk with training
//! fraction p ∈ {0.2, 0.4, 0.6, 0.8, 1.0} (test split fixed).
//!
//! Paper reference: with small p the multi-task model benefits less from
//! the representation-generation sub-task (the extra head is harder to
//! train); KGLink reaches most baselines' full-data performance at ≈ 60%
//! of the training data.

use kglink_bench::{print_markdown, ExpEnv, Which};
use kglink_core::pipeline::KgLink;
use kglink_table::Split;

fn main() {
    let env = ExpEnv::load();
    let which = Which::SemTab;
    let resources = env.resources();
    let mut rows = Vec::new();
    for &p in &[0.2f64, 0.4, 0.6, 0.8, 1.0] {
        for (name, config) in [
            ("KGLink", env.kglink_config(which)),
            ("KGLink w/o msk", env.kglink_config(which).without_mask_task()),
        ] {
            let mut dataset = env.bench(which).dataset.clone();
            dataset.subsample_train(p, env.seed ^ 0x90);
            let t0 = std::time::Instant::now();
            let (model, _) = KgLink::fit(&resources, &dataset, config);
            let summary = model.evaluate(&resources, &dataset, Split::Test);
            eprintln!(
                "[run] p={p:.1} {name:<16} acc {:.2} wF1 {:.2} ({:.1}s)",
                summary.accuracy_pct(),
                summary.weighted_f1_pct(),
                t0.elapsed().as_secs_f64()
            );
            rows.push(vec![
                format!("{p:.1}"),
                name.to_string(),
                format!("{:.2}", summary.accuracy_pct()),
                format!("{:.2}", summary.weighted_f1_pct()),
            ]);
        }
    }
    print_markdown(
        "Figure 9 — accuracy / weighted F1 vs training fraction p (measured, SemTab-like)",
        &["p", "Model", "Accuracy", "Weighted F1"],
        &rows,
    );
}
