//! exp_obs: observability-layer experiment (not a paper table; exercises
//! the tracing layer the other experiments report through).
//!
//! Trains KGLink once, then annotates the SemTab-like test split through
//! an enabled [`Tracer`] and checks the layer's two contracts:
//!
//! 1. **The stage spans tile the pipeline.** The per-stage histograms
//!    (`retrieval` / `filter` / `feature` from Part 1, `encode` /
//!    `classify` from Part 2) must sum to the `annotate` root span's
//!    total within 5% — no hidden untimed stage.
//! 2. **A disabled tracer is free.** The per-call cost of the no-op
//!    tracer, micro-measured in a tight loop, modeled over every tracer
//!    touchpoint of the traced run, must stay under 1% of the untraced
//!    run's wall time.
//!
//! 3. **Lifecycle events nest under serving spans.** A hot swap's shadow
//!    comparisons run inside the worker's `serve.request` span, so every
//!    `model.shadow` instant in the service's event log must carry an
//!    enclosing span id drawn from the `serve.request` span starts — the
//!    trace of a swap reads as *part of* request handling, not as a
//!    disconnected side channel.
//!
//! The full event log is exported to `results/obs_trace.jsonl` (one JSON
//! object per line: spans with ids/parents, counters, instants).
//!
//! `--smoke` shrinks the annotated subset; combine with `KGLINK_FAST=1`
//! for the CI gate.

use kglink_bench::{print_markdown, run_kglink, ExpEnv, Which};
use kglink_core::req;
use kglink_obs::{EventKind, JsonlSink, Tracer};
use kglink_search::EntitySearcher;
use kglink_serve::{AnnotationService, ServiceConfig, SwapPlan};
use kglink_table::Split;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The stages that must tile the `annotate` root span, in pipeline order.
const STAGES: [&str; 5] = ["retrieval", "filter", "feature", "encode", "classify"];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let env = ExpEnv::load();
    let which = Which::SemTab;
    let (_, _, model) = run_kglink(&env, which, env.kglink_config(which), "KGLink");
    let dataset = &env.bench(which).dataset;
    let tables: Vec<_> = dataset
        .tables_in(Split::Test)
        .take(if smoke { 6 } else { usize::MAX })
        .collect();

    // Untraced reference: the default resources carry the no-op tracer.
    let untraced_resources = env.resources();
    let t0 = Instant::now();
    for t in &tables {
        let outcome = model.annotate_request(&untraced_resources, req(t));
        assert_eq!(outcome.labels.len(), t.n_cols());
    }
    let untraced_wall_us = t0.elapsed().as_micros() as u64;

    // Traced run over the same workload.
    let tracer = Tracer::enabled();
    let resources = env.resources().with_tracer(&tracer);
    let t1 = Instant::now();
    for t in &tables {
        model.annotate_request(&resources, req(t));
    }
    let traced_wall_us = t1.elapsed().as_micros() as u64;

    let stages = tracer.stages();
    let annotate = stages.get("annotate").expect("root span recorded");
    assert_eq!(
        annotate.count(),
        tables.len() as u64,
        "one root span per table"
    );

    let mut rows = Vec::new();
    let mut stage_sum_us = 0u64;
    for name in STAGES {
        let h = stages
            .get(name)
            .unwrap_or_else(|| panic!("stage `{name}` never recorded"));
        stage_sum_us += h.sum();
        rows.push(vec![
            name.to_string(),
            h.count().to_string(),
            format!("{:.2}", h.sum() as f64 / 1000.0),
            format!("{:.1}", 100.0 * h.sum() as f64 / annotate.sum() as f64),
            h.p50().to_string(),
            h.p99().to_string(),
        ]);
    }
    // The batched encoder forward inside `classify` is broken out as a
    // nested `nn.forward` span. It is not part of the tiling sum (its
    // parent already covers it), but it must exist and cannot exceed the
    // stage that contains it.
    let forward = stages
        .get("nn.forward")
        .expect("nn.forward span never recorded — predict_table_traced lost its tracer");
    let classify = stages.get("classify").expect("classify stage recorded");
    assert!(
        forward.sum() <= classify.sum(),
        "nn.forward ({}us) exceeds its enclosing classify stage ({}us)",
        forward.sum(),
        classify.sum()
    );
    rows.push(vec![
        "└ nn.forward (in classify)".into(),
        forward.count().to_string(),
        format!("{:.2}", forward.sum() as f64 / 1000.0),
        format!("{:.1}", 100.0 * forward.sum() as f64 / annotate.sum() as f64),
        forward.p50().to_string(),
        forward.p99().to_string(),
    ]);
    rows.push(vec![
        "annotate (root)".into(),
        annotate.count().to_string(),
        format!("{:.2}", annotate.sum() as f64 / 1000.0),
        "100.0".into(),
        annotate.p50().to_string(),
        annotate.p99().to_string(),
    ]);
    print_markdown(
        "Observability — per-stage breakdown of traced annotation (SemTab-like test split)",
        &["Stage", "Spans", "Total ms", "Share %", "p50 us", "p99 us"],
        &rows,
    );

    // Contract 1: the stages tile the root span within 5%.
    let gap = annotate.sum().abs_diff(stage_sum_us);
    let gap_frac = gap as f64 / annotate.sum().max(1) as f64;
    eprintln!(
        "[obs] stage sum {:.2}ms vs annotate {:.2}ms (gap {:.2}%)",
        stage_sum_us as f64 / 1000.0,
        annotate.sum() as f64 / 1000.0,
        100.0 * gap_frac
    );
    if gap_frac > 0.05 {
        eprintln!(
            "FAIL: stage spans leave {:.2}% of the annotate span unaccounted (>5%)",
            100.0 * gap_frac
        );
        std::process::exit(1);
    }

    // Contract 2: the disabled tracer is free. Micro-measure the no-op
    // span cost, then model it over every touchpoint the traced run made
    // (events().len() over-counts calls — each span is one call but two
    // events — so the model is conservative).
    let disabled = Tracer::disabled();
    let iters: u64 = 4_000_000;
    let t2 = Instant::now();
    for _ in 0..iters {
        let s = std::hint::black_box(&disabled).span("probe");
        std::hint::black_box(&s);
    }
    let ns_per_call = t2.elapsed().as_nanos() as f64 / iters as f64;
    let touchpoints = tracer.events().len() as u64;
    let modeled_overhead_us = touchpoints as f64 * ns_per_call / 1000.0;
    let overhead_frac = modeled_overhead_us / untraced_wall_us.max(1) as f64;
    eprintln!(
        "[obs] disabled tracer: {ns_per_call:.1}ns/call × {touchpoints} touchpoints \
         = {modeled_overhead_us:.0}us modeled vs {untraced_wall_us}us untraced wall \
         ({:.4}%); traced wall {traced_wall_us}us",
        100.0 * overhead_frac
    );
    if overhead_frac > 0.01 {
        eprintln!(
            "FAIL: modeled disabled-tracer overhead {:.3}% exceeds 1%",
            100.0 * overhead_frac
        );
        std::process::exit(1);
    }

    // Contract 3: model-lifecycle events nest under `serve.request`.
    // Run a short hot swap (same weights, so every gate passes) against a
    // traced service under a trickle of live traffic, then check that
    // each shadow comparison was logged from inside an open request span.
    let serve_tracer = Tracer::enabled();
    let model = Arc::new(model);
    let graph: Arc<dyn kglink_kg::GraphAccess> = Arc::new(env.world.graph.clone());
    let backend: kglink_serve::SharedBackend =
        Arc::new(EntitySearcher::build(&env.world.graph));
    let mut service = AnnotationService::new(
        Arc::clone(&model),
        graph,
        backend,
        Arc::new(env.tokenizer.clone()),
        ServiceConfig {
            workers: 2,
            max_batch: 2,
            cache: None,
            sim_col_cost_us: 0,
            tracer: serve_tracer.clone(),
            initial_version: 1,
            ..ServiceConfig::default()
        },
    );
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let (service_ref, stop_ref, tables_ref) = (&service, &stop, &tables);
        s.spawn(move || {
            let mut tickets = Vec::new();
            let mut i = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                let table = (*tables_ref[i % tables_ref.len()]).clone();
                tickets.push(service_ref.submit(table).expect("admitted"));
                i += 1;
                std::thread::sleep(Duration::from_micros(300));
            }
            for t in tickets {
                t.wait().expect("request completes");
            }
        });
        let plan = SwapPlan {
            prepare_max_flip_rate: 1.0,
            shadow_sample_every: 1,
            shadow_min_requests: 4,
            shadow_max_flip_rate: 1.0,
            watch_min_requests: 0,
            phase_timeout: Duration::from_secs(30),
            ..SwapPlan::default()
        };
        service
            .swap_model(2, Arc::clone(&model), &plan)
            .expect("same-weights swap promotes");
        stop.store(true, Ordering::Relaxed);
    });
    service.shutdown();
    let serve_events = serve_tracer.events();
    let request_spans: std::collections::HashSet<u64> = serve_events
        .iter()
        .filter(|e| e.name == "serve.request" && e.kind == EventKind::SpanStart)
        .map(|e| e.span)
        .collect();
    let shadow_events: Vec<_> = serve_events
        .iter()
        .filter(|e| e.name == "model.shadow" && e.kind == EventKind::Instant)
        .collect();
    assert!(
        shadow_events.len() >= 4,
        "shadow phase compared at least its minimum ({} events)",
        shadow_events.len()
    );
    for e in &shadow_events {
        assert!(
            e.span != 0 && request_spans.contains(&e.span),
            "model.shadow event (seq {}) is not nested under any serve.request span \
             (span id {})",
            e.seq,
            e.span
        );
    }
    assert!(
        serve_events
            .iter()
            .any(|e| e.name == "model.promote" && e.kind == EventKind::Instant),
        "promotion must log a model.promote instant"
    );
    eprintln!(
        "[obs] {} model.shadow events, every one nested under a serve.request span \
         ({} request spans; promote event present)",
        shadow_events.len(),
        request_spans.len()
    );

    // Export the event log for offline inspection.
    std::fs::create_dir_all("results").expect("create results/");
    let mut sink = JsonlSink::create("results/obs_trace.jsonl").expect("open results/obs_trace.jsonl");
    let lines = sink.export(&tracer).expect("export event log");
    eprintln!("[obs] wrote {lines} events to results/obs_trace.jsonl");

    eprintln!(
        "OK: stages tile the pipeline (gap {:.2}%), disabled tracer is free ({:.4}%)",
        100.0 * gap_frac,
        100.0 * overhead_frac
    );
}
