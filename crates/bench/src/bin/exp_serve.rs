//! exp_serve: serving-layer scaling experiment.
//!
//! Sweeps the `kglink-serve` worker pool over workers × cache on/off on
//! the VizNet-like benchmark and checks the serving layer's contract:
//!
//! 1. **Bit-identity** — every grid cell's annotations equal the
//!    single-threaded `KgLink::annotate_request` baseline, label for label,
//!    regardless of worker count, scheduling, or caching.
//! 2. **Scaling** — simulated makespan (max per-worker busy-time, from
//!    the repo's simulated-latency accounting) drops ≥2× from 1 to 4
//!    workers. Real wall-clock speedup is additionally checked when the
//!    host actually has ≥4 cores.
//! 3. **Caching pays** — with the shared retrieval LRU on, the repeated
//!    workload hits the cache (hit rate > 0) and the simulated makespan
//!    is no worse than with the cache off.
//!
//! The model itself is trained *through* a `CachingBackend` over the
//! searcher, demonstrating that training-time preprocessing reuses the
//! same cache layer the service uses (and measuring its hit rate).
//!
//! `--smoke` shrinks the workload and skips the scaling assertions (they
//! need the full grid); it keeps the bit-identity and cache-hit checks.

use kglink_bench::{print_markdown, ExpEnv, Which};
use kglink_core::KgLink;
use kglink_search::{
    CacheConfig, CachingBackend, Deadline, EntitySearcher, FaultConfig, FaultyBackend,
};
use kglink_serve::{AdmissionPolicy, AnnotationService, ServiceConfig, SharedBackend};
use kglink_table::{LabelId, Split, Table};
use std::sync::Arc;
use std::time::Instant;

struct Cell {
    workers: usize,
    cache: bool,
    wall_s: f64,
    real_per_s: f64,
    sim_makespan_us: u64,
    sim_per_s: f64,
    p50_us: u64,
    p99_us: u64,
    hit_rate: f64,
    degraded: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let env = ExpEnv::load();

    // Train KGLink on VizNet through the shared retrieval cache: Part-1
    // preprocessing re-queries the same mentions across epochs' splits, so
    // the training pass itself is the first cache consumer.
    let train_cache = CachingBackend::new(&env.searcher, CacheConfig::default());
    let resources = env.resources_with(&train_cache);
    let mut config = env.kglink_config(Which::VizNet);
    if smoke {
        config.epochs = config.epochs.min(2);
    }
    let dataset = &env.bench(Which::VizNet).dataset;
    eprintln!("[serve] training KGLink through CachingBackend…");
    let t0 = Instant::now();
    let (model, _report) = KgLink::fit(&resources, dataset, config);
    let train_stats = train_cache.stats();
    eprintln!(
        "[serve] trained in {:.1}s; training cache: {} lookups, hit rate {:.3}",
        t0.elapsed().as_secs_f64(),
        train_stats.lookups(),
        train_stats.hit_rate()
    );
    assert!(
        train_stats.lookups() > 0 && train_stats.hit_rate() > 0.0,
        "training-time preprocessing must exercise the retrieval cache"
    );

    // Workload: every test table, submitted twice — the repetition (and
    // mention overlap across tables) is what the cache feeds on.
    let test_tables: Vec<Table> = dataset
        .tables_in(Split::Test)
        .take(if smoke { 6 } else { usize::MAX })
        .cloned()
        .collect();
    let workload: Vec<Table> = test_tables
        .iter()
        .chain(test_tables.iter())
        .cloned()
        .collect();

    // Single-threaded reference: direct annotation over the raw searcher.
    let t0 = Instant::now();
    let baseline: Vec<Vec<LabelId>> = test_tables
        .iter()
        .map(|t| model.annotate_request(&env.resources(), kglink_core::req(t)).labels)
        .collect();
    let seq_wall_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "[serve] sequential baseline: {} tables in {:.2}s",
        test_tables.len(),
        seq_wall_s
    );

    // Shared service resources. The backend stack mirrors production: a
    // latency-injecting (but fault-free) decorator over BM25, so simulated
    // retrieval time is non-trivial and the cache has something to save.
    let model = Arc::new(model);
    let graph: Arc<dyn kglink_kg::GraphAccess> = Arc::new(env.world.graph.clone());
    let tokenizer = Arc::new(env.tokenizer.clone());
    let searcher = Arc::new(EntitySearcher::build(&env.world.graph));

    let worker_grid: &[usize] = if smoke { &[1] } else { &[1, 2, 4, 8] };
    let cache_grid: &[bool] = if smoke { &[true] } else { &[false, true] };
    let mut cells: Vec<Cell> = Vec::new();

    for &cache_on in cache_grid {
        for &workers in worker_grid {
            let backend: SharedBackend = Arc::new(FaultyBackend::new(
                Arc::clone(&searcher),
                FaultConfig::healthy(env.seed ^ 0x77),
            ));
            let mut service = AnnotationService::new(
                Arc::clone(&model),
                Arc::clone(&graph),
                backend,
                Arc::clone(&tokenizer),
                ServiceConfig {
                    workers,
                    queue_capacity: 64,
                    max_batch: 2,
                    admission: AdmissionPolicy::Block,
                    default_deadline: Deadline::UNBOUNDED,
                    cache: cache_on.then(CacheConfig::default),
                    sim_col_cost_us: 2_000,
                    ..ServiceConfig::default()
                },
            );
            let t0 = Instant::now();
            let tickets = service.submit_batch(workload.iter().cloned());
            let results: Vec<_> = tickets
                .into_iter()
                .map(|t| {
                    t.expect("Block admission never rejects")
                        .wait()
                        .expect("service stays up for the whole workload")
                })
                .collect();
            let wall_s = t0.elapsed().as_secs_f64();
            for (i, annotation) in results.iter().enumerate() {
                let expect = &baseline[i % test_tables.len()];
                assert_eq!(
                    &annotation.labels, expect,
                    "workers={workers} cache={cache_on}: request {i} diverged from the \
                     single-threaded baseline"
                );
                assert!(!annotation.expired, "unbounded deadlines never expire");
            }
            let m = service.metrics();
            assert_eq!(m.completed, workload.len() as u64);
            if cache_on {
                assert!(
                    m.cache_hit_rate() > 0.0,
                    "repeated workload must hit the cache (workers={workers})"
                );
            }
            cells.push(Cell {
                workers,
                cache: cache_on,
                wall_s,
                real_per_s: workload.len() as f64 / wall_s,
                sim_makespan_us: m.sim_makespan_us(),
                sim_per_s: m.sim_throughput_per_s(),
                p50_us: m.latency_p50_us,
                p99_us: m.latency_p99_us,
                hit_rate: m.cache_hit_rate(),
                degraded: m.degraded_columns,
            });
            eprintln!(
                "[serve] workers={workers} cache={cache_on}: wall {wall_s:.2}s, sim makespan {}us, hit rate {:.3}",
                m.sim_makespan_us(),
                m.cache_hit_rate()
            );
            service.shutdown();
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.workers.to_string(),
                if c.cache { "on" } else { "off" }.to_string(),
                format!("{:.2}", c.wall_s),
                format!("{:.1}", c.real_per_s),
                format!("{}", c.sim_makespan_us),
                format!("{:.1}", c.sim_per_s),
                format!("{}", c.p50_us),
                format!("{}", c.p99_us),
                format!("{:.3}", c.hit_rate),
                c.degraded.to_string(),
            ]
        })
        .collect();
    print_markdown(
        &format!(
            "Serving-layer scaling on {} ({} requests; sequential baseline {:.2}s)",
            Which::VizNet.name(),
            workload.len(),
            seq_wall_s
        ),
        &[
            "workers",
            "cache",
            "wall s",
            "real tab/s",
            "sim makespan us",
            "sim tab/s",
            "p50 us",
            "p99 us",
            "hit rate",
            "degraded cols",
        ],
        &rows,
    );

    if !smoke {
        let find = |workers: usize, cache: bool| {
            cells
                .iter()
                .find(|c| c.workers == workers && c.cache == cache)
                .expect("grid cell present")
        };
        // Scaling on the deterministic simulated makespan: retrieval and
        // per-column costs split across workers, so 4 workers must at
        // least halve the 1-worker makespan.
        let sim_speedup =
            find(1, false).sim_makespan_us as f64 / find(4, false).sim_makespan_us as f64;
        println!("sim speedup 1→4 workers (cache off): {sim_speedup:.2}x");
        assert!(
            sim_speedup >= 2.0,
            "expected ≥2x simulated speedup at 4 workers, got {sim_speedup:.2}x"
        );
        // Real wall-clock scaling is only observable with real cores.
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores >= 4 {
            let real_speedup = find(1, false).wall_s / find(4, false).wall_s;
            println!("real speedup 1→4 workers (cache off): {real_speedup:.2}x");
            assert!(
                real_speedup >= 1.5,
                "expected real speedup on a {cores}-core host, got {real_speedup:.2}x"
            );
        } else {
            eprintln!(
                "[serve] host has {cores} core(s): skipping real wall-clock speedup check \
                 (simulated makespan covers scaling)"
            );
        }
        // The cache must never make things slower in simulated time.
        for &workers in worker_grid {
            let (on, off) = (find(workers, true), find(workers, false));
            assert!(
                on.sim_makespan_us as f64 <= off.sim_makespan_us as f64 * 1.05,
                "cache-on slower than cache-off at {workers} workers: {} vs {}",
                on.sim_makespan_us,
                off.sim_makespan_us
            );
        }
    }

    println!("exp_serve: all assertions passed");
}
