//! Property tests for the sharded LRU retrieval cache: the slab-linked-list
//! [`Lru`] is checked against a naive recency-ordered reference model, and
//! [`CachingBackend`] counters must reconcile exactly with the lookup
//! stream.

use kglink_kg::{Entity, KgBuilder, NeSchema};
use kglink_search::{CacheConfig, CachingBackend, Deadline, EntitySearcher, KgBackend, Lru};
use proptest::prelude::*;

/// Naive LRU reference: a vec ordered most-recent-first.
struct ModelLru {
    entries: Vec<(u32, u32)>,
    capacity: usize,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru {
            entries: Vec::new(),
            capacity,
        }
    }

    fn get(&mut self, key: u32) -> Option<u32> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(entry.1)
    }

    fn put(&mut self, key: u32, value: u32) -> Option<(u32, u32)> {
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(pos);
            self.entries.insert(0, (key, value));
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            self.entries.pop()
        } else {
            None
        };
        self.entries.insert(0, (key, value));
        evicted
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The slab LRU agrees operation-for-operation with the naive model:
    /// same lookup results, same evictions (recency order), and the
    /// capacity bound never breaks.
    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..6,
        ops in proptest::collection::vec((0u8..2, 0u32..8, 0u32..1000), 1..60),
    ) {
        let mut lru = Lru::new(capacity);
        let mut model = ModelLru::new(capacity);
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut lookups = 0u64;
        for (op, key, value) in ops {
            match op {
                0 => {
                    lookups += 1;
                    let got = lru.get(&key).copied();
                    match got {
                        Some(_) => hits += 1,
                        None => misses += 1,
                    }
                    prop_assert_eq!(got, model.get(key), "get({}) diverged", key);
                }
                _ => {
                    let evicted = lru.put(key, value);
                    let model_evicted = model.put(key, value);
                    prop_assert_eq!(
                        evicted, model_evicted,
                        "eviction on put({}, {}) diverged from recency order", key, value
                    );
                    // Get-after-put must return exactly the value just put.
                    prop_assert_eq!(lru.get(&key).copied(), Some(value));
                    prop_assert_eq!(model.get(key), Some(value));
                }
            }
            prop_assert!(lru.len() <= capacity, "capacity exceeded: {} > {}", lru.len(), capacity);
            prop_assert_eq!(lru.len(), model.entries.len());
            prop_assert_eq!(lru.lru_key().copied(), model.entries.last().map(|&(k, _)| k));
        }
        prop_assert_eq!(hits + misses, lookups, "every lookup is a hit or a miss");
    }
}

fn tiny_searcher() -> EntitySearcher {
    let mut b = KgBuilder::new();
    let ty = b.add_type("Musician", None);
    for name in ["alpha", "beta", "gamma", "delta", "epsilon"] {
        b.add_instance(Entity::new(name, NeSchema::Person), ty);
    }
    EntitySearcher::build(&b.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// End-to-end over the backend decorator: for any query stream, every
    /// repeat of a query returns exactly what the first retrieval returned,
    /// hit + miss counts reconcile with the lookup total, and the entry
    /// count never exceeds capacity.
    #[test]
    fn caching_backend_is_transparent_and_bounded(
        queries in proptest::collection::vec("[a-e]{1,4}", 1..40),
        capacity in 1usize..6,
    ) {
        let searcher = tiny_searcher();
        let cached = CachingBackend::new(&searcher, CacheConfig { capacity, shards: 2 });
        for q in &queries {
            let direct = searcher
                .search_entities(q, 4, Deadline::UNBOUNDED)
                .expect("in-process searcher is infallible");
            let via_cache = cached
                .search_entities(q, 4, Deadline::UNBOUNDED)
                .expect("cache over infallible backend cannot fail");
            prop_assert_eq!(
                via_cache.hits, direct.hits,
                "cached candidates must be bit-identical to direct retrieval for {:?}", q
            );
        }
        let stats = cached.stats();
        prop_assert_eq!(stats.lookups(), queries.len() as u64);
        prop_assert_eq!(stats.hits + stats.misses, stats.lookups());
        prop_assert!(stats.entries <= stats.capacity);
        prop_assert_eq!(stats.insertions - stats.evictions, stats.entries as u64);
    }
}
