//! Property tests for the resilience layer: circuit-breaker discipline,
//! retry bounds, backoff shape, and fault-injection transparency at rate 0.

use kglink_kg::{Entity, KgBuilder, KnowledgeGraph, NeSchema};
use kglink_search::{
    backoff_delay_us, BreakerConfig, CircuitBreaker, Deadline, EntitySearcher, FaultConfig,
    FaultyBackend, KgBackend, ResilienceConfig, ResilientBackend, RetryBudget, RetryBudgetConfig,
};
use proptest::prelude::*;

fn tiny_graph() -> KnowledgeGraph {
    let mut b = KgBuilder::new();
    let musician = b.add_type("Musician", None);
    b.add_instance(Entity::new("Peter Steele", NeSchema::Person), musician);
    let city = b.add_type("City", None);
    b.add_instance(Entity::new("Springfield", NeSchema::Place), city);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // The breaker must never admit a call while Open and inside the
    // cooldown, for *any* interleaving of outcomes and time steps.
    #[test]
    fn breaker_never_serves_from_open_before_cooldown(
        events in proptest::collection::vec((0u64..30_000, 0u8..2), 1..80),
        cooldown in 1u64..200_000,
    ) {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            window: 8,
            min_samples: 2,
            failure_threshold: 0.5,
            cooldown_us: cooldown,
            halfopen_successes: 1,
        });
        let mut now = 0u64;
        for (dt, ok) in events {
            now += dt;
            let open_until = breaker.open_until_us();
            let admitted = breaker.allow(now);
            if let Some(until) = open_until {
                if now < until {
                    prop_assert!(!admitted, "admitted at {} while open until {}", now, until);
                } else {
                    prop_assert!(admitted, "cooldown elapsed at {} but still rejected", now);
                }
            }
            if admitted {
                breaker.record(now, ok == 1);
            }
        }
    }

    // The decorator never hits the inner backend more than
    // `1 + max_retries` times per query, at any fault rate.
    #[test]
    fn retry_count_bounded_by_config(
        rate in 0.0f64..1.0,
        max_retries in 0u32..5,
        n_queries in 1usize..25,
        seed in 0u64..1_000,
    ) {
        let graph = tiny_graph();
        let searcher = EntitySearcher::build(&graph);
        let faulty = FaultyBackend::new(&searcher, FaultConfig::with_fault_rate(seed, rate));
        let resilient = ResilientBackend::new(
            &faulty,
            ResilienceConfig { max_retries, ..Default::default() },
        );
        for i in 0..n_queries {
            let _ = resilient.search_entities(&format!("peter {i}"), 3, Deadline::UNBOUNDED);
        }
        prop_assert!(
            faulty.calls() <= n_queries as u64 * (1 + max_retries) as u64,
            "{} inner calls for {} queries with {} retries",
            faulty.calls(), n_queries, max_retries
        );
        let m = resilient.metrics();
        prop_assert!(m.retries <= m.queries * max_retries as u64);
    }

    // For any configuration and jitter draws, backoff delays are monotone
    // non-decreasing over attempts and never exceed the cap.
    #[test]
    fn backoff_monotone_and_capped(
        base in 1u64..5_000,
        mult_pct in 100u32..400,
        cap in 1u64..50_000,
        jitter in 0.0f64..1.5,
        draws in proptest::collection::vec(0.0f64..1.0, 2..12),
    ) {
        let config = ResilienceConfig {
            backoff_base_us: base,
            backoff_multiplier: f64::from(mult_pct) / 100.0,
            backoff_cap_us: cap,
            jitter,
            ..Default::default()
        };
        let delays: Vec<u64> = draws
            .iter()
            .enumerate()
            .map(|(attempt, &u)| backoff_delay_us(&config, attempt as u32, u))
            .collect();
        for w in delays.windows(2) {
            prop_assert!(w[0] <= w[1], "backoff not monotone: {:?}", delays);
        }
        for &d in &delays {
            prop_assert!(d <= cap, "delay {} exceeds cap {}", d, cap);
        }
    }

    // At fault rate 0 the injector is transparent: identical hits, never
    // truncated, never erroring.
    #[test]
    fn zero_fault_rate_is_transparent(
        queries in proptest::collection::vec("[a-z]{1,10}( [a-z]{1,10})?", 1..20),
        seed in 0u64..1_000,
    ) {
        let graph = tiny_graph();
        let searcher = EntitySearcher::build(&graph);
        let faulty = FaultyBackend::new(&searcher, FaultConfig::with_fault_rate(seed, 0.0));
        for q in &queries {
            let direct = searcher.search_entities(q, 5, Deadline::UNBOUNDED).unwrap();
            let via = faulty.search_entities(q, 5, Deadline::UNBOUNDED);
            prop_assert!(via.is_ok(), "fault injected at rate 0: {:?}", via);
            let via = via.unwrap();
            prop_assert_eq!(&via.hits, &direct.hits);
            prop_assert!(!via.truncated);
        }
    }

    // The token bucket never exceeds its cap and never grants more
    // lifetime retries than `initial + ratio * queries`, for arbitrary
    // interleavings of queries and retry attempts.
    #[test]
    fn retry_budget_tokens_never_exceed_cap_or_lifetime_bound(
        ops in proptest::collection::vec(0u8..2, 1..300),
        ratio_pct in 0u32..300,
        cap in 0u32..80,
        initial_pct in 0u32..100,
    ) {
        let cap = f64::from(cap);
        let config = RetryBudgetConfig {
            ratio: f64::from(ratio_pct) / 100.0,
            cap,
            initial: cap * f64::from(initial_pct) / 100.0,
        };
        let mut budget = RetryBudget::new(config.clone());
        let mut queries = 0u64;
        for op in ops {
            if op == 0 {
                budget.on_query();
                queries += 1;
            } else {
                budget.try_retry();
            }
            prop_assert!(budget.tokens() <= config.cap + 1e-9,
                "tokens {} exceed cap {}", budget.tokens(), config.cap);
            prop_assert!(budget.tokens() >= 0.0);
            let lifetime_bound = config.initial + config.ratio * queries as f64;
            prop_assert!(budget.granted() as f64 <= lifetime_bound + 1e-9,
                "{} grants exceed bound {}", budget.granted(), lifetime_bound);
        }
    }
}
