//! Entity-level retrieval over a knowledge graph.

use crate::backend::{Deadline, KgBackend, RetrievalError, SearchOutcome};
use crate::bm25::Bm25Params;
use crate::index::{InvertedIndex, SearchHit};
use kglink_kg::{EntityId, KnowledgeGraph};

/// A BM25 searcher over the entities of a knowledge graph.
///
/// This is the reproduction's stand-in for the Elasticsearch deployment in
/// the paper's experimental setup ("We used Elasticsearch … to index the
/// WikiData KG and generate the BM25 entity linking scores for the KG entity
/// callback"). Labels and aliases are indexed; descriptions are optional
/// (off by default — WikiData linking in the paper matches against entity
/// labels, and indexing long descriptions dilutes length normalization).
#[derive(Debug)]
pub struct EntitySearcher {
    index: InvertedIndex,
}

impl EntitySearcher {
    /// Index every entity of `graph` (labels + aliases).
    pub fn build(graph: &KnowledgeGraph) -> Self {
        Self::build_with(graph, Bm25Params::default(), false)
    }

    /// Index with explicit parameters; `index_descriptions` additionally
    /// indexes the description field.
    pub fn build_with(graph: &KnowledgeGraph, params: Bm25Params, index_descriptions: bool) -> Self {
        let mut index = InvertedIndex::new(params);
        for (id, entity) in graph.entities() {
            for text in entity.searchable_texts() {
                index.add_document(id.0, text);
            }
            if index_descriptions && !entity.description.is_empty() {
                index.add_document(id.0, &entity.description);
            }
        }
        index.finish();
        EntitySearcher { index }
    }

    /// Retrieve up to `k` candidate entities for a cell mention, with BM25
    /// linking scores, best first.
    pub fn link_mention(&self, mention: &str, k: usize) -> Vec<(EntityId, f32)> {
        self.index
            .search(mention, k)
            .into_iter()
            .map(|SearchHit { doc, score }| (EntityId(doc), score))
            .collect()
    }

    /// BM25 score of one specific entity for a mention, if they share terms.
    pub fn score(&self, mention: &str, entity: EntityId) -> Option<f32> {
        self.index.score_doc(mention, entity.0)
    }

    /// The underlying index (for statistics).
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }
}

/// The in-process searcher is an infallible, zero-latency backend: the
/// local BM25 lookup cannot time out or drop a shard. Fault behaviour is
/// layered on by the wrappers in [`crate::resilience`].
impl KgBackend for EntitySearcher {
    // kglink-lint: allow(deadline-drop) — the in-process BM25 lookup is
    // synchronous and zero-latency by construction; there is no wait for a
    // deadline to bound, which is why the parameter is `_deadline`.
    fn search_entities(
        &self,
        query: &str,
        top_k: usize,
        _deadline: Deadline,
    ) -> Result<SearchOutcome, RetrievalError> {
        Ok(SearchOutcome {
            hits: self.link_mention(query, top_k),
            latency_us: 0,
            truncated: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_kg::{Entity, KgBuilder, NeSchema};

    fn graph() -> (KnowledgeGraph, EntityId, EntityId, EntityId) {
        let mut b = KgBuilder::new();
        let musician = b.add_type("Musician", None);
        let steele = b.add_instance(
            Entity::new("Peter Steele", NeSchema::Person).with_alias("P. Steele"),
            musician,
        );
        let album_ty = b.add_type("Album", None);
        let rust_album = b.add_instance(Entity::new("Rust", NeSchema::Work), album_ty);
        (b.build(), musician, steele, rust_album)
    }

    #[test]
    fn link_mention_finds_exact_entity() {
        let (g, _, steele, _) = graph();
        let s = EntitySearcher::build(&g);
        let hits = s.link_mention("Peter Steele", 5);
        assert_eq!(hits[0].0, steele);
        assert!(hits[0].1 > 0.0);
    }

    #[test]
    fn aliases_are_searchable() {
        let (g, _, steele, _) = graph();
        let s = EntitySearcher::build(&g);
        let hits = s.link_mention("P. Steele", 5);
        assert!(hits.iter().any(|&(e, _)| e == steele));
    }

    #[test]
    fn unrelated_mentions_return_empty() {
        let (g, ..) = graph();
        let s = EntitySearcher::build(&g);
        assert!(s.link_mention("cucumber sandwich", 5).is_empty());
    }

    #[test]
    fn score_is_consistent_with_ranking() {
        let (g, _, steele, _) = graph();
        let s = EntitySearcher::build(&g);
        let hits = s.link_mention("Steele", 5);
        let direct = s.score("Steele", steele).unwrap();
        let ranked = hits.iter().find(|&&(e, _)| e == steele).unwrap().1;
        assert!((direct - ranked).abs() < 1e-5);
    }

    #[test]
    fn descriptions_can_be_indexed() {
        let mut b = KgBuilder::new();
        let ty = b.add_type("Scientist", None);
        let e = b.add_instance(
            Entity::new("Ada Example", NeSchema::Person).with_description("pioneering computer scientist"),
            ty,
        );
        let g = b.build();
        let without = EntitySearcher::build(&g);
        assert!(without.link_mention("pioneering computer", 5).is_empty());
        let with = EntitySearcher::build_with(&g, Bm25Params::default(), true);
        let hits = with.link_mention("pioneering computer", 5);
        assert!(hits.iter().any(|&(id, _)| id == e));
    }
}
