//! Fallible, deadline-aware retrieval abstraction over KG entity search.
//!
//! The paper's entity callback is a *remote* Elasticsearch deployment; at
//! production scale that call can be slow, flaky, or down. [`KgBackend`]
//! makes the failure surface explicit: every retrieval carries a
//! [`Deadline`] and returns either a [`SearchOutcome`] (hits plus the
//! simulated service latency) or a typed [`RetrievalError`]. The in-process
//! [`EntitySearcher`](crate::EntitySearcher) implements the trait
//! infallibly; the [`resilience`](crate::resilience) module layers fault
//! injection and a retry/circuit-breaker decorator on top of any backend.
//!
//! Time is *simulated*: latencies are microsecond values threaded through
//! return values, never real sleeps, so chaos tests and experiments stay
//! fast and bit-for-bit deterministic.

use kglink_kg::EntityId;
use std::fmt;

/// Per-query wall-clock budget, in simulated microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    budget_us: u64,
}

impl Deadline {
    /// No budget: the call may take arbitrarily long.
    pub const UNBOUNDED: Deadline = Deadline { budget_us: u64::MAX };

    pub fn from_us(budget_us: u64) -> Self {
        Deadline { budget_us }
    }

    pub fn budget_us(&self) -> u64 {
        self.budget_us
    }

    /// The tighter of this deadline and `other_us`.
    pub fn tighten(self, other_us: u64) -> Self {
        Deadline {
            budget_us: self.budget_us.min(other_us),
        }
    }

    pub fn is_unbounded(&self) -> bool {
        self.budget_us == u64::MAX
    }
}

/// Why a retrieval call failed. Everything except [`CircuitOpen`] and
/// [`RetriesExhausted`] describes a single attempt; the resilient decorator
/// wraps the final attempt's error in [`RetriesExhausted`] when it gives up.
///
/// [`CircuitOpen`]: RetrievalError::CircuitOpen
/// [`RetriesExhausted`]: RetrievalError::RetriesExhausted
#[derive(Debug, Clone, PartialEq)]
pub enum RetrievalError {
    /// The simulated service time exceeded the caller's deadline.
    Timeout { needed_us: u64, budget_us: u64 },
    /// A transient backend fault (dropped connection, 5xx, shard hiccup).
    Transient,
    /// The backend is hard-down (outage window).
    Unavailable,
    /// The circuit breaker is open; the call was not attempted.
    CircuitOpen { cooldown_remaining_us: u64 },
    /// All retry attempts failed; `last` is the final attempt's error.
    RetriesExhausted {
        attempts: u32,
        last: Box<RetrievalError>,
    },
}

impl RetrievalError {
    /// Whether a retry could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RetrievalError::Timeout { .. }
                | RetrievalError::Transient
                | RetrievalError::Unavailable
        )
    }
}

impl fmt::Display for RetrievalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetrievalError::Timeout {
                needed_us,
                budget_us,
            } => write!(f, "retrieval timed out ({needed_us}us needed, {budget_us}us budget)"),
            RetrievalError::Transient => write!(f, "transient retrieval fault"),
            RetrievalError::Unavailable => write!(f, "retrieval backend unavailable"),
            RetrievalError::CircuitOpen {
                cooldown_remaining_us,
            } => write!(f, "circuit breaker open ({cooldown_remaining_us}us cooldown remaining)"),
            RetrievalError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for RetrievalError {}

/// One successful retrieval: scored hits plus service-time accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Candidate entities with BM25 linking scores, best first.
    pub hits: Vec<(EntityId, f32)>,
    /// Simulated service latency of the whole call (including any retries
    /// and backoff when the call went through a resilient decorator).
    pub latency_us: u64,
    /// True when the backend returned fewer hits than it had (partial
    /// results, e.g. a shard dropped out mid-query).
    pub truncated: bool,
}

/// A knowledge-graph entity-retrieval backend.
///
/// Implementations: [`EntitySearcher`](crate::EntitySearcher) (in-process,
/// infallible, zero latency), [`FaultyBackend`](crate::resilience::FaultyBackend)
/// (deterministic fault injection), and
/// [`ResilientBackend`](crate::resilience::ResilientBackend) (retry +
/// circuit breaker). `kglink-core` consumes the trait object, so any stack
/// of decorators threads through the whole pipeline.
pub trait KgBackend: Send + Sync {
    /// Retrieve up to `top_k` candidate entities for `query` within
    /// `deadline`.
    fn search_entities(
        &self,
        query: &str,
        top_k: usize,
        deadline: Deadline,
    ) -> Result<SearchOutcome, RetrievalError>;

    /// Infallible convenience used by pure-KG voting baselines: a failed
    /// retrieval degrades to "no candidates" — exactly the paper's
    /// no-linkage semantics.
    fn link_mention(&self, mention: &str, k: usize) -> Vec<(EntityId, f32)> {
        self.search_entities(mention, k, Deadline::UNBOUNDED)
            .map(|outcome| outcome.hits)
            .unwrap_or_default()
    }
}

impl<B: KgBackend + ?Sized> KgBackend for &B {
    fn search_entities(
        &self,
        query: &str,
        top_k: usize,
        deadline: Deadline,
    ) -> Result<SearchOutcome, RetrievalError> {
        (**self).search_entities(query, top_k, deadline)
    }
}

/// Owned shared backends (the serving layer hands `Arc<dyn KgBackend>`
/// stacks to worker threads) delegate like references do.
impl<B: KgBackend + ?Sized> KgBackend for std::sync::Arc<B> {
    fn search_entities(
        &self,
        query: &str,
        top_k: usize,
        deadline: Deadline,
    ) -> Result<SearchOutcome, RetrievalError> {
        (**self).search_entities(query, top_k, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_tighten_takes_minimum() {
        let d = Deadline::from_us(500).tighten(200);
        assert_eq!(d.budget_us(), 200);
        let d = Deadline::UNBOUNDED.tighten(300);
        assert_eq!(d.budget_us(), 300);
        assert!(!d.is_unbounded());
        assert!(Deadline::UNBOUNDED.is_unbounded());
    }

    #[test]
    fn retryability_classification() {
        assert!(RetrievalError::Transient.is_retryable());
        assert!(RetrievalError::Unavailable.is_retryable());
        assert!(RetrievalError::Timeout {
            needed_us: 10,
            budget_us: 5
        }
        .is_retryable());
        assert!(!RetrievalError::CircuitOpen {
            cooldown_remaining_us: 1
        }
        .is_retryable());
        assert!(!RetrievalError::RetriesExhausted {
            attempts: 3,
            last: Box::new(RetrievalError::Transient)
        }
        .is_retryable());
    }

    #[test]
    fn errors_display_their_context() {
        let e = RetrievalError::RetriesExhausted {
            attempts: 4,
            last: Box::new(RetrievalError::Timeout {
                needed_us: 9000,
                budget_us: 5000,
            }),
        };
        let msg = e.to_string();
        assert!(msg.contains("4 attempts"));
        assert!(msg.contains("9000us"));
    }
}
