//! Inverted index with BM25 ranking.

use crate::bm25::Bm25Params;
use crate::tokenize::{tokenize, tokenize_unique};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::{BTreeMap, HashMap};

/// Index-local document identifier (the caller decides what it maps to; the
/// [`crate::EntitySearcher`] uses entity ids).
pub type DocId = u32;

/// One ranked retrieval result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    pub doc: DocId,
    pub score: f32,
}

#[derive(Debug, Clone, Copy)]
struct Posting {
    doc: DocId,
    tf: u32,
}

/// An inverted index over tokenized documents, ranked with Okapi BM25.
///
/// Built once, then queried concurrently (all query methods take `&self`).
/// Documents are added through [`IndexBuilder`]-style `add_document` calls
/// followed by [`InvertedIndex::finish`]; `finish` freezes corpus statistics.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    /// Token count per document, indexed directly by [`DocId`]. Zero means
    /// "no such document" (a document with only empty fields is never
    /// registered). Dense because callers use dense ids — the
    /// [`crate::EntitySearcher`] maps entity ids straight to doc ids — so a
    /// flat `Vec` replaces the former `HashMap` at a quarter of the memory
    /// and with deterministic iteration for free.
    doc_lens: Vec<u32>,
    /// Number of distinct registered documents (`doc_lens` entries > 0).
    n_docs: usize,
    total_len: u64,
    params: Bm25Params,
    finished: bool,
}

impl InvertedIndex {
    /// Create an empty index with the given parameters.
    pub fn new(params: Bm25Params) -> Self {
        InvertedIndex {
            params,
            ..Default::default()
        }
    }

    /// Add a document. `text` is analyzed with the standard tokenizer.
    /// Adding the same `doc` id twice appends to its postings (multi-field
    /// documents: label + aliases are separate `add_document` calls).
    ///
    /// # Panics
    /// Panics if called after [`InvertedIndex::finish`].
    pub fn add_document(&mut self, doc: DocId, text: &str) {
        assert!(!self.finished, "index is frozen");
        let tokens = tokenize(text);
        if tokens.is_empty() {
            return;
        }
        if self.doc_lens.len() <= doc as usize {
            self.doc_lens.resize(doc as usize + 1, 0);
        }
        if self.doc_lens[doc as usize] == 0 {
            self.n_docs += 1;
        }
        self.doc_lens[doc as usize] += tokens.len() as u32;
        self.total_len += tokens.len() as u64;
        // BTreeMap so per-document term counts are visited in term order:
        // postings lists grow identically run to run even before finish()
        // canonicalizes them.
        let mut tf: BTreeMap<&str, u32> = BTreeMap::new();
        for t in &tokens {
            *tf.entry(t.as_str()).or_insert(0) += 1;
        }
        for (term, count) in tf {
            let list = self.postings.entry(term.to_string()).or_default();
            if let Some(last) = list.last_mut() {
                if last.doc == doc {
                    last.tf += count;
                    continue;
                }
            }
            list.push(Posting { doc, tf: count });
        }
    }

    /// Freeze the index: sorts postings by document id for deterministic
    /// iteration and enables querying.
    pub fn finish(&mut self) {
        // kglink-lint: allow(nondeterminism) — order-insensitive: each list
        // is canonicalized (sorted by doc, duplicates merged) independently;
        // the visit order across lists can affect nothing observable.
        for list in self.postings.values_mut() {
            list.sort_unstable_by_key(|p| p.doc);
            // Merge duplicate (doc) entries produced by multiple fields.
            let mut merged: Vec<Posting> = Vec::with_capacity(list.len());
            for p in list.iter() {
                if let Some(last) = merged.last_mut() {
                    if last.doc == p.doc {
                        last.tf += p.tf;
                        continue;
                    }
                }
                merged.push(*p);
            }
            *list = merged;
        }
        // Freeze the dense length table at its final extent: queries index
        // it directly, and nothing grows after this point.
        self.doc_lens.shrink_to_fit();
        self.finished = true;
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.n_docs
    }

    /// Average document length in tokens (the paper's `avgwl`).
    pub fn avg_doc_len(&self) -> f32 {
        if self.n_docs == 0 {
            0.0
        } else {
            self.total_len as f32 / self.n_docs as f32
        }
    }

    /// Token count of document `doc`, or `None` if it was never added.
    pub fn doc_len(&self, doc: DocId) -> Option<u32> {
        match self.doc_lens.get(doc as usize) {
            Some(&len) if len > 0 => Some(len),
            _ => None,
        }
    }

    /// Number of documents containing `term` (the paper's `n(w)`).
    pub fn doc_freq(&self, term: &str) -> usize {
        self.postings.get(term).map_or(0, Vec::len)
    }

    /// BM25 score of a single document for `query`, or `None` if the
    /// document shares no terms with the query.
    pub fn score_doc(&self, query: &str, doc: DocId) -> Option<f32> {
        let terms = tokenize_unique(query);
        let n = self.doc_count();
        let avg = self.avg_doc_len().max(1e-6);
        let len = self.doc_len(doc)? as f32;
        let mut score = 0.0;
        let mut matched = false;
        for term in &terms {
            let Some(list) = self.postings.get(term) else {
                continue;
            };
            if let Ok(pos) = list.binary_search_by_key(&doc, |p| p.doc) {
                let idf = Bm25Params::idf(n, list.len());
                score += self.params.term_score(idf, list[pos].tf as f32, len, avg);
                matched = true;
            }
        }
        matched.then_some(score)
    }

    /// Top-`k` documents for `query`, ranked by BM25 score descending.
    /// Ties break toward the lower document id for determinism.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        debug_assert!(self.finished, "call finish() before searching");
        let terms = tokenize_unique(query);
        if terms.is_empty() || k == 0 {
            return Vec::new();
        }
        let n = self.doc_count();
        let avg = self.avg_doc_len().max(1e-6);
        let mut acc: HashMap<DocId, f32> = HashMap::new();
        for term in &terms {
            let Some(list) = self.postings.get(term) else {
                continue;
            };
            let idf = Bm25Params::idf(n, list.len());
            for p in list {
                let len = self.doc_lens[p.doc as usize] as f32;
                *acc.entry(p.doc).or_insert(0.0) +=
                    self.params.term_score(idf, p.tf as f32, len, avg);
            }
        }
        top_k(acc, k)
    }
}

/// Min-heap entry ordered so the heap keeps the k *best* hits.
struct HeapEntry(SearchHit);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want to pop the worst.
        // total_cmp makes this a total order, which is what guarantees the
        // k survivors are insertion-order independent.
        other
            .0
            .score
            .total_cmp(&self.0.score)
            // On equal scores pop the *larger* doc id first, keeping lower ids.
            .then_with(|| self.0.doc.cmp(&other.0.doc))
    }
}

fn top_k(acc: HashMap<DocId, f32>, k: usize) -> Vec<SearchHit> {
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    // kglink-lint: allow(nondeterminism) — order-insensitive: HeapEntry's
    // Ord is total (total_cmp, then doc id), so a size-bounded heap keeps
    // exactly the k greatest entries whatever order they arrive in; the
    // final sort below fixes the emitted order.
    for (doc, score) in acc {
        heap.push(HeapEntry(SearchHit { doc, score }));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut hits: Vec<SearchHit> = heap.into_iter().map(|e| e.0).collect();
    hits.sort_unstable_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.doc.cmp(&b.doc))
    });
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new(Bm25Params::default());
        idx.add_document(0, "Peter Steele");
        idx.add_document(1, "Peter Steele American musician");
        idx.add_document(2, "Rust");
        idx.add_document(3, "Rust album by Peter Steele");
        idx.add_document(4, "Steeleville city");
        idx.finish();
        idx
    }

    #[test]
    fn exact_label_match_ranks_first() {
        let idx = small_index();
        let hits = idx.search("Peter Steele", 3);
        assert_eq!(hits[0].doc, 0, "shortest exact match wins: {hits:?}");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn no_match_returns_empty() {
        let idx = small_index();
        assert!(idx.search("zzz qqq", 5).is_empty());
        assert!(idx.search("", 5).is_empty());
        assert!(idx.search("peter", 0).is_empty());
    }

    #[test]
    fn k_limits_results() {
        let idx = small_index();
        let hits = idx.search("peter", 2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn multi_field_documents_merge() {
        let mut idx = InvertedIndex::new(Bm25Params::default());
        idx.add_document(7, "Power forward");
        idx.add_document(7, "PF");
        idx.finish();
        assert_eq!(idx.doc_count(), 1);
        let hits = idx.search("pf", 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 7);
    }

    #[test]
    fn score_doc_matches_search_scores() {
        let idx = small_index();
        let hits = idx.search("peter steele", 5);
        for h in &hits {
            let s = idx.score_doc("peter steele", h.doc).unwrap();
            assert!((s - h.score).abs() < 1e-5);
        }
        assert_eq!(idx.score_doc("peter steele", 2), None);
    }

    #[test]
    fn deterministic_tie_break_by_doc_id() {
        let mut idx = InvertedIndex::new(Bm25Params::default());
        idx.add_document(10, "alpha");
        idx.add_document(3, "alpha");
        idx.add_document(25, "alpha");
        idx.finish();
        let hits = idx.search("alpha", 2);
        assert_eq!(hits.iter().map(|h| h.doc).collect::<Vec<_>>(), vec![3, 10]);
    }

    #[test]
    fn corpus_statistics() {
        let idx = small_index();
        assert_eq!(idx.doc_count(), 5);
        assert!(idx.avg_doc_len() > 1.0);
        assert_eq!(idx.doc_freq("peter"), 3);
        assert_eq!(idx.doc_freq("nonexistent"), 0);
    }

    #[test]
    fn doc_len_distinguishes_missing_and_sparse_ids() {
        let mut idx = InvertedIndex::new(Bm25Params::default());
        idx.add_document(2, "alpha beta");
        idx.add_document(2, "gamma");
        idx.add_document(9, "delta");
        idx.finish();
        // Multi-field lengths accumulate; gaps in the id space and ids past
        // the table's extent are both "no such document".
        assert_eq!(idx.doc_len(2), Some(3));
        assert_eq!(idx.doc_len(9), Some(1));
        assert_eq!(idx.doc_len(0), None);
        assert_eq!(idx.doc_len(5), None);
        assert_eq!(idx.doc_len(100), None);
        assert_eq!(idx.doc_count(), 2);
        assert!((idx.avg_doc_len() - 2.0).abs() < 1e-6);
    }
}
