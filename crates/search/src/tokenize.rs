//! The index/query analyzer.
//!
//! Matches what Elasticsearch's `standard` analyzer does to entity labels:
//! Unicode-aware lowercasing and splitting on non-alphanumeric boundaries.
//! Digits are kept as tokens so gene symbols like `BRC1` survive (split into
//! `brc` + `1` would lose retrieval precision, so alphanumeric runs stay
//! together).

/// Split `text` into lowercase alphanumeric tokens.
///
/// A token is a maximal run of alphanumeric characters; everything else is a
/// separator. Output preserves input order and may contain duplicates.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lower in ch.to_lowercase() {
                current.push(lower);
            }
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Tokenize and deduplicate, preserving first-occurrence order. Queries use
/// this so a repeated word does not double-count BM25 contributions.
pub fn tokenize_unique(text: &str) -> Vec<String> {
    let mut tokens = tokenize(text);
    let mut seen = std::collections::HashSet::with_capacity(tokens.len());
    tokens.retain(|t| seen.insert(t.clone()));
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        assert_eq!(tokenize("Peter Steele"), vec!["peter", "steele"]);
        assert_eq!(tokenize("P. Steele-Jones"), vec!["p", "steele", "jones"]);
    }

    #[test]
    fn keeps_alphanumeric_runs_together() {
        assert_eq!(tokenize("BRC1"), vec!["brc1"]);
        assert_eq!(tokenize("alpha-2 synthase"), vec!["alpha", "2", "synthase"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs_yield_nothing() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- !!! ---").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Österreich"), vec!["österreich"]);
    }

    #[test]
    fn unique_preserves_order() {
        assert_eq!(
            tokenize_unique("the cat and the hat"),
            vec!["the", "cat", "and", "hat"]
        );
    }
}
