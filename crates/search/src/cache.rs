//! Sharded LRU caching for KG entity retrieval.
//!
//! The paper's entity callback is the dominant per-column cost of Part 1,
//! and real table corpora repeat cell mentions heavily (the same city,
//! person, or team appears in thousands of tables). [`CachingBackend`]
//! memoizes successful [`KgBackend`] retrievals behind a sharded
//! [`Lru`] keyed by the *normalized* mention text plus `top_k`, so both
//! the serving layer (`kglink-serve`) and training-time preprocessing
//! reuse retrievals instead of re-running BM25.
//!
//! Correctness argument: the cache key normalizes a query with the same
//! analyzer the inverted index applies ([`tokenize`]), so two queries that
//! normalize equal are guaranteed to produce identical BM25 results —
//! a cache hit returns bit-for-bit what the miss path would have computed.
//! Errors are never cached (a transient fault must not poison the key),
//! and a cache hit consumes zero simulated service time.
//!
//! The decorator composes freely with the resilience layer: *over* a
//! [`ResilientBackend`](crate::resilience::ResilientBackend) it shields
//! the breaker from repeated mentions; *under* one it caches only what the
//! inner backend actually served.

use crate::backend::{Deadline, KgBackend, RetrievalError, SearchOutcome};
use crate::tokenize::tokenize;
use kglink_kg::EntityId;
use kglink_obs::Tracer;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

const NIL: usize = usize::MAX;

/// A fixed-capacity least-recently-used map.
///
/// Classic slab + intrusive doubly-linked list: every operation is O(1).
/// `get` and `put` both count as a *use*; `peek` does not. Eviction removes
/// the least recently used entry and returns it to the caller.
#[derive(Debug)]
pub struct Lru<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<LruNode<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

#[derive(Debug)]
struct LruNode<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        Lru {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn node(&self, idx: usize) -> &LruNode<K, V> {
        // kglink-lint: allow(panic-in-lib) — structural slab invariant:
        // every index stored in `map` or the recency list points at an
        // occupied slot; a None here is a linked-list bug, not a condition.
        self.slab[idx].as_ref().expect("live node")
    }

    fn node_mut(&mut self, idx: usize) -> &mut LruNode<K, V> {
        // kglink-lint: allow(panic-in-lib) — same slab invariant as `node`.
        self.slab[idx].as_mut().expect("live node")
    }

    /// Unlink `idx` from the recency list.
    fn detach(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.node(idx);
            (n.prev, n.next)
        };
        if prev != NIL {
            self.node_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.node_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Link `idx` as the most recently used entry.
    fn attach_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(idx);
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.node_mut(old_head).prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    /// Look up `key` and mark it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        Some(&self.node(idx).value)
    }

    /// Look up `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.node(idx).value)
    }

    /// The key that would be evicted next (least recently used).
    pub fn lru_key(&self) -> Option<&K> {
        (self.tail != NIL).then(|| &self.node(self.tail).key)
    }

    /// Remove and return the least recently used entry, or `None` when the
    /// cache is empty. Weight-bounded caches (the store's block cache keeps
    /// *bytes*, not entries, under a budget) evict through this in a loop
    /// after each insert.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let tail = self.tail;
        self.detach(tail);
        // kglink-lint: allow(panic-in-lib) — same slab invariant as `node`:
        // a non-NIL tail always points at an occupied slot.
        let node = self.slab[tail].take().expect("live tail");
        self.map.remove(&node.key);
        self.free.push(tail);
        Some((node.key, node.value))
    }

    /// Insert or replace `key`, marking it most recently used. Returns the
    /// evicted `(key, value)` when the insert pushed out the LRU entry.
    pub fn put(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.node_mut(idx).value = value;
            self.detach(idx);
            self.attach_front(idx);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let tail = self.tail;
            self.detach(tail);
            // kglink-lint: allow(panic-in-lib) — `map` is non-empty here, so
            // the list has a live tail; same structural invariant as `node`.
            let node = self.slab[tail].take().expect("live tail");
            self.map.remove(&node.key);
            self.free.push(tail);
            Some((node.key, node.value))
        } else {
            None
        };
        let node = LruNode {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(node);
                i
            }
            None => {
                self.slab.push(Some(node));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }
}

/// Tuning for a [`CachingBackend`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total entries across all shards.
    pub capacity: usize,
    /// Number of independently locked shards (≥ 1). More shards means less
    /// lock contention between concurrent workers.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 4096,
            shards: 8,
        }
    }
}

/// Point-in-time counters of a [`CachingBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that went to the inner backend.
    pub misses: u64,
    /// Successful retrievals stored.
    pub insertions: u64,
    /// Entries pushed out by capacity pressure.
    pub evictions: u64,
    /// Live entries across all shards.
    pub entries: usize,
    /// Configured total capacity.
    pub capacity: usize,
}

impl CacheStats {
    /// Total lookups (always `hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache, in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Normalize a mention with the index analyzer: two mentions that normalize
/// equal are guaranteed identical BM25 results, which makes them safe to
/// share a cache entry.
pub fn normalize_mention(query: &str) -> String {
    tokenize(query).join(" ")
}

type CacheKey = (String, usize);

#[derive(Debug, Clone)]
struct CachedEntry {
    hits: Vec<(EntityId, f32)>,
    truncated: bool,
}

/// A [`KgBackend`] decorator that memoizes successful retrievals in a
/// sharded LRU keyed by `(normalized mention, top_k)`.
///
/// * A hit returns the stored hit list with **zero** simulated latency.
/// * A miss delegates to the inner backend under the caller's deadline and
///   stores only successful outcomes — errors pass through uncached.
/// * Shards are locked independently and never held across the inner call,
///   so concurrent workers only contend on the key they share.
#[derive(Debug)]
pub struct CachingBackend<B> {
    inner: B,
    shards: Vec<Mutex<Lru<CacheKey, CachedEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
    tracer: Tracer,
}

impl<B: KgBackend> CachingBackend<B> {
    pub fn new(inner: B, config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard = config.capacity.div_ceil(shards).max(1);
        CachingBackend {
            inner,
            shards: (0..shards).map(|_| Mutex::new(Lru::new(per_shard))).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity: per_shard * shards,
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer: every lookup increments the `cache.hit` or
    /// `cache.miss` counter (and emits the matching event).
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Lru<CacheKey, CachedEntry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Cache-only lookup: answer from a stored entry or return `None`
    /// without ever consulting the inner backend. This is the serving
    /// layer's brownout rung 1 — under overload it keeps serving whatever
    /// the cache already holds (bit-identical to the miss path that
    /// populated it, zero simulated latency) and lets misses degrade to
    /// the no-linkage path instead of spending backend capacity. Counts
    /// as a normal hit or miss in [`stats`](Self::stats).
    pub fn lookup_cached(&self, query: &str, top_k: usize) -> Option<SearchOutcome> {
        let key = (normalize_mention(query), top_k);
        let found = self
            .shard_for(&key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .map(|entry| SearchOutcome {
                hits: entry.hits.clone(),
                latency_us: 0,
                truncated: entry.truncated,
            });
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.tracer.incr("cache.hit", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.tracer.incr("cache.miss", 1);
        }
        found
    }

    /// Counter snapshot. `entries` walks every shard, so don't call it on a
    /// hot path.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
                .sum(),
            capacity: self.capacity,
        }
    }
}

impl<B: KgBackend> KgBackend for CachingBackend<B> {
    fn search_entities(
        &self,
        query: &str,
        top_k: usize,
        deadline: Deadline,
    ) -> Result<SearchOutcome, RetrievalError> {
        let key = (normalize_mention(query), top_k);
        let shard = self.shard_for(&key);
        // Shard locks are never held across the inner backend call, so a
        // panicking backend cannot poison them mid-mutation; any poison
        // came from a panic elsewhere on a worker's stack, and the LRU is
        // consistent at every lock release. Recover instead of cascading.
        if let Some(entry) = shard
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.tracer.incr("cache.hit", 1);
            return Ok(SearchOutcome {
                hits: entry.hits.clone(),
                latency_us: 0,
                truncated: entry.truncated,
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.tracer.incr("cache.miss", 1);
        // The shard lock is *not* held across the inner call: a slow or
        // faulty backend must not serialize unrelated lookups. Two workers
        // racing on the same fresh key both miss; the second insert is a
        // no-op value replacement with an identical result.
        let outcome = self.inner.search_entities(query, top_k, deadline)?;
        let entry = CachedEntry {
            hits: outcome.hits.clone(),
            truncated: outcome.truncated,
        };
        if shard
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .put(key, entry)
            .is_some()
        {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{FaultConfig, FaultyBackend};
    use crate::EntitySearcher;
    use kglink_kg::{Entity, KgBuilder, NeSchema};

    fn searcher() -> EntitySearcher {
        let mut b = KgBuilder::new();
        let ty = b.add_type("Musician", None);
        for name in ["Peter Steele", "Anna Kovacs", "Peter Banks", "Peter Gabriel"] {
            b.add_instance(Entity::new(name, NeSchema::Person), ty);
        }
        EntitySearcher::build(&b.build())
    }

    #[test]
    fn lru_basic_get_put_evict() {
        let mut lru = Lru::new(2);
        assert!(lru.is_empty());
        assert_eq!(lru.put("a", 1), None);
        assert_eq!(lru.put("b", 2), None);
        assert_eq!(lru.get(&"a"), Some(&1)); // "b" is now LRU
        assert_eq!(lru.lru_key(), Some(&"b"));
        assert_eq!(lru.put("c", 3), Some(("b", 2)));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.peek(&"a"), Some(&1));
        // Replacing a key touches it but never evicts.
        assert_eq!(lru.put("a", 9), None);
        assert_eq!(lru.get(&"a"), Some(&9));
    }

    #[test]
    fn pop_lru_drains_in_recency_order() {
        let mut lru = Lru::new(3);
        lru.put("a", 1);
        lru.put("b", 2);
        lru.put("c", 3);
        lru.get(&"a"); // order (oldest first): b, c, a
        assert_eq!(lru.pop_lru(), Some(("b", 2)));
        assert_eq!(lru.pop_lru(), Some(("c", 3)));
        assert_eq!(lru.pop_lru(), Some(("a", 1)));
        assert_eq!(lru.pop_lru(), None);
        assert!(lru.is_empty());
        // The slab slots are recycled: inserting after a drain works.
        lru.put("d", 4);
        assert_eq!(lru.get(&"d"), Some(&4));
    }

    #[test]
    fn cache_hit_returns_identical_candidates_with_zero_latency() {
        let s = searcher();
        let cached = CachingBackend::new(&s, CacheConfig::default());
        let direct = s.search_entities("Peter", 5, Deadline::UNBOUNDED).unwrap();
        let miss = cached.search_entities("Peter", 5, Deadline::UNBOUNDED).unwrap();
        let hit = cached.search_entities("Peter", 5, Deadline::UNBOUNDED).unwrap();
        assert_eq!(miss.hits, direct.hits);
        assert_eq!(hit.hits, direct.hits, "hit must be bit-identical to the miss path");
        assert_eq!(hit.latency_us, 0, "a cache hit is free in simulated time");
        let stats = cached.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn normalized_mentions_share_an_entry() {
        let s = searcher();
        let cached = CachingBackend::new(&s, CacheConfig::default());
        let a = cached
            .search_entities("Peter Steele", 5, Deadline::UNBOUNDED)
            .unwrap();
        let b = cached
            .search_entities("  PETER   steele ", 5, Deadline::UNBOUNDED)
            .unwrap();
        assert_eq!(a.hits, b.hits);
        let stats = cached.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "case/whitespace variants hit");
        // Different top_k is a different key: the hit list may differ.
        cached
            .search_entities("Peter Steele", 2, Deadline::UNBOUNDED)
            .unwrap();
        assert_eq!(cached.stats().misses, 2);
    }

    #[test]
    fn errors_are_never_cached() {
        let s = searcher();
        // Fails every call until call index 8, then recovers.
        let flaky = FaultyBackend::new(&s, FaultConfig::healthy(3).with_outage(0, 8));
        let cached = CachingBackend::new(&flaky, CacheConfig::default());
        for _ in 0..8 {
            assert!(cached
                .search_entities("Peter", 3, Deadline::UNBOUNDED)
                .is_err());
        }
        assert_eq!(cached.stats().entries, 0, "failures must not poison the cache");
        let ok = cached
            .search_entities("Peter", 3, Deadline::UNBOUNDED)
            .expect("backend recovered");
        assert!(!ok.hits.is_empty());
        assert_eq!(cached.stats().entries, 1);
        // Now served from cache even if the backend dies again.
        let hit = cached.search_entities("Peter", 3, Deadline::UNBOUNDED).unwrap();
        assert_eq!(hit.hits, ok.hits);
    }

    #[test]
    fn cache_only_lookup_serves_hits_and_never_calls_the_backend() {
        let s = searcher();
        // A backend that is down for good: only pre-warmed keys can work.
        let flaky = FaultyBackend::new(&s, FaultConfig::healthy(3).with_outage(1, u64::MAX));
        let cached = CachingBackend::new(&flaky, CacheConfig::default());
        let warm = cached
            .search_entities("Peter", 3, Deadline::UNBOUNDED)
            .expect("first call precedes the outage");
        let calls_after_warm = flaky.calls();
        // Warm key: served from the cache, identical hits, zero latency.
        let hit = cached.lookup_cached("  PETER ", 3).expect("warm key");
        assert_eq!(hit.hits, warm.hits);
        assert_eq!(hit.latency_us, 0);
        // Cold key: a miss, not a backend call — the outage is never seen.
        assert!(cached.lookup_cached("Anna", 3).is_none());
        assert_eq!(flaky.calls(), calls_after_warm, "lookup never hits the backend");
        let stats = cached.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    #[test]
    fn capacity_is_respected_across_shards() {
        let s = searcher();
        let cached = CachingBackend::new(
            &s,
            CacheConfig {
                capacity: 4,
                shards: 2,
            },
        );
        for q in ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"] {
            let _ = cached.search_entities(q, 3, Deadline::UNBOUNDED);
        }
        let stats = cached.stats();
        assert!(stats.entries <= stats.capacity);
        assert!(stats.evictions > 0);
        assert_eq!(stats.lookups(), 10);
    }
}
