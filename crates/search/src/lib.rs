//! Full-text entity retrieval for KGLink.
//!
//! The original system indexes WikiData in Elasticsearch and uses its BM25
//! scores as *linking scores* between table cell mentions and KG entities
//! (paper Eq. 1–2). This crate is the drop-in substrate:
//!
//! * [`tokenize`] — the analyzer (lowercasing, alphanumeric word splitting);
//! * [`InvertedIndex`] — term → postings with term frequencies, document
//!   lengths, and corpus statistics;
//! * [`Bm25Params`] / scoring — Okapi BM25 exactly as in the paper, with the
//!   `ln(1 + (N - n + 0.5)/(n + 0.5))` IDF variant (Eq. 2);
//! * [`EntitySearcher`] — the convenience layer that indexes a
//!   [`kglink_kg::KnowledgeGraph`] (labels + aliases, optionally
//!   descriptions) and returns scored entity candidates for a mention.

//!
//! Production-scale retrieval is *fallible*: [`KgBackend`] is the
//! deadline-aware trait the pipeline consumes, and [`resilience`] provides
//! deterministic fault injection plus a retry/backoff/circuit-breaker
//! decorator around any backend. [`cache`] adds a sharded-LRU memoization
//! decorator ([`CachingBackend`]) that both the serving layer and
//! training-time preprocessing stack over any of the above.

#![deny(deprecated)]

pub mod backend;
pub mod bm25;
pub mod cache;
pub mod index;
pub mod resilience;
pub mod searcher;
pub mod tokenize;

pub use backend::{Deadline, KgBackend, RetrievalError, SearchOutcome};
pub use bm25::Bm25Params;
pub use cache::{normalize_mention, CacheConfig, CacheStats, CachingBackend, Lru};
pub use index::{DocId, InvertedIndex, SearchHit};
pub use resilience::{
    backoff_delay_us, breaker_state_name, BreakerConfig, BreakerState, CircuitBreaker, FaultConfig,
    FaultyBackend, MetricsSnapshot, PanickingBackend, ResilienceConfig, ResilientBackend,
    RetryBudget, RetryBudgetConfig,
};
pub use searcher::EntitySearcher;
pub use tokenize::tokenize;
