//! Okapi BM25 scoring (paper Eq. 1–2).

use serde::{Deserialize, Serialize};

/// Tunable BM25 parameters `k1` and `b`.
///
/// Defaults match Elasticsearch's `similarity: BM25` defaults, which is what
/// the paper's setup used: `k1 = 1.2`, `b = 0.75`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bm25Params {
    /// Term-frequency saturation. Higher values let repeated terms keep
    /// contributing.
    pub k1: f32,
    /// Length normalization strength in `[0, 1]`.
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

impl Bm25Params {
    /// Inverse document frequency of a term appearing in `doc_freq` of
    /// `doc_count` documents (Eq. 2):
    ///
    /// `IDF(w) = ln( (N - n(w) + 0.5) / (n(w) + 0.5) + 1 )`
    ///
    /// This variant is always positive, even for terms present in more than
    /// half the corpus.
    #[inline]
    pub fn idf(doc_count: usize, doc_freq: usize) -> f32 {
        let n = doc_count as f32;
        let df = doc_freq as f32;
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// Per-term BM25 contribution for a document (one summand of Eq. 1):
    ///
    /// `idf * tf*(k1+1) / (tf + k1*(1 - b + b*len/avg_len))`
    #[inline]
    pub fn term_score(&self, idf: f32, tf: f32, doc_len: f32, avg_len: f32) -> f32 {
        debug_assert!(tf >= 0.0 && doc_len >= 0.0 && avg_len > 0.0);
        let norm = self.k1 * (1.0 - self.b + self.b * doc_len / avg_len);
        idf * tf * (self.k1 + 1.0) / (tf + norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idf_is_positive_and_decreasing_in_df() {
        let n = 1000;
        let rare = Bm25Params::idf(n, 1);
        let common = Bm25Params::idf(n, 900);
        assert!(rare > common);
        assert!(common > 0.0, "the +1 variant never goes negative");
    }

    #[test]
    fn idf_matches_hand_computation() {
        // N=10, n=2: ln((10-2+0.5)/(2+0.5)+1) = ln(4.4) ≈ 1.4816
        let v = Bm25Params::idf(10, 2);
        assert!((v - 4.4f32.ln()).abs() < 1e-6, "{v}");
    }

    #[test]
    fn term_score_matches_hand_computation() {
        let p = Bm25Params { k1: 1.2, b: 0.75 };
        // idf=1, tf=2, len=4, avg=4 => 1 * 2*2.2 / (2 + 1.2*1) = 4.4/3.2 = 1.375
        let s = p.term_score(1.0, 2.0, 4.0, 4.0);
        assert!((s - 1.375).abs() < 1e-6, "{s}");
    }

    #[test]
    fn term_score_saturates_with_tf() {
        let p = Bm25Params::default();
        let s1 = p.term_score(1.0, 1.0, 10.0, 10.0);
        let s2 = p.term_score(1.0, 2.0, 10.0, 10.0);
        let s100 = p.term_score(1.0, 100.0, 10.0, 10.0);
        assert!(s2 > s1);
        assert!(s100 < (p.k1 + 1.0), "upper bound is idf*(k1+1)");
    }

    #[test]
    fn longer_documents_score_lower() {
        let p = Bm25Params::default();
        let short = p.term_score(1.0, 1.0, 2.0, 10.0);
        let long = p.term_score(1.0, 1.0, 50.0, 10.0);
        assert!(short > long);
    }

    #[test]
    fn b_zero_disables_length_normalization() {
        let p = Bm25Params { k1: 1.2, b: 0.0 };
        let short = p.term_score(1.0, 1.0, 2.0, 10.0);
        let long = p.term_score(1.0, 1.0, 50.0, 10.0);
        assert_eq!(short, long);
    }
}
