//! Fault injection and the resilient retrieval decorator.
//!
//! Two [`KgBackend`] wrappers compose around any inner backend:
//!
//! * [`FaultyBackend`] — deterministic, seeded fault injection: transient
//!   errors, injected latency measured against the caller's deadline,
//!   partial (truncated) result sets, and hard outages over configurable
//!   call-index windows. Used by the chaos experiment and tests.
//! * [`ResilientBackend`] — the production-shaped decorator: bounded
//!   retries with exponential backoff + jitter, per-attempt timeout
//!   budgets, and a Closed → Open → HalfOpen circuit breaker with
//!   failure-rate tripping and cooldown probes. Keeps a simulated
//!   microsecond clock and a metrics ledger (retries, trips, latency
//!   percentiles) that `core::stats` surfaces per run.
//!
//! All randomness is derived by hashing a seed with the call index, so a
//! given (seed, call sequence) is exactly reproducible — no global RNG
//! state, no real sleeps.

use crate::backend::{Deadline, KgBackend, RetrievalError, SearchOutcome};
use kglink_obs::{Histogram, Tracer};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// splitmix64 over `seed ^ salt` — one deterministic draw per decision.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a raw draw to `[0, 1)`.
fn unit(raw: u64) -> f64 {
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw in `[lo, hi]`.
fn uniform_us(raw: u64, (lo, hi): (u64, u64)) -> u64 {
    debug_assert!(lo <= hi);
    lo + raw % (hi - lo + 1)
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Deterministic fault plan for a [`FaultyBackend`].
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for every per-call decision.
    pub seed: u64,
    /// Probability a call fails with [`RetrievalError::Transient`].
    pub transient_rate: f64,
    /// Probability a call is served at `slow_latency_us` instead of
    /// `base_latency_us` (tripping the caller's deadline, if any).
    pub slow_rate: f64,
    /// Probability a *successful* call returns a truncated hit list.
    pub truncation_rate: f64,
    /// Healthy service time, uniform over `(lo, hi)` microseconds.
    pub base_latency_us: (u64, u64),
    /// Degraded service time for slow calls.
    pub slow_latency_us: (u64, u64),
    /// Hard-outage windows `[start, end)` over the call index: every call
    /// whose index falls in a window fails with
    /// [`RetrievalError::Unavailable`].
    pub outage_windows: Vec<(u64, u64)>,
}

impl FaultConfig {
    /// No faults: pass-through with healthy latencies.
    pub fn healthy(seed: u64) -> Self {
        FaultConfig {
            seed,
            transient_rate: 0.0,
            slow_rate: 0.0,
            truncation_rate: 0.0,
            base_latency_us: (200, 900),
            slow_latency_us: (20_000, 60_000),
            outage_windows: Vec::new(),
        }
    }

    /// The chaos-sweep knob: a single `rate` in `[0, 1]` scales every fault
    /// mode. At `rate = 1.0` *every* call fails (half slow-then-timeout,
    /// the rest transient) — a full outage.
    pub fn with_fault_rate(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate out of range");
        FaultConfig {
            transient_rate: rate,
            slow_rate: rate * 0.5,
            truncation_rate: rate * 0.25,
            ..FaultConfig::healthy(seed)
        }
    }

    /// Add a hard-outage window over the call index.
    pub fn with_outage(mut self, start_call: u64, end_call: u64) -> Self {
        assert!(start_call < end_call, "empty outage window");
        self.outage_windows.push((start_call, end_call));
        self
    }
}

/// A [`KgBackend`] decorator that injects deterministic faults per call.
///
/// The call counter is the only mutable state; every decision is a pure
/// function of `(seed, call index)`, so two identically-configured
/// instances fed the same query sequence behave identically.
#[derive(Debug)]
pub struct FaultyBackend<B> {
    inner: B,
    config: FaultConfig,
    calls: AtomicU64,
}

impl<B: KgBackend> FaultyBackend<B> {
    pub fn new(inner: B, config: FaultConfig) -> Self {
        FaultyBackend {
            inner,
            config,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of calls served (or failed) so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    pub fn config(&self) -> &FaultConfig {
        &self.config
    }
}

impl<B: KgBackend> KgBackend for FaultyBackend<B> {
    fn search_entities(
        &self,
        query: &str,
        top_k: usize,
        deadline: Deadline,
    ) -> Result<SearchOutcome, RetrievalError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let cfg = &self.config;
        if cfg
            .outage_windows
            .iter()
            .any(|&(start, end)| (start..end).contains(&n))
        {
            return Err(RetrievalError::Unavailable);
        }
        let slow = unit(mix(cfg.seed, n.wrapping_mul(3).wrapping_add(1))) < cfg.slow_rate;
        let latency_range = if slow {
            cfg.slow_latency_us
        } else {
            cfg.base_latency_us
        };
        let latency_us = uniform_us(mix(cfg.seed, n.wrapping_mul(3).wrapping_add(2)), latency_range);
        if latency_us > deadline.budget_us() {
            return Err(RetrievalError::Timeout {
                needed_us: latency_us,
                budget_us: deadline.budget_us(),
            });
        }
        if unit(mix(cfg.seed, n.wrapping_mul(3))) < cfg.transient_rate {
            return Err(RetrievalError::Transient);
        }
        let mut outcome = self.inner.search_entities(query, top_k, deadline)?;
        outcome.latency_us += latency_us;
        if outcome.hits.len() > 1
            && unit(mix(cfg.seed, n.wrapping_mul(7).wrapping_add(5))) < cfg.truncation_rate
        {
            outcome.hits.truncate(outcome.hits.len() / 2);
            outcome.truncated = true;
        }
        Ok(outcome)
    }
}

/// A [`KgBackend`] decorator that *panics* on every `every`-th call
/// (1-based): call numbers `every`, `2·every`, … unwind instead of
/// returning. This is the crash-chaos counterpart of [`FaultyBackend`] —
/// where that injects *errors* a resilient caller can handle in-band, this
/// injects the failure mode that escapes the `Result` channel entirely, so
/// serving layers can prove their panic isolation (completion-on-drop
/// ticket guards, worker supervision, poisoned-lock recovery).
///
/// Deterministic: the panic schedule depends only on the call index, so a
/// fixed request sequence always panics at the same points.
#[derive(Debug)]
pub struct PanickingBackend<B> {
    inner: B,
    every: u64,
    calls: AtomicU64,
}

impl<B: KgBackend> PanickingBackend<B> {
    /// Panic on every `every`-th call. Panics immediately if `every == 0`
    /// (a schedule that never fires would silently test nothing).
    pub fn new(inner: B, every: u64) -> Self {
        assert!(every > 0, "panic interval must be at least 1");
        PanickingBackend {
            inner,
            every,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of calls observed so far (including the panicking ones).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// How many calls have panicked so far.
    pub fn panics(&self) -> u64 {
        self.calls() / self.every
    }
}

impl<B: KgBackend> KgBackend for PanickingBackend<B> {
    fn search_entities(
        &self,
        query: &str,
        top_k: usize,
        deadline: Deadline,
    ) -> Result<SearchOutcome, RetrievalError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.every) {
            // kglink-lint: allow(panic-in-lib) — panicking IS this chaos
            // decorator's contract; it exists to exercise the panic
            // isolation in the serving layer and the resilience tests.
            panic!("injected panic on backend call {n}");
        }
        self.inner.search_entities(query, top_k, deadline)
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Circuit-breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Sliding window of recent attempt outcomes consulted for tripping.
    pub window: usize,
    /// Minimum outcomes in the window before the failure rate can trip.
    pub min_samples: usize,
    /// Failure fraction at or above which the breaker opens.
    pub failure_threshold: f64,
    /// Simulated microseconds the breaker stays open before probing.
    pub cooldown_us: u64,
    /// Consecutive half-open probe successes required to close.
    pub halfopen_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            min_samples: 8,
            failure_threshold: 0.5,
            cooldown_us: 100_000,
            halfopen_successes: 2,
        }
    }
}

/// Breaker states, in the classic Closed → Open → HalfOpen cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; outcomes feed the sliding failure window.
    Closed,
    /// Tripped: every call is rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: probe calls go through; one failure re-opens,
    /// `halfopen_successes` successes close.
    HalfOpen,
}

/// A deterministic circuit breaker over simulated time.
///
/// Pure state machine — the owner supplies `now_us` on every interaction,
/// which keeps it trivially testable (see the property tests in
/// `tests/resilience.rs`).
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    opened_at_us: u64,
    window: VecDeque<bool>,
    halfopen_streak: u32,
    trips: u64,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            opened_at_us: 0,
            window: VecDeque::new(),
            halfopen_streak: 0,
            trips: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped (entered Open).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Simulated time at which an Open breaker will admit a probe.
    pub fn open_until_us(&self) -> Option<u64> {
        (self.state == BreakerState::Open)
            .then(|| self.opened_at_us.saturating_add(self.config.cooldown_us))
    }

    /// May a call proceed at `now_us`? Transitions Open → HalfOpen when the
    /// cooldown has elapsed.
    pub fn allow(&mut self, now_us: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_us.saturating_sub(self.opened_at_us) >= self.config.cooldown_us {
                    self.state = BreakerState::HalfOpen;
                    self.halfopen_streak = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn trip(&mut self, now_us: u64) {
        self.state = BreakerState::Open;
        self.opened_at_us = now_us;
        self.window.clear();
        self.halfopen_streak = 0;
        self.trips += 1;
    }

    /// Record the outcome of an attempt that [`allow`](Self::allow)
    /// admitted at `now_us`.
    pub fn record(&mut self, now_us: u64, ok: bool) {
        match self.state {
            BreakerState::Closed => {
                self.window.push_back(ok);
                while self.window.len() > self.config.window {
                    self.window.pop_front();
                }
                if self.window.len() >= self.config.min_samples {
                    let failures = self.window.iter().filter(|&&o| !o).count();
                    if failures as f64 / self.window.len() as f64 >= self.config.failure_threshold {
                        self.trip(now_us);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    self.halfopen_streak += 1;
                    if self.halfopen_streak >= self.config.halfopen_successes {
                        self.state = BreakerState::Closed;
                        self.window.clear();
                    }
                } else {
                    self.trip(now_us);
                }
            }
            // A call admitted before the trip may report after it; the
            // outcome no longer matters.
            BreakerState::Open => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Resilient decorator
// ---------------------------------------------------------------------------

/// Token-bucket tuning for a retry budget.
///
/// Retries are a loan against future capacity: when the backend is
/// healthy they absorb transients cheaply, but during a fault burst an
/// unbudgeted retry policy multiplies offered load by up to
/// `1 + max_retries` exactly when the backend can least afford it, and
/// the re-saturated queue turns one incident into two. The budget caps
/// that amplification: each top-level query deposits `ratio` tokens (up
/// to `cap`), each retry withdraws one, so lifetime retries can never
/// exceed `initial + ratio × queries` — amplification is bounded at
/// `1 + ratio` in the long run no matter what the fault sequence does.
#[derive(Debug, Clone)]
pub struct RetryBudgetConfig {
    /// Tokens deposited per top-level query (may be fractional).
    pub ratio: f64,
    /// Bucket capacity: the largest retry burst the budget will fund.
    pub cap: f64,
    /// Tokens in the bucket before the first query.
    pub initial: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            ratio: 1.0,
            cap: 50.0,
            initial: 20.0,
        }
    }
}

/// A deterministic retry-budget token bucket (pure state machine; the
/// owner provides synchronization). See [`RetryBudgetConfig`].
#[derive(Debug, Clone)]
pub struct RetryBudget {
    config: RetryBudgetConfig,
    tokens: f64,
    granted: u64,
    denied: u64,
}

impl RetryBudget {
    /// Panics on a nonsensical config (negative ratio/cap, or an initial
    /// balance above the cap) — construction-time programming errors.
    pub fn new(config: RetryBudgetConfig) -> Self {
        assert!(config.ratio >= 0.0, "ratio must be non-negative");
        assert!(config.cap >= 0.0, "cap must be non-negative");
        assert!(
            config.initial >= 0.0 && config.initial <= config.cap,
            "initial tokens must be in [0, cap]"
        );
        RetryBudget {
            tokens: config.initial,
            config,
            granted: 0,
            denied: 0,
        }
    }

    /// Current token balance, always in `[0, cap]`.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Retries granted so far.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Retries denied so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Deposit for one top-level query, saturating at the cap.
    pub fn on_query(&mut self) {
        self.tokens = (self.tokens + self.config.ratio).min(self.config.cap);
    }

    /// Try to fund one retry: withdraw a token if a whole one is
    /// available, else deny.
    pub fn try_retry(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.granted += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }
}

/// Retry/backoff/breaker tuning for a [`ResilientBackend`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// First backoff delay, microseconds.
    pub backoff_base_us: u64,
    /// Multiplier between consecutive backoff delays (>= 1).
    pub backoff_multiplier: f64,
    /// Hard cap on any single backoff delay.
    pub backoff_cap_us: u64,
    /// Jitter fraction in `[0, multiplier - 1]`: delay is scaled by
    /// `1 + jitter * u` with `u ~ [0, 1)`. The bound keeps the delay
    /// sequence monotone for any jitter draw.
    pub jitter: f64,
    /// Per-attempt timeout budget (tightened by the caller's deadline).
    pub attempt_budget_us: u64,
    /// Simulated cost charged to the clock for a fast failure.
    pub failure_cost_us: u64,
    /// Seed for jitter draws.
    pub seed: u64,
    pub breaker: BreakerConfig,
    /// Retry-budget token bucket; `None` leaves retries bounded only by
    /// `max_retries` per query (unbounded amplification across queries).
    pub retry_budget: Option<RetryBudgetConfig>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_retries: 3,
            backoff_base_us: 500,
            backoff_multiplier: 2.0,
            backoff_cap_us: 20_000,
            jitter: 0.5,
            attempt_budget_us: 10_000,
            failure_cost_us: 300,
            seed: 0x5eed,
            breaker: BreakerConfig::default(),
            retry_budget: Some(RetryBudgetConfig::default()),
        }
    }
}

/// Backoff delay before retry number `attempt + 1`, given a jitter draw
/// `unit_jitter` in `[0, 1)`. Exposed for the property tests: for any fixed
/// jitter sequence the delays are monotone non-decreasing and capped at
/// `backoff_cap_us`.
pub fn backoff_delay_us(config: &ResilienceConfig, attempt: u32, unit_jitter: f64) -> u64 {
    let base = config.backoff_base_us as f64 * config.backoff_multiplier.powi(attempt as i32);
    let jitter = config
        .jitter
        .clamp(0.0, (config.backoff_multiplier - 1.0).max(0.0));
    let delayed = base * (1.0 + jitter * unit_jitter.clamp(0.0, 1.0));
    (delayed.min(config.backoff_cap_us as f64)) as u64
}

/// Point-in-time metrics of a [`ResilientBackend`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Top-level queries served (each may span several attempts).
    pub queries: u64,
    /// Queries that ultimately succeeded.
    pub successes: u64,
    /// Queries that ultimately failed (degraded to no-linkage upstream).
    pub failures: u64,
    /// Queries rejected outright by an open breaker.
    pub breaker_rejections: u64,
    /// Retry attempts across all queries.
    pub retries: u64,
    /// Retries the token-bucket budget refused to fund (each became a
    /// terminal failure instead of another attempt).
    pub retry_budget_denied: u64,
    /// Times the circuit breaker tripped.
    pub breaker_trips: u64,
    /// Successful queries whose hit list was truncated.
    pub truncated: u64,
    /// End-to-end simulated latency histogram of successful queries,
    /// microseconds (includes failed attempts and backoff).
    pub latency: Histogram,
}

impl MetricsSnapshot {
    /// p50 end-to-end simulated latency of successful queries, microseconds.
    pub fn latency_p50_us(&self) -> u64 {
        self.latency.p50()
    }

    /// p99 end-to-end simulated latency of successful queries, microseconds.
    pub fn latency_p99_us(&self) -> u64 {
        self.latency.p99()
    }

    /// Combine two snapshots (e.g. one per worker shard of a service) into
    /// an aggregate: counters add, and the latency histograms merge
    /// bucket-by-bucket, so aggregate percentiles are computed over the
    /// union of samples instead of being approximated from two summaries.
    ///
    /// `merge` is commutative and associative, and
    /// `MetricsSnapshot::default()` is its identity, so shard order never
    /// changes the aggregate.
    pub fn merge(&self, other: &Self) -> Self {
        MetricsSnapshot {
            queries: self.queries + other.queries,
            successes: self.successes + other.successes,
            failures: self.failures + other.failures,
            breaker_rejections: self.breaker_rejections + other.breaker_rejections,
            retries: self.retries + other.retries,
            retry_budget_denied: self.retry_budget_denied + other.retry_budget_denied,
            breaker_trips: self.breaker_trips + other.breaker_trips,
            truncated: self.truncated + other.truncated,
            latency: self.latency.merge(&other.latency),
        }
    }
}

/// Stable lower-case names for [`BreakerState`], used in trace events.
pub fn breaker_state_name(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half_open",
    }
}

#[derive(Debug, Default)]
struct ResilientState {
    clock_us: u64,
    breaker: Option<CircuitBreaker>,
    budget: Option<RetryBudget>,
    queries: u64,
    successes: u64,
    failures: u64,
    breaker_rejections: u64,
    retries: u64,
    truncated: u64,
    latency: Histogram,
}

/// The production-shaped retrieval decorator: bounded retries with
/// exponential backoff + jitter, per-attempt deadlines, and a circuit
/// breaker — all over simulated time.
#[derive(Debug)]
pub struct ResilientBackend<B> {
    inner: B,
    config: ResilienceConfig,
    tracer: Tracer,
    state: Mutex<ResilientState>,
}

impl<B: KgBackend> ResilientBackend<B> {
    pub fn new(inner: B, config: ResilienceConfig) -> Self {
        let breaker = CircuitBreaker::new(config.breaker.clone());
        let budget = config.retry_budget.clone().map(RetryBudget::new);
        ResilientBackend {
            inner,
            config,
            tracer: Tracer::disabled(),
            state: Mutex::new(ResilientState {
                breaker: Some(breaker),
                budget,
                ..ResilientState::default()
            }),
        }
    }

    /// Attach a tracer: retry attempts, breaker transitions, and breaker
    /// rejections are emitted as `retrieval.retry` / `breaker.transition` /
    /// `breaker.reject` events.
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// Acquire the state lock, recovering from poison. Unlike the other
    /// decorators, this one *does* hold its lock across the inner backend
    /// call, so a panicking inner backend genuinely poisons it. The state
    /// is still re-validatable: the clock, counters, and breaker window
    /// are all updated before or after the inner call, never left
    /// half-written across it, so the recovered guard is consistent.
    fn lock_state(&self) -> MutexGuard<'_, ResilientState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current simulated time.
    pub fn clock_us(&self) -> u64 {
        self.lock_state().clock_us
    }

    /// Snapshot of the metrics ledger.
    pub fn metrics(&self) -> MetricsSnapshot {
        let state = self.lock_state();
        MetricsSnapshot {
            queries: state.queries,
            successes: state.successes,
            failures: state.failures,
            breaker_rejections: state.breaker_rejections,
            retries: state.retries,
            retry_budget_denied: state.budget.as_ref().map_or(0, |b| b.denied()),
            breaker_trips: state.breaker.as_ref().map_or(0, |b| b.trips()),
            truncated: state.truncated,
            latency: state.latency.clone(),
        }
    }

    /// Feed one attempt outcome to the breaker, emitting a
    /// `breaker.transition` event when its state changes.
    fn record_breaker_outcome(&self, state: &mut ResilientState, ok: bool) {
        let now = state.clock_us;
        // kglink-lint: allow(panic-in-lib) — structural: the constructor
        // installs a breaker unconditionally; the Option only exists so the
        // state struct can be built field by field.
        let breaker = state.breaker.as_mut().expect("breaker always present");
        let before = breaker.state();
        breaker.record(now, ok);
        let after = breaker.state();
        if after != before {
            self.tracer.event_with(
                "breaker.transition",
                vec![
                    ("from", breaker_state_name(before).to_string()),
                    ("to", breaker_state_name(after).to_string()),
                ],
            );
        }
    }

    /// Current breaker state (for tests and diagnostics).
    pub fn breaker_state(&self) -> BreakerState {
        self.lock_state()
            .breaker
            .as_ref()
            .map_or(BreakerState::Closed, |b| b.state())
    }
}

impl<B: KgBackend> KgBackend for ResilientBackend<B> {
    fn search_entities(
        &self,
        query: &str,
        top_k: usize,
        deadline: Deadline,
    ) -> Result<SearchOutcome, RetrievalError> {
        let mut guard = self.lock_state();
        guard.queries += 1;
        if let Some(budget) = guard.budget.as_mut() {
            budget.on_query();
        }
        let query_index = guard.queries - 1;
        let started_us = guard.clock_us;
        let mut attempt: u32 = 0;
        loop {
            let state = &mut *guard;
            let now = state.clock_us;
            // kglink-lint: allow(panic-in-lib) — same structural invariant
            // as record_breaker_outcome: the breaker is always installed.
            let breaker = state.breaker.as_mut().expect("breaker always present");
            let before = breaker.state();
            let admitted = breaker.allow(now);
            let after = breaker.state();
            if after != before {
                self.tracer.event_with(
                    "breaker.transition",
                    vec![
                        ("from", breaker_state_name(before).to_string()),
                        ("to", breaker_state_name(after).to_string()),
                    ],
                );
            }
            if !admitted {
                let remaining = breaker.open_until_us().unwrap_or(now).saturating_sub(now);
                state.breaker_rejections += 1;
                state.failures += 1;
                self.tracer.event_with(
                    "breaker.reject",
                    vec![("cooldown_remaining_us", remaining.to_string())],
                );
                return Err(RetrievalError::CircuitOpen {
                    cooldown_remaining_us: remaining,
                });
            }
            let spent = state.clock_us - started_us;
            let remaining_budget = deadline.budget_us().saturating_sub(spent);
            let attempt_deadline =
                Deadline::from_us(self.config.attempt_budget_us.min(remaining_budget));
            // Release the state lock across the retrieval: the inner
            // backend may stall for the whole attempt budget, and sibling
            // callers must be able to admit, record, and trip the breaker
            // meanwhile. All bookkeeping below re-reads state after
            // re-acquiring.
            drop(guard);
            let result = self.inner.search_entities(query, top_k, attempt_deadline);
            guard = self.lock_state();
            let state = &mut *guard;
            match result {
                Ok(mut outcome) => {
                    state.clock_us += outcome.latency_us;
                    self.record_breaker_outcome(state, true);
                    state.successes += 1;
                    if outcome.truncated {
                        state.truncated += 1;
                    }
                    // Report the query's end-to-end latency, including
                    // failed attempts and backoff.
                    outcome.latency_us = state.clock_us - started_us;
                    state.latency.record(outcome.latency_us);
                    return Ok(outcome);
                }
                Err(error) => {
                    let cost = match &error {
                        RetrievalError::Timeout { budget_us, .. } => *budget_us,
                        _ => self.config.failure_cost_us,
                    };
                    state.clock_us += cost;
                    self.record_breaker_outcome(state, false);
                    let out_of_budget =
                        state.clock_us - started_us >= deadline.budget_us();
                    let exhausted = attempt >= self.config.max_retries
                        || !error.is_retryable()
                        || out_of_budget;
                    // Only ask the retry budget to fund attempts the other
                    // gates would actually allow: a denial must mean "the
                    // budget stopped a retry", never double-count.
                    let budget_denied = !exhausted
                        && match state.budget.as_mut() {
                            Some(budget) => !budget.try_retry(),
                            None => false,
                        };
                    if budget_denied {
                        self.tracer.event_with(
                            "retrieval.retry_denied",
                            vec![
                                ("attempt", (attempt + 1).to_string()),
                                ("error", error.to_string()),
                            ],
                        );
                    }
                    if exhausted || budget_denied {
                        state.failures += 1;
                        return Err(if attempt == 0 {
                            error
                        } else {
                            RetrievalError::RetriesExhausted {
                                attempts: attempt + 1,
                                last: Box::new(error),
                            }
                        });
                    }
                    let jitter_draw = unit(mix(
                        self.config.seed,
                        query_index
                            .wrapping_mul(31)
                            .wrapping_add(attempt as u64),
                    ));
                    let delay_us = backoff_delay_us(&self.config, attempt, jitter_draw);
                    state.clock_us += delay_us;
                    state.retries += 1;
                    attempt += 1;
                    self.tracer.event_with(
                        "retrieval.retry",
                        vec![
                            ("attempt", attempt.to_string()),
                            ("backoff_us", delay_us.to_string()),
                            ("error", error.to_string()),
                        ],
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kglink_kg::{Entity, KgBuilder, NeSchema};

    fn searcher() -> crate::EntitySearcher {
        let mut b = KgBuilder::new();
        let ty = b.add_type("Musician", None);
        for name in ["Peter Steele", "Anna Kovacs", "Peter Banks", "Peter Gabriel"] {
            b.add_instance(Entity::new(name, NeSchema::Person), ty);
        }
        crate::EntitySearcher::build(&b.build())
    }

    #[test]
    fn healthy_faulty_backend_passes_hits_through() {
        let s = searcher();
        let faulty = FaultyBackend::new(&s, FaultConfig::healthy(7));
        let direct = s.link_mention("Peter", 5);
        let wrapped = faulty
            .search_entities("Peter", 5, Deadline::UNBOUNDED)
            .expect("no faults configured");
        assert_eq!(wrapped.hits, direct);
        assert!(!wrapped.truncated);
        assert!(wrapped.latency_us >= 200, "healthy latency is injected");
    }

    #[test]
    fn outage_window_fails_exactly_its_calls() {
        let s = searcher();
        let faulty = FaultyBackend::new(&s, FaultConfig::healthy(7).with_outage(2, 4));
        let mut results = Vec::new();
        for _ in 0..6 {
            results.push(
                faulty
                    .search_entities("Peter", 3, Deadline::UNBOUNDED)
                    .is_ok(),
            );
        }
        assert_eq!(results, vec![true, true, false, false, true, true]);
        assert_eq!(faulty.calls(), 6);
    }

    #[test]
    fn full_fault_rate_fails_every_call() {
        let s = searcher();
        let faulty = FaultyBackend::new(&s, FaultConfig::with_fault_rate(3, 1.0));
        for _ in 0..50 {
            assert!(faulty
                .search_entities("Peter", 3, Deadline::from_us(10_000))
                .is_err());
        }
    }

    #[test]
    fn fault_injection_is_deterministic_per_call_index() {
        let s = searcher();
        let run = || {
            let faulty = FaultyBackend::new(&s, FaultConfig::with_fault_rate(11, 0.4));
            (0..40)
                .map(|_| {
                    faulty
                        .search_entities("Peter", 3, Deadline::from_us(5_000))
                        .map(|o| (o.hits, o.truncated))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let config = BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown_us: 1_000,
            halfopen_successes: 2,
        };
        let mut breaker = CircuitBreaker::new(config);
        assert_eq!(breaker.state(), BreakerState::Closed);
        for now in 0..4 {
            assert!(breaker.allow(now));
            breaker.record(now, false);
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.trips(), 1);
        assert!(!breaker.allow(500), "still cooling down");
        assert!(breaker.allow(4 + 1_000), "cooldown elapsed admits a probe");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.record(1_100, true);
        breaker.record(1_200, true);
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn halfopen_failure_reopens() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 2,
            failure_threshold: 0.5,
            cooldown_us: 100,
            halfopen_successes: 1,
        });
        breaker.record(0, false);
        breaker.record(1, false);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(breaker.allow(200));
        breaker.record(201, false);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.trips(), 2);
    }

    #[test]
    fn resilient_backend_retries_through_transients() {
        let s = searcher();
        // Transient faults at 40%: with 3 retries almost every query lands.
        let faulty = FaultyBackend::new(&s, FaultConfig::with_fault_rate(5, 0.4));
        let resilient = ResilientBackend::new(
            faulty,
            ResilienceConfig {
                attempt_budget_us: 100_000,
                ..ResilienceConfig::default()
            },
        );
        let mut ok = 0;
        for _ in 0..30 {
            if resilient
                .search_entities("Peter", 3, Deadline::UNBOUNDED)
                .is_ok()
            {
                ok += 1;
            }
        }
        let metrics = resilient.metrics();
        assert!(ok >= 25, "retries should absorb most faults, got {ok}/30");
        assert!(metrics.retries > 0);
        assert_eq!(metrics.queries, 30);
        assert_eq!(metrics.successes + metrics.failures, 30);
        assert!(metrics.latency_p99_us() >= metrics.latency_p50_us());
        assert_eq!(metrics.latency.count(), metrics.successes);
    }

    #[test]
    fn full_outage_trips_the_breaker_and_fails_fast() {
        let s = searcher();
        let faulty = FaultyBackend::new(&s, FaultConfig::with_fault_rate(9, 1.0));
        let resilient = ResilientBackend::new(faulty, ResilienceConfig::default());
        for _ in 0..40 {
            assert!(resilient
                .search_entities("Peter", 3, Deadline::UNBOUNDED)
                .is_err());
        }
        let metrics = resilient.metrics();
        assert_eq!(metrics.successes, 0);
        assert!(metrics.breaker_trips >= 1, "sustained failures must trip");
        assert!(
            metrics.breaker_rejections > 0,
            "open breaker must reject instead of hammering the backend"
        );
    }

    #[test]
    fn metrics_merge_is_commutative_with_default_identity() {
        let hist_of = |values: &[u64]| {
            let mut h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let a = MetricsSnapshot {
            queries: 10,
            successes: 8,
            failures: 2,
            breaker_rejections: 1,
            retries: 3,
            retry_budget_denied: 2,
            breaker_trips: 1,
            truncated: 2,
            latency: hist_of(&[400, 410, 450, 500, 520, 600, 4_000, 9_000]),
        };
        let b = MetricsSnapshot {
            queries: 5,
            successes: 5,
            failures: 0,
            breaker_rejections: 0,
            retries: 1,
            retry_budget_denied: 1,
            breaker_trips: 0,
            truncated: 0,
            latency: hist_of(&[700, 710, 800, 900, 1_200]),
        };
        assert_eq!(a.merge(&b), b.merge(&a), "merge must be commutative");
        let merged = a.merge(&b);
        assert_eq!(merged.queries, 15);
        assert_eq!(merged.successes, 13);
        assert_eq!(merged.retries, 4);
        assert_eq!(merged.retry_budget_denied, 3);
        // The merged histogram holds the union of samples, so aggregate
        // percentiles come from real data, not a pessimistic max.
        assert_eq!(merged.latency.count(), 13);
        assert_eq!(merged.latency.max(), 9_000);
        let union = hist_of(&[
            400, 410, 450, 500, 520, 600, 4_000, 9_000, 700, 710, 800, 900, 1_200,
        ]);
        assert_eq!(merged.latency, union, "merge == recording the union");
        assert_eq!(a.merge(&MetricsSnapshot::default()), a, "default is identity");
    }

    #[test]
    fn tracer_records_retry_and_breaker_events() {
        let s = searcher();
        let tracer = Tracer::enabled();
        let faulty = FaultyBackend::new(&s, FaultConfig::with_fault_rate(9, 1.0));
        let resilient =
            ResilientBackend::new(faulty, ResilienceConfig::default()).with_tracer(&tracer);
        for _ in 0..40 {
            let _ = resilient.search_entities("Peter", 3, Deadline::UNBOUNDED);
        }
        let metrics = resilient.metrics();
        assert_eq!(
            tracer.events_named("retrieval.retry").len() as u64,
            metrics.retries
        );
        assert_eq!(
            tracer.events_named("breaker.reject").len() as u64,
            metrics.breaker_rejections
        );
        let transitions = tracer.events_named("breaker.transition");
        assert!(
            !transitions.is_empty(),
            "a full outage must produce at least closed -> open"
        );
        assert_eq!(transitions[0].fields[0], ("from", "closed".to_string()));
        assert_eq!(transitions[0].fields[1], ("to", "open".to_string()));
    }

    #[test]
    fn retry_budget_caps_amplification_during_a_fault_burst() {
        let s = searcher();
        let run = |retry_budget: Option<RetryBudgetConfig>| {
            // Transient faults on every call: without a budget each query
            // burns max_retries + 1 attempts until the breaker trips.
            let faulty = FaultyBackend::new(&s, FaultConfig::with_fault_rate(13, 1.0));
            let resilient = ResilientBackend::new(
                faulty,
                ResilienceConfig {
                    retry_budget,
                    // Keep the breaker out of the way: this test isolates
                    // the budget's contribution.
                    breaker: BreakerConfig {
                        failure_threshold: 1.1,
                        ..BreakerConfig::default()
                    },
                    ..ResilienceConfig::default()
                },
            );
            for _ in 0..60 {
                let _ = resilient.search_entities("Peter", 3, Deadline::UNBOUNDED);
            }
            resilient.metrics()
        };
        let tight = RetryBudgetConfig {
            ratio: 0.1,
            cap: 5.0,
            initial: 5.0,
        };
        let budgeted = run(Some(tight.clone()));
        let unbudgeted = run(None);
        assert_eq!(unbudgeted.retry_budget_denied, 0);
        assert!(
            budgeted.retries < unbudgeted.retries,
            "the budget must cut retry volume: {} vs {}",
            budgeted.retries,
            unbudgeted.retries
        );
        assert!(budgeted.retry_budget_denied > 0);
        // The hard bound: lifetime retries <= initial + ratio * queries.
        let bound = tight.initial + tight.ratio * budgeted.queries as f64;
        assert!(
            (budgeted.retries as f64) <= bound,
            "{} retries exceed the budget bound {bound}",
            budgeted.retries
        );
        // Denials are terminal failures, not silent drops.
        assert_eq!(budgeted.successes, 0);
        assert_eq!(budgeted.failures, budgeted.queries);
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let config = ResilienceConfig::default();
        let mut last = 0;
        for attempt in 0..12 {
            let delay = backoff_delay_us(&config, attempt, 0.7);
            assert!(delay >= last);
            assert!(delay <= config.backoff_cap_us);
            last = delay;
        }
    }

    #[test]
    fn clock_advances_with_latency_and_backoff() {
        let s = searcher();
        let resilient = ResilientBackend::new(
            FaultyBackend::new(&s, FaultConfig::healthy(1)),
            ResilienceConfig::default(),
        );
        assert_eq!(resilient.clock_us(), 0);
        resilient
            .search_entities("Peter", 3, Deadline::UNBOUNDED)
            .unwrap();
        let after_one = resilient.clock_us();
        assert!(after_one >= 200, "healthy latency advances the clock");
        resilient
            .search_entities("Anna", 3, Deadline::UNBOUNDED)
            .unwrap();
        assert!(resilient.clock_us() > after_one);
    }
}
